//! Pins the "allocation-free" claim of the streaming rollout engine: after a
//! warm-up rollout has sized every reusable buffer, further
//! `ClosedLoop::simulate_into` rollouts must perform **zero** heap
//! allocations in steady state.
//!
//! The counting `#[global_allocator]` below is process-wide, so this file
//! deliberately contains a single `#[test]`: a second test running
//! concurrently would attribute its allocations to ours. (The test harness
//! itself may allocate on other threads only before/after the measured
//! window; the measured section runs single-threaded.)

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use cps_control::StepBuffers;

struct CountingAllocator;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

#[test]
fn steady_state_rollouts_allocate_nothing() {
    for benchmark in cps_models::all_benchmarks().expect("models build") {
        let mut buffers = StepBuffers::new();
        let mut monitor_scan = benchmark.monitors.scanner();
        let mut checksum = 0.0f64;

        // Warm-up: the first rollout sizes the step buffers (and, for plants
        // wider than the inline capacity, spills them to the heap once).
        benchmark.closed_loop.simulate_into(
            &benchmark.initial_state,
            benchmark.horizon,
            &benchmark.noise,
            None,
            1,
            &mut buffers,
            |record| {
                monitor_scan.step(record.measurement);
                true
            },
        );

        // Steady state: repeated rollouts through the same buffers — the
        // full closed-loop update, monitor scan and a residue reduction per
        // step — must not touch the allocator at all.
        let before = ALLOCATIONS.load(Ordering::SeqCst);
        for seed in 2..6u64 {
            monitor_scan.reset();
            benchmark.closed_loop.simulate_into(
                &benchmark.initial_state,
                benchmark.horizon,
                &benchmark.noise,
                None,
                seed,
                &mut buffers,
                |record| {
                    monitor_scan.step(record.measurement);
                    checksum += record.residue.as_slice().iter().sum::<f64>();
                    true
                },
            );
        }
        let after = ALLOCATIONS.load(Ordering::SeqCst);

        assert_eq!(
            after - before,
            0,
            "{}: steady-state simulate_into hit the allocator",
            benchmark.name
        );
        // Keep the observer's arithmetic observable so it cannot be
        // optimised out along with a hypothetical allocation.
        assert!(checksum.is_finite());
    }
}
