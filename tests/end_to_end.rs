//! Workspace-level integration tests: the full pipeline from benchmark model
//! through attack synthesis, threshold synthesis and FAR evaluation, crossing
//! every member crate.

use cps_control::ResidueNorm;
use cps_detectors::{Detector, ThresholdDetector};
use secure_cps::{
    synthesize_static_threshold, AttackSynthesizer, FarExperiment, LpAttackSynthesizer,
    MonitorEncoding, PivotSynthesizer, StepwiseSynthesizer, SynthesisConfig,
};

fn fast_config() -> SynthesisConfig {
    SynthesisConfig {
        convergence_margin: 0.25,
        ..SynthesisConfig::default()
    }
}

#[test]
fn every_benchmark_model_builds_and_runs_nominally() {
    for benchmark in cps_models::all_benchmarks().expect("models build") {
        let plant = benchmark.closed_loop.plant();
        let trace = benchmark.closed_loop.simulate(
            &benchmark.initial_state,
            benchmark.horizon,
            &cps_control::NoiseModel::none(plant.num_states(), plant.num_outputs()),
            None,
            0,
        );
        assert!(
            benchmark
                .performance
                .satisfied_by(trace.states().last().unwrap()),
            "{}: nominal run misses its performance criterion",
            benchmark.name
        );
        assert!(
            !benchmark.monitors.evaluate(trace.measurements()).alarmed(),
            "{}: nominal run trips its own monitors",
            benchmark.name
        );
    }
}

#[test]
fn end_to_end_pivot_synthesis_and_detection() {
    let benchmark = cps_models::trajectory_tracking().expect("model builds");
    let config = fast_config();

    // Algorithm 1 finds an attack on the undefended loop.
    let attack_synth = AttackSynthesizer::new(&benchmark, config);
    let undefended = attack_synth
        .synthesize(None)
        .expect("query decided")
        .expect("undefended loop attackable");
    assert!(attack_synth.verify_attack(&undefended, None));

    // Algorithm 2 produces thresholds under which Algorithm 1 proves safety.
    let report = PivotSynthesizer::new(&benchmark, config)
        .with_max_rounds(400)
        .run()
        .expect("synthesis runs");
    assert!(report.converged);
    assert!(report.is_monotone_decreasing());
    assert!(attack_synth
        .synthesize(Some(&report.partial))
        .expect("query decided")
        .is_none());

    // The synthesised detector flags the undefended attack.
    let detector = ThresholdDetector::new(report.threshold_spec(), ResidueNorm::Linf);
    assert!(detector.detects(&undefended.trace));
}

#[test]
fn end_to_end_stepwise_synthesis_and_far() {
    let benchmark = cps_models::trajectory_tracking().expect("model builds");
    let config = fast_config();

    let stepwise = StepwiseSynthesizer::new(&benchmark, config)
        .with_max_rounds(400)
        .run()
        .expect("synthesis runs");
    assert!(stepwise.is_monotone_decreasing());

    let (static_spec, _) =
        synthesize_static_threshold(&benchmark, config, 6).expect("bisection runs");
    let static_detector = ThresholdDetector::new(static_spec, ResidueNorm::Linf);
    let stepwise_detector = ThresholdDetector::new(stepwise.threshold_spec(), ResidueNorm::Linf);

    let experiment = FarExperiment::new(&benchmark, 60, 3);
    let report = experiment.run(&[
        ("stepwise", &stepwise_detector as &dyn Detector),
        ("static", &static_detector),
    ]);
    assert_eq!(report.generated, 60);
    assert!(report.kept > 0, "some noise rollouts must pass the filter");
    for (_, rate) in &report.rates {
        assert!((0.0..=1.0).contains(rate));
    }
}

#[test]
fn vsc_attack_exists_under_exact_dead_zone_at_reduced_horizon() {
    let benchmark = cps_models::vsc().expect("model builds");
    let config = SynthesisConfig {
        horizon_override: Some(10),
        ..SynthesisConfig::default()
    };
    let synth = AttackSynthesizer::new(&benchmark, config);
    let attack = synth.synthesize(None).expect("query decided");
    if let Some(attack) = attack {
        // The attack prevents the loop from meeting its performance criterion.
        let final_state = attack.trace.states().last().expect("non-empty trace");
        assert!(!benchmark.performance.satisfied_by(final_state));
        // The solver model satisfies the monitor constraints symbolically; the
        // re-simulated trace may graze a monitor bound within floating-point
        // round-off (the synthesized attack sits exactly on the limits), so the
        // runtime verdict is only reported, not asserted.
        let verdict = benchmark.monitors.evaluate(attack.trace.measurements());
        println!("runtime monitor verdict for the reduced-horizon VSC attack: {verdict:?}");
    }
}

/// Regression guard for PR 2's mis-reported-UNSAT bug: the dense from-scratch
/// core declared the T≥14 exact VSC query UNSAT after pivoting on ~1e-17
/// cancellation residue. The query is known SAT (the T=50 attack of Fig. 2
/// restricts to every prefix horizon), and it must *stay* SAT under each
/// ablation corner of the conflict-generalising engine — a wrong UNSAT here
/// is exactly the failure mode that would fabricate CEGIS certificates.
#[test]
fn vsc_exact_t14_stays_sat_under_every_engine_configuration() {
    let benchmark = cps_models::vsc().unwrap();
    for (incremental, propagation) in [(true, true), (true, false), (false, true)] {
        let config = SynthesisConfig {
            horizon_override: Some(14),
            solver: cps_smt::SolverConfig {
                incremental_theory: incremental,
                theory_propagation: propagation,
                ..cps_smt::SolverConfig::default()
            },
            ..fast_config()
        };
        let synthesizer = AttackSynthesizer::new(&benchmark, config);
        let attack = synthesizer
            .synthesize(None)
            .expect("query decided")
            .unwrap_or_else(|| {
                panic!(
                    "T=14 VSC query mis-reported UNSAT \
                     (incremental={incremental}, propagation={propagation})"
                )
            });
        assert!(
            synthesizer.verify_attack(&attack, None),
            "T=14 attack must verify under exact runtime semantics \
             (incremental={incremental}, propagation={propagation})"
        );
    }
}

/// Regression guard for PR 6's warm-started incremental CEGIS rounds: running
/// the same short VSC threshold synthesis twice — once with a fresh solver
/// per round, once with `incremental_rounds` reusing one solver through
/// push/pop scopes — must produce *identical* thresholds, round counts and
/// convergence flags. Warm starting is a perf lever, never a semantic one.
#[test]
fn vsc_warm_started_synthesis_matches_fresh_per_round_synthesis() {
    let benchmark = cps_models::vsc().expect("model builds");
    let run = |incremental_rounds: bool| {
        let config = SynthesisConfig {
            horizon_override: Some(14),
            solver: cps_smt::SolverConfig {
                incremental_rounds,
                ..cps_smt::SolverConfig::default()
            },
            ..fast_config()
        };
        PivotSynthesizer::new(&benchmark, config)
            .with_max_rounds(6)
            .run()
            .expect("synthesis runs")
    };
    let fresh = run(false);
    let warm = run(true);
    assert_eq!(
        warm.partial, fresh.partial,
        "warm-started rounds changed the synthesized thresholds"
    );
    assert_eq!(warm.rounds, fresh.rounds, "round counts diverged");
    assert_eq!(
        warm.converged, fresh.converged,
        "convergence verdicts diverged"
    );
    assert_eq!(
        warm.attacks_eliminated, fresh.attacks_eliminated,
        "counterexample counts diverged"
    );
    assert_eq!(
        fresh.solver_stats.scopes_reused, 0,
        "fresh-per-round runs must never report scope reuse"
    );
    assert!(
        warm.solver_stats.scopes_reused > 0,
        "warm run reported no reused scopes — incremental_rounds is not engaging"
    );
}

#[test]
fn vsc_conjunctive_monitors_block_dead_zone_free_attackers() {
    // With monitors enforced at every instant (no dead-zone slack), the
    // built-in solver proves that no stealthy attack defeats the VSC loop even
    // without a residue detector — evidence that the paper's attack relies on
    // the dead zone.
    let benchmark = cps_models::vsc().expect("model builds");
    let config = SynthesisConfig {
        monitor_encoding: MonitorEncoding::ConjunctiveAfter(5),
        ..SynthesisConfig::default()
    };
    let synth = AttackSynthesizer::new(&benchmark, config);
    assert!(synth.synthesize(None).expect("query decided").is_none());
}

#[test]
fn lp_ablation_agrees_with_smt_on_the_undefended_loop() {
    let benchmark = cps_models::trajectory_tracking().expect("model builds");
    let config = fast_config();
    let lp = LpAttackSynthesizer::new(&benchmark, config);
    let smt = AttackSynthesizer::new(&benchmark, config);
    let lp_attack = lp.synthesize(None);
    let smt_attack = smt.synthesize(None).expect("query decided");
    if lp_attack.is_some() {
        assert!(
            smt_attack.is_some(),
            "LP attacks must be a subset of SMT attacks"
        );
    }
}
