//! Differential suite for the streaming detection runtime: the small-vector
//! linalg backend, the allocation-free rollout engine and the batched
//! parallel FAR lanes must all be **bit-identical** to their materialising /
//! sequential references, on every plant in the zoo, attacked and
//! attack-free, across a seed matrix.
//!
//! `CPS_SMT_SEED` (the same knob the SMT differential suites use) shifts
//! every noise seed in the matrix, so each CI seed lane replays a disjoint
//! set of rollouts while staying exactly reproducible locally.

use cps_control::{ClosedLoop, NoiseModel, ResidueNorm, SensorAttack, StepBuffers, Trace};
use cps_detectors::{
    false_alarm_rate, false_alarm_rate_batched, Chi2Detector, CusumDetector, Detector,
    ThresholdDetector, ThresholdSpec,
};
use cps_linalg::Vector;
use cps_models::Benchmark;
use secure_cps::FarExperiment;

/// Base noise seeds, shifted by `CPS_SMT_SEED` so CI's seed matrix exercises
/// disjoint rollouts per lane.
fn seed_matrix() -> [u64; 3] {
    let shift: u64 = std::env::var("CPS_SMT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    [0, 7, 1234].map(|s: u64| s.wrapping_add(shift.wrapping_mul(0x9E37_79B9_7F4A_7C15)))
}

/// A deterministic non-trivial attack on the benchmark's attacked sensors:
/// a ramp up to the attack bound, zero on untouched sensors.
fn ramp_attack(benchmark: &Benchmark) -> SensorAttack {
    let outputs = benchmark.num_outputs();
    let injections = (0..benchmark.horizon)
        .map(|k| {
            let scale = benchmark.attack_bound * (k + 1) as f64 / benchmark.horizon as f64;
            Vector::from_fn(outputs, |i| {
                if benchmark.attacked_sensors.contains(&i) {
                    scale
                } else {
                    0.0
                }
            })
        })
        .collect();
    SensorAttack::new(injections)
}

fn simulate_streaming(
    loop_: &ClosedLoop,
    initial: &Vector,
    steps: usize,
    noise: &NoiseModel,
    attack: Option<&SensorAttack>,
    seed: u64,
) -> Trace {
    let mut buffers = StepBuffers::new();
    // `simulate` itself is built on `simulate_into`; drive the buffers
    // explicitly too so the final-state invariant below sees them.
    let trace = loop_.simulate(initial, steps, noise, attack, seed);
    let executed = loop_.simulate_into(initial, steps, noise, attack, seed, &mut buffers, |_| true);
    assert_eq!(executed, steps);
    assert_eq!(buffers.state(), trace.states().last().unwrap());
    assert_eq!(buffers.estimate(), trace.estimates().last().unwrap());
    trace
}

fn assert_traces_identical(a: &Trace, b: &Trace, context: &str) {
    assert_eq!(a.states(), b.states(), "{context}: states differ");
    assert_eq!(a.estimates(), b.estimates(), "{context}: estimates differ");
    assert_eq!(
        a.measurements(),
        b.measurements(),
        "{context}: measurements differ"
    );
    assert_eq!(a.controls(), b.controls(), "{context}: controls differ");
    assert_eq!(a.residues(), b.residues(), "{context}: residues differ");
}

/// The streaming rollout engine must reproduce the retired materialising
/// loop (`simulate_reference`) bit-for-bit on every plant, with and without
/// sensor attacks, for every seed in the matrix.
#[test]
fn streaming_rollouts_match_reference_on_every_plant() {
    for benchmark in cps_models::all_benchmarks().expect("models build") {
        let attack = ramp_attack(&benchmark);
        for seed in seed_matrix() {
            for attack in [None, Some(&attack)] {
                let context = format!(
                    "{} seed={seed} attacked={}",
                    benchmark.name,
                    attack.is_some()
                );
                let reference = benchmark.closed_loop.simulate_reference(
                    &benchmark.initial_state,
                    benchmark.horizon,
                    &benchmark.noise,
                    attack,
                    seed,
                );
                let streaming = simulate_streaming(
                    &benchmark.closed_loop,
                    &benchmark.initial_state,
                    benchmark.horizon,
                    &benchmark.noise,
                    attack,
                    seed,
                );
                assert_traces_identical(&streaming, &reference, &context);
            }
        }
    }
}

/// A heap-backed initial state must produce the exact same trace as the
/// (inline) small-vector representation: the storage backend is invisible to
/// the dynamics.
#[test]
fn heap_backed_initial_state_is_indistinguishable() {
    for benchmark in cps_models::all_benchmarks().expect("models build") {
        let heap_initial = Vector::heap_backed(benchmark.initial_state.as_slice().to_vec());
        assert_eq!(heap_initial, benchmark.initial_state);
        for seed in seed_matrix() {
            let inline_trace = benchmark.closed_loop.simulate(
                &benchmark.initial_state,
                benchmark.horizon,
                &benchmark.noise,
                None,
                seed,
            );
            let heap_trace = benchmark.closed_loop.simulate(
                &heap_initial,
                benchmark.horizon,
                &benchmark.noise,
                None,
                seed,
            );
            assert_traces_identical(&heap_trace, &inline_trace, &benchmark.name);
        }
    }
}

fn zoo_detectors(benchmark: &Benchmark) -> (ThresholdDetector, Chi2Detector, CusumDetector) {
    (
        ThresholdDetector::new(
            ThresholdSpec::constant(0.05, benchmark.horizon),
            ResidueNorm::Linf,
        ),
        Chi2Detector::new(5, 0.01, ResidueNorm::L2),
        CusumDetector::new(0.02, 0.08, ResidueNorm::Linf),
    )
}

/// The streaming batched-lane `FarExperiment::run` must report bit-identical
/// rates for every lane count, and those rates must equal the per-detector
/// rates over the materialised kept population.
#[test]
fn far_lanes_are_bit_identical_across_widths_and_to_materialised_rates() {
    for benchmark in cps_models::all_benchmarks().expect("models build") {
        let (threshold, chi2, cusum) = zoo_detectors(&benchmark);
        let detectors: [(&str, &dyn Detector); 3] =
            [("static", &threshold), ("chi2", &chi2), ("cusum", &cusum)];
        for seed in seed_matrix() {
            let sequential = FarExperiment::new(&benchmark, 48, seed).with_parallelism(1);
            let report_seq = sequential.run(&detectors);
            for lanes in [2, 3, 8] {
                let report_par = FarExperiment::new(&benchmark, 48, seed)
                    .with_parallelism(lanes)
                    .run(&detectors);
                assert_eq!(
                    report_seq, report_par,
                    "{} seed={seed}: {lanes}-lane report differs",
                    benchmark.name
                );
            }
            // Cross-check against the trace-materialising evaluation path.
            let kept = sequential.noise_traces();
            assert_eq!(report_seq.kept, kept.len());
            for (name, detector) in detectors {
                let rate = report_seq.rate_of(name).unwrap();
                let reference = false_alarm_rate(detector, &kept);
                assert_eq!(
                    rate.to_bits(),
                    reference.to_bits(),
                    "{} seed={seed} {name}: streaming rate differs",
                    benchmark.name
                );
                for lanes in [1, 2, 3, 8, 64] {
                    let batched = false_alarm_rate_batched(detector, &kept, lanes);
                    assert_eq!(
                        batched.to_bits(),
                        reference.to_bits(),
                        "{} seed={seed} {name}: {lanes}-lane batched rate differs",
                        benchmark.name
                    );
                }
            }
        }
    }
}

/// The streaming monitor scanner must agree with the slice-based
/// `MonitorSuite::first_alarm` on real simulated measurement streams —
/// including attacked ones, which is where monitors actually fire.
#[test]
fn monitor_scanner_matches_first_alarm_on_simulated_streams() {
    for benchmark in cps_models::all_benchmarks().expect("models build") {
        let attack = ramp_attack(&benchmark);
        for seed in seed_matrix() {
            for attack in [None, Some(&attack)] {
                let trace = benchmark.closed_loop.simulate(
                    &benchmark.initial_state,
                    benchmark.horizon,
                    &benchmark.noise,
                    attack,
                    seed,
                );
                let reference = benchmark.monitors.first_alarm(trace.measurements());
                let mut scan = benchmark.monitors.scanner();
                let streamed = trace.measurements().iter().position(|y| scan.step(y));
                assert_eq!(
                    streamed,
                    reference,
                    "{} seed={seed} attacked={}: scanner verdict differs",
                    benchmark.name,
                    attack.is_some()
                );
            }
        }
    }
}
