//! Randomized differential suite for the solver scale-out machinery: systems
//! with verdicts known **by construction** are checked across the full
//! 16-corner configuration grid (incremental theory × theory propagation ×
//! Luby restarts × clause-DB reduction).
//!
//! Two generator families pin the verdict in advance:
//! - *witnessed-SAT*: every atom holds at a hidden witness point, so any
//!   `Unsat` is a soundness failure;
//! - *staircase-UNSAT*: a descending chain of difference bounds whose total
//!   drop contradicts the closing demand, so any `Sat` is a completeness
//!   failure — and its model would be a fabricated CEGIS counterexample.
//!
//! A third test mixes both families in one query (the staircase poisons the
//! witnessed system), which forces real conflict-clause learning before the
//! `Unsat` verdict — the code path where restarts and database reduction
//! actually fire.

mod testutil;

use cps_smt::{CheckResult, Formula, SmtSolver, VarPool};
use testutil::{env_seed, eval, grid_configs, Gen};

const CASES: u64 = 80;

fn verdict(config: cps_smt::SolverConfig, pool: &VarPool, formulas: &[Formula]) -> CheckResult {
    let mut solver = SmtSolver::with_config(pool.clone(), config);
    for f in formulas {
        solver.assert(f.clone());
    }
    solver
        .check()
        .expect("budget is ample for generated systems")
}

#[test]
fn witnessed_sat_systems_are_sat_on_every_corner() {
    let mut gen = Gen::new(env_seed(0x5EED_5A7));
    for case in 0..CASES {
        let (pool, formulas) = gen.formula_system(true);
        for (config, label) in grid_configs() {
            match verdict(config, &pool, &formulas) {
                CheckResult::Sat(model) => {
                    for f in &formulas {
                        assert!(
                            eval(f, model.values()),
                            "case {case} ({label}): model violates {f}"
                        );
                    }
                }
                CheckResult::Unsat => {
                    panic!("case {case} ({label}): witness-backed system declared unsat")
                }
            }
        }
    }
}

#[test]
fn staircase_unsat_systems_are_unsat_on_every_corner() {
    let mut gen = Gen::new(env_seed(0x5EED_0115));
    for case in 0..CASES {
        let (pool, formulas) = gen.staircase_unsat_system();
        for (config, label) in grid_configs() {
            assert_eq!(
                verdict(config, &pool, &formulas),
                CheckResult::Unsat,
                "case {case} ({label}): contradictory staircase declared sat"
            );
        }
    }
}

/// Merges a witnessed-SAT system with a staircase-UNSAT system over a shared
/// pool: the conjunction is UNSAT, but the solver has to *search* for the
/// contradiction through the satisfiable clutter — driving enough conflicts
/// for the scale-out machinery to engage on the restart/reduction corners.
#[test]
fn poisoned_systems_are_unsat_on_every_corner() {
    let mut gen = Gen::new(env_seed(0x5EED_B0B));
    for case in 0..CASES {
        let (mut pool, mut formulas) = gen.formula_system(true);
        // Append a contradictory staircase over fresh variables of the same
        // pool: the combined conjunction is UNSAT, found only by search.
        formulas.extend(gen.staircase_unsat_into(&mut pool));
        for (config, label) in grid_configs() {
            assert_eq!(
                verdict(config, &pool, &formulas),
                CheckResult::Unsat,
                "case {case} ({label}): poisoned system declared sat"
            );
        }
    }
}
