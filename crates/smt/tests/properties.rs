//! Property-based tests: the SMT solver's verdicts are cross-checked against
//! direct evaluation of the formula on the produced model, and against a
//! brute-force closed form for interval and box problems with a known answer.
//!
//! `proptest` is not in the sanctioned offline crate set, so each property is
//! checked over a deterministic stream of pseudo-random cases drawn from the
//! workspace's shared [`cps_linalg::SplitMix64`] (seeded per test, so
//! failures reproduce).

mod testutil;

use cps_smt::{Formula, LinExpr, OptimizeOutcome, SmtSolver, VarId, VarPool};
use testutil::{env_seed, Gen};

const CASES: usize = 64;

/// A pool of `num_vars` variables `x0..` plus their ids (identical ids for
/// identical `num_vars`, so formulas transfer between equally sized pools).
fn pool_and_ids(num_vars: usize) -> (VarPool, Vec<VarId>) {
    let mut pool = VarPool::new();
    let ids = pool.fresh_block("x", num_vars);
    (pool, ids)
}

fn fresh_pool(num_vars: usize) -> VarPool {
    pool_and_ids(num_vars).0
}

/// Whenever the solver answers SAT, the returned model must actually satisfy
/// the asserted formula.
#[test]
fn sat_models_satisfy_the_formula() {
    let mut g = Gen::new(env_seed(0x5A7));
    let (_, ids) = pool_and_ids(3);
    for _ in 0..CASES {
        let formula = g.bound_formula(&ids, 3);
        let mut solver = SmtSolver::new(fresh_pool(3));
        solver.assert(formula.clone());
        if let Ok(result) = solver.check() {
            if let Some(model) = result.model() {
                assert!(
                    formula.holds(model.values()),
                    "model {:?} does not satisfy {formula}",
                    model.values()
                );
            }
        }
    }
}

/// A formula and its negation can never both be unsatisfiable.
#[test]
fn formula_or_negation_is_sat() {
    let mut g = Gen::new(env_seed(0x9E6));
    let (_, ids) = pool_and_ids(2);
    for _ in 0..CASES {
        let formula = g.bound_formula(&ids, 3);
        let verdict = |f: Formula| {
            let mut solver = SmtSolver::new(fresh_pool(2));
            solver.assert(f);
            solver.check().map(|r| r.is_sat())
        };
        let direct = verdict(formula.clone());
        let negated = verdict(Formula::not(formula));
        if let (Ok(a), Ok(b)) = (direct, negated) {
            assert!(a || b, "both a formula and its negation reported unsat");
        }
    }
}

/// Interval conjunctions have a known feasibility criterion: the largest lower
/// bound must not exceed the smallest upper bound.
#[test]
fn interval_conjunctions_match_closed_form() {
    let mut g = Gen::new(env_seed(0x17E));
    for _ in 0..CASES {
        let lowers: Vec<f64> = (0..1 + g.rng.usize_below(4))
            .map(|_| g.rng.range(-10.0, 10.0))
            .collect();
        let uppers: Vec<f64> = (0..1 + g.rng.usize_below(4))
            .map(|_| g.rng.range(-10.0, 10.0))
            .collect();
        let mut pool = VarPool::new();
        let x = pool.fresh("x");
        let mut solver = SmtSolver::new(pool);
        for &l in &lowers {
            solver.assert(Formula::atom(LinExpr::var(x).ge(l)));
        }
        for &u in &uppers {
            solver.assert(Formula::atom(LinExpr::var(x).le(u)));
        }
        let max_lower = lowers.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let min_upper = uppers.iter().cloned().fold(f64::INFINITY, f64::min);
        let expected = max_lower <= min_upper + 1e-9;
        let got = solver.check().unwrap().is_sat();
        assert_eq!(got, expected, "lowers {lowers:?} uppers {uppers:?}");
    }
}

/// Optimisation over a box returns the analytic optimum of a linear objective
/// (the appropriate corner of the box).
#[test]
fn box_lp_optimum_matches_corner() {
    let mut g = Gen::new(env_seed(0xB0C5));
    for _ in 0..CASES {
        let n = 2 + g.rng.usize_below(2);
        let bounds: Vec<(f64, f64)> = (0..n)
            .map(|_| (g.rng.range(-5.0, 0.0), g.rng.range(0.0, 5.0)))
            .collect();
        let coeffs: Vec<f64> = (0..n).map(|_| g.rng.range(-3.0, 3.0)).collect();
        let mut pool = VarPool::new();
        let vars: Vec<_> = (0..n).map(|i| pool.fresh(format!("x{i}"))).collect();
        let mut constraints = Vec::new();
        for (i, (lo, hi)) in bounds.iter().enumerate() {
            constraints.push(LinExpr::var(vars[i]).ge(*lo));
            constraints.push(LinExpr::var(vars[i]).le(*hi));
        }
        let objective =
            LinExpr::from_terms(vars.iter().zip(coeffs.iter()).map(|(v, c)| (*v, *c)), 0.0);
        let expected: f64 = bounds
            .iter()
            .zip(coeffs.iter())
            .map(|((lo, hi), c)| if *c >= 0.0 { c * hi } else { c * lo })
            .sum();
        match cps_smt::maximize(pool.len(), &constraints, &objective) {
            OptimizeOutcome::Optimal(value, _) => {
                assert!(
                    (value - expected).abs() < 1e-6,
                    "expected {expected}, got {value}"
                );
            }
            other => panic!("expected optimum, got {other:?}"),
        }
    }
}

/// Deterministic regression: a closed-loop-style chain of equalities with a
/// reachability query, small enough to verify by hand, exercised through the
/// full DPLL(T) stack.
#[test]
fn reachability_chain_has_expected_verdicts() {
    // x_{k+1} = 0.5 x_k + u_k, x_0 = 0, |u_k| <= 1, horizon 4.
    // max reachable x_4 = 1 + 0.5 + 0.25 + 0.125 = 1.875.
    let build = |target: f64| {
        let mut pool = VarPool::new();
        let xs = pool.fresh_block("x", 5);
        let us = pool.fresh_block("u", 4);
        let mut solver = SmtSolver::new(pool);
        solver.assert(Formula::atom(LinExpr::var(xs[0]).eq_to(0.0)));
        for k in 0..4 {
            let step = LinExpr::var(xs[k + 1]) - LinExpr::term(xs[k], 0.5) - LinExpr::var(us[k]);
            solver.assert(Formula::atom(step.eq_to(0.0)));
            solver.assert(Formula::atom(LinExpr::var(us[k]).le(1.0)));
            solver.assert(Formula::atom(LinExpr::var(us[k]).ge(-1.0)));
        }
        solver.assert(Formula::atom(LinExpr::var(xs[4]).ge(target)));
        solver.check().unwrap().is_sat()
    };
    assert!(build(1.8), "1.8 is reachable");
    assert!(!build(1.9), "1.9 exceeds the reachable set");
}
