//! Property-based tests: the SMT solver's verdicts are cross-checked against
//! direct evaluation of the formula on the produced model, and against a
//! brute-force enumeration for interval problems with a known answer.

use cps_smt::{Formula, LinExpr, OptimizeOutcome, SmtSolver, VarPool};
use proptest::prelude::*;

/// Generates a random conjunction/disjunction tree over `num_vars` variables
/// made of simple bound atoms `±x_i ⋈ c`.
fn formula_strategy(num_vars: usize) -> impl Strategy<Value = Formula> {
    let atom = (0..num_vars, -5.0f64..5.0, prop::bool::ANY, prop::bool::ANY).prop_map(
        move |(var, bound, upper, strict)| {
            let mut pool = VarPool::new();
            let ids: Vec<_> = (0..num_vars).map(|i| pool.fresh(format!("x{i}"))).collect();
            let expr = LinExpr::var(ids[var]);
            let constraint = match (upper, strict) {
                (true, false) => expr.le(bound),
                (true, true) => expr.lt(bound),
                (false, false) => expr.ge(bound),
                (false, true) => expr.gt(bound),
            };
            Formula::atom(constraint)
        },
    );
    atom.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 1..4).prop_map(Formula::and),
            prop::collection::vec(inner.clone(), 1..4).prop_map(Formula::or),
            inner.prop_map(Formula::not),
        ]
    })
}

fn fresh_pool(num_vars: usize) -> VarPool {
    let mut pool = VarPool::new();
    for i in 0..num_vars {
        pool.fresh(format!("x{i}"));
    }
    pool
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Whenever the solver answers SAT, the returned model must actually
    /// satisfy the asserted formula.
    #[test]
    fn sat_models_satisfy_the_formula(formula in formula_strategy(3)) {
        let pool = fresh_pool(3);
        let mut solver = SmtSolver::new(pool);
        solver.assert(formula.clone());
        if let Ok(result) = solver.check() {
            if let Some(model) = result.model() {
                prop_assert!(
                    formula.holds(model.values()),
                    "model {:?} does not satisfy {formula}",
                    model.values()
                );
            }
        }
    }

    /// A formula and its negation can never both be unsatisfiable.
    #[test]
    fn formula_or_negation_is_sat(formula in formula_strategy(2)) {
        let verdict = |f: Formula| {
            let mut solver = SmtSolver::new(fresh_pool(2));
            solver.assert(f);
            solver.check().map(|r| r.is_sat())
        };
        let direct = verdict(formula.clone());
        let negated = verdict(Formula::not(formula));
        if let (Ok(a), Ok(b)) = (direct, negated) {
            prop_assert!(a || b, "both a formula and its negation reported unsat");
        }
    }

    /// Interval conjunctions have a known feasibility criterion: the largest
    /// lower bound must not exceed the smallest upper bound.
    #[test]
    fn interval_conjunctions_match_closed_form(
        lowers in prop::collection::vec(-10.0f64..10.0, 1..5),
        uppers in prop::collection::vec(-10.0f64..10.0, 1..5),
    ) {
        let mut pool = VarPool::new();
        let x = pool.fresh("x");
        let mut solver = SmtSolver::new(pool);
        for &l in &lowers {
            solver.assert(Formula::atom(LinExpr::var(x).ge(l)));
        }
        for &u in &uppers {
            solver.assert(Formula::atom(LinExpr::var(x).le(u)));
        }
        let max_lower = lowers.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let min_upper = uppers.iter().cloned().fold(f64::INFINITY, f64::min);
        let expected = max_lower <= min_upper + 1e-9;
        let got = solver.check().unwrap().is_sat();
        prop_assert_eq!(got, expected, "lowers {:?} uppers {:?}", lowers, uppers);
    }

    /// Optimisation over a box returns the analytic optimum of a linear
    /// objective (the appropriate corner of the box).
    #[test]
    fn box_lp_optimum_matches_corner(
        bounds in prop::collection::vec((-5.0f64..0.0, 0.0f64..5.0), 2..4),
        coeffs in prop::collection::vec(-3.0f64..3.0, 2..4),
    ) {
        let n = bounds.len().min(coeffs.len());
        let mut pool = VarPool::new();
        let vars: Vec<_> = (0..n).map(|i| pool.fresh(format!("x{i}"))).collect();
        let mut constraints = Vec::new();
        for (i, (lo, hi)) in bounds.iter().take(n).enumerate() {
            constraints.push(LinExpr::var(vars[i]).ge(*lo));
            constraints.push(LinExpr::var(vars[i]).le(*hi));
        }
        let objective = LinExpr::from_terms(
            vars.iter().zip(coeffs.iter()).map(|(v, c)| (*v, *c)),
            0.0,
        );
        let expected: f64 = bounds
            .iter()
            .take(n)
            .zip(coeffs.iter())
            .map(|((lo, hi), c)| if *c >= 0.0 { c * hi } else { c * lo })
            .sum();
        match cps_smt::maximize(pool.len(), &constraints, &objective) {
            OptimizeOutcome::Optimal(value, _) => {
                prop_assert!((value - expected).abs() < 1e-6,
                    "expected {expected}, got {value}");
            }
            other => prop_assert!(false, "expected optimum, got {:?}", other),
        }
    }
}

/// Deterministic regression: a closed-loop-style chain of equalities with a
/// reachability query, small enough to verify by hand, exercised through the
/// full DPLL(T) stack.
#[test]
fn reachability_chain_has_expected_verdicts() {
    // x_{k+1} = 0.5 x_k + u_k, x_0 = 0, |u_k| <= 1, horizon 4.
    // max reachable x_4 = 1 + 0.5 + 0.25 + 0.125 = 1.875.
    let build = |target: f64| {
        let mut pool = VarPool::new();
        let xs = pool.fresh_block("x", 5);
        let us = pool.fresh_block("u", 4);
        let mut solver = SmtSolver::new(pool);
        solver.assert(Formula::atom(LinExpr::var(xs[0]).eq_to(0.0)));
        for k in 0..4 {
            let step = LinExpr::var(xs[k + 1]) - LinExpr::term(xs[k], 0.5) - LinExpr::var(us[k]);
            solver.assert(Formula::atom(step.eq_to(0.0)));
            solver.assert(Formula::atom(LinExpr::var(us[k]).le(1.0)));
            solver.assert(Formula::atom(LinExpr::var(us[k]).ge(-1.0)));
        }
        solver.assert(Formula::atom(LinExpr::var(xs[4]).ge(target)));
        solver.check().unwrap().is_sat()
    };
    assert!(build(1.8), "1.8 is reachable");
    assert!(!build(1.9), "1.9 exceeds the reachable set");
}
