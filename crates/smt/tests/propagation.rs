//! Differential tests for the conflict-generalising theory engine: on
//! randomized Boolean combinations of linear constraints, every ablation
//! corner of the DPLL(T) loop — theory propagation on/off crossed with
//! incremental/from-scratch theory backends — must return the same SAT/UNSAT
//! verdict, and satisfiable verdicts must come with models satisfying every
//! asserted formula.
//!
//! Half the systems are satisfiable **by construction** (every atom is
//! generated against a random witness point and the Boolean structure keeps
//! at least one all-witness-true branch), making any `Unsat` verdict on them
//! a soundness failure — the class of bug that would silently corrupt the
//! paper's CEGIS certificates.

use cps_linalg::SplitMix64;
use cps_smt::{Formula, LinExpr, SmtSolver, SolverConfig, VarId, VarPool};

const CASES: u64 = 120;

struct Gen {
    rng: SplitMix64,
}

impl Gen {
    fn new(seed: u64) -> Self {
        Self {
            rng: SplitMix64::new(seed),
        }
    }

    fn atom(&mut self, ids: &[VarId], point: &[f64], witness: bool) -> Formula {
        let terms = 1 + self.rng.usize_below(3);
        let mut expr = LinExpr::zero();
        for _ in 0..terms {
            let v = self.rng.usize_below(ids.len());
            expr.add_term(ids[v], self.rng.range(-2.0, 2.0));
        }
        let center = if witness {
            expr.evaluate(point)
        } else {
            self.rng.range(-4.0, 4.0)
        };
        let slack = self.rng.range(0.05, 1.0);
        let constraint = match self.rng.usize_below(5) {
            0 => expr.le(center + slack),
            1 => expr.lt(center + slack),
            2 => expr.ge(center - slack),
            3 => expr.gt(center - slack),
            _ => expr.eq_to(center),
        };
        Formula::atom(constraint)
    }

    /// A random formula. With `witness` set, every atom holds at `point`, so
    /// the whole formula is satisfied by the witness regardless of shape
    /// (conjunctions and disjunctions of true parts stay true).
    fn formula(&mut self, ids: &[VarId], point: &[f64], witness: bool, depth: usize) -> Formula {
        if depth == 0 || self.rng.usize_below(3) == 0 {
            return self.atom(ids, point, witness);
        }
        let parts: Vec<Formula> = (0..2 + self.rng.usize_below(2))
            .map(|_| self.formula(ids, point, witness, depth - 1))
            .collect();
        if self.rng.usize_below(2) == 0 {
            Formula::and(parts)
        } else {
            Formula::or(parts)
        }
    }

    fn system(&mut self, witness: bool) -> (VarPool, Vec<Formula>) {
        let n = 2 + self.rng.usize_below(3);
        let mut pool = VarPool::new();
        let ids = pool.fresh_block("x", n);
        let point: Vec<f64> = (0..n).map(|_| self.rng.range(-3.0, 3.0)).collect();
        let m = 2 + self.rng.usize_below(5);
        let formulas = (0..m)
            .map(|_| self.formula(&ids, &point, witness, 2))
            .collect();
        (pool, formulas)
    }
}

/// Evaluates a propagation-test formula (no free Boolean variables are
/// generated) at a real-valued model.
fn eval(f: &Formula, values: &[f64]) -> bool {
    match f {
        Formula::True => true,
        Formula::False => false,
        Formula::Atom(c) => c.holds(values),
        Formula::Not(inner) => !eval(inner, values),
        Formula::And(parts) => parts.iter().all(|p| eval(p, values)),
        Formula::Or(parts) => parts.iter().any(|p| eval(p, values)),
        Formula::BoolVar(_) => unreachable!("generator produces no free Boolean variables"),
    }
}

/// The four ablation corners: (incremental_theory, theory_propagation).
const CORNERS: [(bool, bool); 4] = [(true, true), (true, false), (false, true), (false, false)];

fn corner_config(incremental: bool, propagation: bool) -> SolverConfig {
    SolverConfig {
        incremental_theory: incremental,
        theory_propagation: propagation,
        ..SolverConfig::default()
    }
}

fn check_all_corners(case: u64, pool: &VarPool, formulas: &[Formula]) -> Vec<bool> {
    CORNERS
        .iter()
        .map(|&(incremental, propagation)| {
            let mut solver =
                SmtSolver::with_config(pool.clone(), corner_config(incremental, propagation));
            for f in formulas {
                solver.assert(f.clone());
            }
            match solver.check().expect("budget is ample for tiny systems") {
                cps_smt::CheckResult::Sat(model) => {
                    for f in formulas {
                        assert!(
                            eval(f, model.values()),
                            "case {case} (incremental={incremental}, \
                             propagation={propagation}): model violates {f}"
                        );
                    }
                    true
                }
                cps_smt::CheckResult::Unsat => false,
            }
        })
        .collect()
}

#[test]
fn ablation_corners_agree_on_witnessed_systems() {
    let mut gen = Gen::new(0x9A7E);
    for case in 0..CASES {
        let (pool, formulas) = gen.system(true);
        let verdicts = check_all_corners(case, &pool, &formulas);
        assert!(
            verdicts.iter().all(|v| *v),
            "case {case}: witness-backed system declared unsat by some corner: {verdicts:?}"
        );
    }
}

#[test]
fn ablation_corners_agree_on_arbitrary_systems() {
    let mut gen = Gen::new(0xD1CE);
    let mut sat = 0usize;
    let mut unsat = 0usize;
    for case in 0..CASES {
        let (pool, formulas) = gen.system(false);
        let verdicts = check_all_corners(case, &pool, &formulas);
        assert!(
            verdicts.iter().all(|v| *v == verdicts[0]),
            "case {case}: ablation corners disagree: {verdicts:?}"
        );
        if verdicts[0] {
            sat += 1;
        } else {
            unsat += 1;
        }
    }
    assert!(sat > 0, "generator never produced a satisfiable system");
    assert!(
        unsat > 0,
        "generator never produced an unsatisfiable system"
    );
}
