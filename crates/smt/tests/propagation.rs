//! Differential tests for the DPLL(T) engine configuration grid: on
//! randomized Boolean combinations of linear constraints, every ablation
//! corner — incremental/from-scratch theory backends × theory propagation ×
//! Luby restarts × clause-database reduction, the full 16-corner grid of
//! [`testutil::grid_configs`] — must return the same SAT/UNSAT verdict, and
//! satisfiable verdicts must come with models satisfying every asserted
//! formula.
//!
//! Half the systems are satisfiable **by construction** (every atom is
//! generated against a random witness point and the Boolean structure keeps
//! at least one all-witness-true branch), making any `Unsat` verdict on them
//! a soundness failure — the class of bug that would silently corrupt the
//! paper's CEGIS certificates.

mod testutil;

use cps_smt::{Formula, SmtSolver, VarPool};
use testutil::{env_seed, eval, grid_configs, Gen};

const CASES: u64 = 120;

/// Runs every grid corner on the system; returns the per-corner verdicts and
/// asserts model validity on each SAT verdict.
fn check_all_corners(case: u64, pool: &VarPool, formulas: &[Formula]) -> Vec<bool> {
    grid_configs()
        .iter()
        .map(|(config, label)| {
            let mut solver = SmtSolver::with_config(pool.clone(), *config);
            for f in formulas {
                solver.assert(f.clone());
            }
            match solver.check().expect("budget is ample for tiny systems") {
                cps_smt::CheckResult::Sat(model) => {
                    for f in formulas {
                        assert!(
                            eval(f, model.values()),
                            "case {case} ({label}): model violates {f}"
                        );
                    }
                    true
                }
                cps_smt::CheckResult::Unsat => false,
            }
        })
        .collect()
}

#[test]
fn grid_corners_agree_on_witnessed_systems() {
    let mut gen = Gen::new(env_seed(0x9A7E));
    for case in 0..CASES {
        let (pool, formulas) = gen.formula_system(true);
        let verdicts = check_all_corners(case, &pool, &formulas);
        assert!(
            verdicts.iter().all(|v| *v),
            "case {case}: witness-backed system declared unsat by some corner: {verdicts:?}"
        );
    }
}

#[test]
fn grid_corners_agree_on_arbitrary_systems() {
    let mut gen = Gen::new(env_seed(0xD1CE));
    let mut sat = 0usize;
    let mut unsat = 0usize;
    for case in 0..CASES {
        let (pool, formulas) = gen.formula_system(false);
        let verdicts = check_all_corners(case, &pool, &formulas);
        assert!(
            verdicts.iter().all(|v| *v == verdicts[0]),
            "case {case}: grid corners disagree: {verdicts:?}"
        );
        if verdicts[0] {
            sat += 1;
        } else {
            unsat += 1;
        }
    }
    assert!(sat > 0, "generator never produced a satisfiable system");
    assert!(
        unsat > 0,
        "generator never produced an unsatisfiable system"
    );
}
