//! Differential suite for budgeted/interrupted solving: a run interrupted on
//! any budget axis and then *retried on the same solver* with the budget
//! lifted must agree **bit-for-bit** — verdict and model values — with an
//! uninterrupted run on a fresh solver. This pins the central recovery
//! guarantee: an interruption never corrupts solver state, because every
//! check re-derives its search state from the clause database.
//!
//! Runs under the CI seed matrix via `CPS_SMT_SEED` like the other
//! differential suites.

mod testutil;

use std::time::{Duration, Instant};

use cps_smt::{Budget, CheckResult, Formula, InterruptReason, SmtError, SmtSolver, VarPool};
use testutil::{env_seed, grid_configs, Gen};

const CASES: u64 = 20;

/// The four interruption axes, each with a budget that trips *immediately* at
/// the first cooperative checkpoint so every generated case really exercises
/// the interrupt-then-retry path.
fn axes() -> Vec<(&'static str, Budget, InterruptReason)> {
    vec![
        (
            "deadline",
            Budget::unlimited().with_deadline(Instant::now() - Duration::from_secs(1)),
            InterruptReason::Deadline,
        ),
        (
            "conflicts",
            Budget::unlimited().with_conflict_cap(0),
            InterruptReason::ConflictBudget,
        ),
        (
            "pivots",
            Budget::unlimited().with_pivot_cap(0),
            InterruptReason::PivotBudget,
        ),
        // Cancellation is wired separately (the token is cancelled up front
        // and reset before the retry).
        ("cancelled", Budget::unlimited(), InterruptReason::Cancelled),
    ]
}

fn build(config: cps_smt::SolverConfig, pool: &VarPool, formulas: &[Formula]) -> SmtSolver {
    let mut solver = SmtSolver::with_config(pool.clone(), config);
    for f in formulas {
        solver.assert(f.clone());
    }
    solver
}

fn assert_bit_identical(
    reference: &CheckResult,
    retried: &CheckResult,
    pool: &VarPool,
    context: &str,
) {
    match (reference, retried) {
        (CheckResult::Sat(a), CheckResult::Sat(b)) => {
            for var in pool.iter() {
                let (va, vb) = (a.value(var), b.value(var));
                assert!(
                    va.to_bits() == vb.to_bits(),
                    "{context}: model diverged at {var:?}: {va} vs {vb}"
                );
            }
        }
        (CheckResult::Unsat, CheckResult::Unsat) => {}
        _ => panic!("{context}: verdict diverged: {reference:?} vs {retried:?}"),
    }
}

fn run_axis_suite(seed: u64, witness: bool) {
    let mut gen = Gen::new(seed);
    for case in 0..CASES {
        let (pool, formulas) = if witness {
            gen.formula_system(true)
        } else {
            gen.staircase_unsat_system()
        };
        for (config, label) in grid_configs() {
            // Reference: uninterrupted check on a fresh solver.
            let reference = build(config, &pool, &formulas)
                .check()
                .expect("unbudgeted check completes");

            for (axis, budget, expected) in axes() {
                let mut solver = build(config, &pool, &formulas);
                if axis == "cancelled" {
                    solver.cancel_token().cancel();
                } else {
                    solver.set_budget(budget);
                }
                let context = format!("case {case} ({label}, axis {axis})");
                match solver.check() {
                    Err(SmtError::Interrupted { reason, .. }) => {
                        assert_eq!(reason, expected, "{context}: wrong interrupt reason");
                    }
                    other => panic!("{context}: expected interruption, got {other:?}"),
                }

                // Retry on the SAME solver with the budget lifted.
                solver.set_budget(Budget::unlimited());
                solver.cancel_token().reset();
                let retried = solver
                    .check()
                    .unwrap_or_else(|e| panic!("{context}: retry failed: {e:?}"));
                assert_bit_identical(&reference, &retried, &pool, &context);
            }
        }
    }
}

#[test]
fn interrupted_then_retried_matches_fresh_run_on_sat_systems() {
    run_axis_suite(env_seed(0x0B5D_5A7), true);
}

#[test]
fn interrupted_then_retried_matches_fresh_run_on_unsat_systems() {
    run_axis_suite(env_seed(0x0B5D_0115), false);
}
