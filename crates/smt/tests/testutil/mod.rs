//! Shared deterministic generators, evaluators and configuration grids for
//! the crate's randomized differential test suites. Every integration-test
//! binary that needs them declares `mod testutil;`, so any single binary
//! uses only a subset of the items — hence the file-level `dead_code` allow.
//!
//! All randomness flows through the workspace's [`cps_linalg::SplitMix64`]
//! with explicit seeds, so failures reproduce exactly. CI runs the suites
//! under a seed matrix via the `CPS_SMT_SEED` environment variable (see
//! [`env_seed`]).
#![allow(dead_code)]

use cps_linalg::SplitMix64;
use cps_smt::{Constraint, Formula, LinExpr, SolverConfig, VarId, VarPool};

/// Mixes a test's base seed with the `CPS_SMT_SEED` environment variable so
/// CI can sweep a seed matrix without recompiling. Unset, empty or `0` leaves
/// the base seed unchanged (the default local run).
pub fn env_seed(base: u64) -> u64 {
    match std::env::var("CPS_SMT_SEED") {
        Ok(raw) => match raw.trim().parse::<u64>() {
            Ok(0) | Err(_) => base,
            // SplitMix64's odd gamma decorrelates base^1 from base^2 runs.
            Ok(n) => base ^ n.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        },
        Err(_) => base,
    }
}

/// The full 2×2×2×2 ablation grid of [`SolverConfig`] corners:
/// `incremental_theory` × `theory_propagation` × `restarts` ×
/// `clause_db_reduction`, each paired with a human-readable label for
/// failure messages. `incremental_rounds` is not a search dimension (it only
/// selects who owns the solver across rounds), so it keeps its default here
/// and is exercised separately by the CEGIS replay suite.
pub fn grid_configs() -> Vec<(SolverConfig, String)> {
    let mut corners = Vec::with_capacity(16);
    for incremental in [true, false] {
        for propagation in [true, false] {
            for restarts in [true, false] {
                for reduction in [true, false] {
                    let config = SolverConfig {
                        incremental_theory: incremental,
                        theory_propagation: propagation,
                        restarts,
                        clause_db_reduction: reduction,
                        ..SolverConfig::default()
                    };
                    let label = format!(
                        "inc={incremental},prop={propagation},restart={restarts},reduce={reduction}"
                    );
                    corners.push((config, label));
                }
            }
        }
    }
    corners
}

/// Evaluates a generated formula (no free Boolean variables) at a
/// real-valued model.
pub fn eval(f: &Formula, values: &[f64]) -> bool {
    match f {
        Formula::True => true,
        Formula::False => false,
        Formula::Atom(c) => c.holds(values),
        Formula::Not(inner) => !eval(inner, values),
        Formula::And(parts) => parts.iter().all(|p| eval(p, values)),
        Formula::Or(parts) => parts.iter().any(|p| eval(p, values)),
        Formula::BoolVar(_) => unreachable!("generators produce no free Boolean variables"),
    }
}

/// Deterministic random-system generator shared by the differential suites.
pub struct Gen {
    pub rng: SplitMix64,
}

impl Gen {
    pub fn new(seed: u64) -> Self {
        Self {
            rng: SplitMix64::new(seed),
        }
    }

    /// A random linear atom over up to three of the given variables. With
    /// `witness` set the atom is generated to hold at `point`.
    pub fn atom(&mut self, ids: &[VarId], point: &[f64], witness: bool) -> Formula {
        let terms = 1 + self.rng.usize_below(3);
        let mut expr = LinExpr::zero();
        for _ in 0..terms {
            let v = self.rng.usize_below(ids.len());
            expr.add_term(ids[v], self.rng.range(-2.0, 2.0));
        }
        let center = if witness {
            expr.evaluate(point)
        } else {
            self.rng.range(-4.0, 4.0)
        };
        let slack = self.rng.range(0.05, 1.0);
        let constraint = match self.rng.usize_below(5) {
            0 => expr.le(center + slack),
            1 => expr.lt(center + slack),
            2 => expr.ge(center - slack),
            3 => expr.gt(center - slack),
            _ => expr.eq_to(center),
        };
        Formula::atom(constraint)
    }

    /// A random formula tree. With `witness` set, every atom holds at
    /// `point`, so the whole formula is satisfied by the witness regardless
    /// of shape (conjunctions and disjunctions of true parts stay true).
    pub fn formula(
        &mut self,
        ids: &[VarId],
        point: &[f64],
        witness: bool,
        depth: usize,
    ) -> Formula {
        if depth == 0 || self.rng.usize_below(3) == 0 {
            return self.atom(ids, point, witness);
        }
        let parts: Vec<Formula> = (0..2 + self.rng.usize_below(2))
            .map(|_| self.formula(ids, point, witness, depth - 1))
            .collect();
        if self.rng.usize_below(2) == 0 {
            Formula::and(parts)
        } else {
            Formula::or(parts)
        }
    }

    /// A random formula system. With `witness` set it is satisfiable **by
    /// construction** (every atom holds at a hidden witness point), making
    /// any `Unsat` verdict on it a soundness failure.
    pub fn formula_system(&mut self, witness: bool) -> (VarPool, Vec<Formula>) {
        let n = 2 + self.rng.usize_below(3);
        let mut pool = VarPool::new();
        let ids = pool.fresh_block("x", n);
        let point: Vec<f64> = (0..n).map(|_| self.rng.range(-3.0, 3.0)).collect();
        let m = 2 + self.rng.usize_below(5);
        let formulas = (0..m)
            .map(|_| self.formula(&ids, &point, witness, 2))
            .collect();
        (pool, formulas)
    }

    /// A *staircase-UNSAT* system: a chain `x_{i+1} ≤ x_i − d_i` of strictly
    /// descending steps whose total drop contradicts the closing demand
    /// `x_{n−1} ≥ x_0 − total + gap`, so the conjunction is unsatisfiable
    /// **by construction**. Random links are wrapped in disjunctions whose
    /// alternative branch implies an even steeper descent, so every Boolean
    /// branch preserves the contradiction and no search path escapes it.
    pub fn staircase_unsat_system(&mut self) -> (VarPool, Vec<Formula>) {
        let mut pool = VarPool::new();
        let formulas = self.staircase_unsat_into(&mut pool);
        (pool, formulas)
    }

    /// [`Gen::staircase_unsat_system`] over fresh variables appended to an
    /// existing pool — used to poison an otherwise-satisfiable system.
    pub fn staircase_unsat_into(&mut self, pool: &mut VarPool) -> Vec<Formula> {
        let n = 3 + self.rng.usize_below(4);
        let ids = pool.fresh_block("s", n);
        let mut formulas = Vec::new();
        let mut total_drop = 0.0;
        for i in 0..n - 1 {
            let drop = self.rng.range(0.2, 1.5);
            total_drop += drop;
            let step = (LinExpr::var(ids[i + 1]) - LinExpr::var(ids[i])).le(-drop);
            let link = if self.rng.usize_below(3) == 0 {
                // Either this step, or a strictly steeper one: both descend
                // by at least `drop`, so the staircase stays contradictory.
                let steeper = (LinExpr::var(ids[i + 1]) - LinExpr::var(ids[i])).le(-drop - 1.0);
                Formula::or(vec![Formula::atom(step), Formula::atom(steeper)])
            } else {
                Formula::atom(step)
            };
            formulas.push(link);
        }
        // The closing demand undercuts the guaranteed total descent.
        let gap = self.rng.range(0.01, 0.1);
        let closing = (LinExpr::var(ids[n - 1]) - LinExpr::var(ids[0])).ge(-total_drop + gap);
        formulas.push(Formula::atom(closing));
        formulas
    }

    /// A random raw constraint system (tagged conjunction, no Boolean
    /// structure) for simplex-level differential tests. With `witness` set
    /// the conjunction is feasible by construction.
    pub fn constraint_system(&mut self, witness: bool) -> (VarPool, Vec<(Constraint, usize)>) {
        let n = 2 + self.rng.usize_below(4);
        let mut pool = VarPool::new();
        let ids: Vec<VarId> = pool.fresh_block("x", n);
        let point: Vec<f64> = (0..n).map(|_| self.rng.range(-3.0, 3.0)).collect();
        let m = 3 + self.rng.usize_below(12);
        let mut constraints = Vec::new();
        for tag in 0..m {
            let terms = 1 + self.rng.usize_below(3);
            let mut expr = LinExpr::zero();
            for _ in 0..terms {
                let v = self.rng.usize_below(n);
                expr.add_term(ids[v], self.rng.range(-2.0, 2.0));
            }
            let center = if witness {
                expr.evaluate(&point)
            } else {
                self.rng.range(-4.0, 4.0)
            };
            let slack = self.rng.range(0.0, 1.0);
            let constraint = match self.rng.usize_below(5) {
                0 => expr.le(center + slack),
                1 => expr.lt(center + slack + 0.001),
                2 => expr.ge(center - slack),
                3 => expr.gt(center - slack - 0.001),
                _ => expr.eq_to(center),
            };
            constraints.push((constraint, tag));
        }
        (pool, constraints)
    }

    /// A simple single-variable bound atom `±x_i ⋈ c` (the property-test
    /// shape: verdicts have closed forms).
    pub fn bound_atom(&mut self, ids: &[VarId]) -> Formula {
        let var = self.rng.usize_below(ids.len());
        let bound = self.rng.range(-5.0, 5.0);
        let expr = LinExpr::var(ids[var]);
        let constraint = match (self.rng.bool(), self.rng.bool()) {
            (true, false) => expr.le(bound),
            (true, true) => expr.lt(bound),
            (false, false) => expr.ge(bound),
            (false, true) => expr.gt(bound),
        };
        Formula::atom(constraint)
    }

    /// A random conjunction/disjunction/negation tree over bound atoms, with
    /// the given remaining recursion depth.
    pub fn bound_formula(&mut self, ids: &[VarId], depth: usize) -> Formula {
        if depth == 0 {
            return self.bound_atom(ids);
        }
        match self.rng.usize_below(4) {
            0 => {
                let n = 1 + self.rng.usize_below(3);
                Formula::and((0..n).map(|_| self.bound_formula(ids, depth - 1)).collect())
            }
            1 => {
                let n = 1 + self.rng.usize_below(3);
                Formula::or((0..n).map(|_| self.bound_formula(ids, depth - 1)).collect())
            }
            2 => Formula::not(self.bound_formula(ids, depth - 1)),
            _ => self.bound_atom(ids),
        }
    }
}
