//! Randomized fault-injection suite (compiled only with the `fault-injection`
//! feature): deterministic seeded faults — clock jumps, spurious
//! cancellations, forced theory-verdict divergence, NaN/inf model
//! perturbation — are injected into solver runs over systems whose verdicts
//! are known by construction, across the full 16-corner configuration grid.
//!
//! The invariant under test: a faulted run returns the **correct** verdict or
//! a typed [`SmtError::Interrupted`] — never a wrong `Sat`/`Unsat`, never a
//! panic. Runs under the CI seed matrix via `CPS_SMT_SEED`.
#![cfg(feature = "fault-injection")]

mod testutil;

use std::time::Duration;

use cps_smt::{Budget, CheckResult, FaultPlan, FaultSpec, Formula, SmtError, SmtSolver, VarPool};
use testutil::{env_seed, eval, grid_configs, Gen};

const CASES: u64 = 12;

/// Per-kind plans (one site each, aggressive rates) plus the all-kinds sweep.
/// The boolean marks plans that need a wall-clock deadline armed: the clock
/// fault site is only visited when a deadline is set.
fn plans(seed: u64) -> Vec<(&'static str, FaultPlan, bool)> {
    let spec = FaultSpec::new(0.5, 3);
    let mut clock = FaultPlan::quiet(seed);
    clock.clock_jump = spec;
    let mut cancel = FaultPlan::quiet(seed ^ 1);
    cancel.spurious_cancel = spec;
    let mut diverge = FaultPlan::quiet(seed ^ 2);
    diverge.forced_divergence = spec;
    let mut nan = FaultPlan::quiet(seed ^ 3);
    nan.nan_perturbation = spec;
    vec![
        ("clock-jump", clock, true),
        ("spurious-cancel", cancel, false),
        ("forced-divergence", diverge, false),
        ("nan-perturbation", nan, false),
        ("all-kinds", FaultPlan::all(seed ^ 4, 0.2, 2), false),
    ]
}

/// Runs one faulted check and enforces the soundness invariant. Returns the
/// number of faults that actually fired.
fn check_faulted(
    config: cps_smt::SolverConfig,
    pool: &VarPool,
    formulas: &[Formula],
    plan: FaultPlan,
    with_deadline: bool,
    expect_sat: bool,
    context: &str,
) -> u32 {
    let mut solver = SmtSolver::with_config(pool.clone(), config);
    for f in formulas {
        solver.assert(f.clone());
    }
    solver.install_faults(plan);
    if with_deadline {
        // Generous enough that only an injected clock jump can plausibly
        // trip it — and an early `Deadline` interruption is a legal outcome.
        solver.set_budget(Budget::unlimited().with_timeout(Duration::from_secs(30)));
    }
    match solver.check() {
        Ok(CheckResult::Sat(model)) => {
            assert!(expect_sat, "{context}: contradictory system declared sat");
            for (i, value) in model.values().iter().enumerate() {
                assert!(
                    value.is_finite(),
                    "{context}: non-finite model value {value} at index {i}"
                );
            }
            for f in formulas {
                assert!(eval(f, model.values()), "{context}: model violates {f}");
            }
        }
        Ok(CheckResult::Unsat) => {
            assert!(
                !expect_sat,
                "{context}: witness-backed system declared unsat"
            );
        }
        Err(SmtError::Interrupted { .. }) => {
            // Graceful typed interruption: always legal under faults.
        }
        Err(other) => panic!("{context}: unexpected error {other:?}"),
    }
    solver.fault_fires()
}

fn run_fault_suite(seed: u64, expect_sat: bool) {
    let mut gen = Gen::new(seed);
    let mut total_fires = 0u32;
    for case in 0..CASES {
        let (pool, formulas) = if expect_sat {
            gen.formula_system(true)
        } else {
            gen.staircase_unsat_system()
        };
        for (config, label) in grid_configs() {
            for (kind, plan, with_deadline) in plans(seed ^ (case << 8)) {
                let context = format!("case {case} ({label}, fault {kind})");
                total_fires += check_faulted(
                    config,
                    &pool,
                    &formulas,
                    plan,
                    with_deadline,
                    expect_sat,
                    &context,
                );
            }
        }
    }
    assert!(
        total_fires > 0,
        "the sweep must actually exercise the fault paths"
    );
}

#[test]
fn faulted_runs_never_fabricate_unsat_on_witnessed_sat_systems() {
    run_fault_suite(env_seed(0xFA17_5A7), true);
}

#[test]
fn faulted_runs_never_fabricate_sat_on_staircase_unsat_systems() {
    run_fault_suite(env_seed(0xFA17_0115), false);
}
