//! Fuzz loop replaying CEGIS-shaped query sequences both *incrementally*
//! (one long-lived solver; each round's constraints in a `push`/`pop` scope
//! over the once-asserted base system) and *from scratch* (a fresh solver per
//! round re-asserting base + round). Every round's verdict — and on SAT, the
//! model's exact floating-point values — must be bit-identical between the
//! two replays, on every corner of the 16-corner configuration grid. This is
//! the property that lets the synthesis layer warm-start its rounds
//! (`SolverConfig::incremental_rounds`) without changing a single synthesized
//! threshold.

mod testutil;

use cps_smt::{CheckResult, Formula, SmtSolver, VarPool};
use testutil::{env_seed, grid_configs, Gen};

const CASES: u64 = 25;
const ROUNDS: usize = 6;

/// One generated CEGIS-shaped workload: a satisfiable base system plus a
/// sequence of per-round constraint sets of varying tightness (some rounds
/// SAT, some UNSAT — mimicking threshold vectors marching toward the final
/// UNSAT certificate).
struct Workload {
    pool: VarPool,
    base: Vec<Formula>,
    rounds: Vec<Vec<Formula>>,
}

fn workload(gen: &mut Gen) -> Workload {
    let n = 2 + gen.rng.usize_below(3);
    let mut pool = VarPool::new();
    let ids = pool.fresh_block("x", n);
    let point: Vec<f64> = (0..n).map(|_| gen.rng.range(-3.0, 3.0)).collect();
    let base = (0..2 + gen.rng.usize_below(3))
        .map(|_| gen.formula(&ids, &point, true, 2))
        .collect();
    let rounds = (0..ROUNDS)
        .map(|round| {
            // Later rounds draw fewer witnessed atoms, drifting toward
            // infeasibility the way tightening thresholds do.
            (0..1 + gen.rng.usize_below(3))
                .map(|_| {
                    let witnessed = gen.rng.usize_below(ROUNDS) > round;
                    gen.formula(&ids, &point, witnessed, 2)
                })
                .collect()
        })
        .collect();
    Workload { pool, base, rounds }
}

#[test]
fn incremental_rounds_replay_identically_to_scratch_rounds() {
    let mut gen = Gen::new(env_seed(0xCE_615));
    for case in 0..CASES {
        let w = workload(&mut gen);
        for (config, label) in grid_configs() {
            // Incremental replay: one warm solver across all rounds.
            let mut warm = SmtSolver::with_config(w.pool.clone(), config);
            for f in &w.base {
                warm.assert(f.clone());
            }
            for (round, constraints) in w.rounds.iter().enumerate() {
                warm.push();
                for f in constraints {
                    warm.assert(f.clone());
                }
                let warm_verdict = warm.check().expect("ample budget");
                warm.pop();

                // From-scratch replay of the same round.
                let mut fresh = SmtSolver::with_config(w.pool.clone(), config);
                for f in w.base.iter().chain(constraints.iter()) {
                    fresh.assert(f.clone());
                }
                let fresh_verdict = fresh.check().expect("ample budget");

                match (&warm_verdict, &fresh_verdict) {
                    (CheckResult::Sat(a), CheckResult::Sat(b)) => assert_eq!(
                        a.values(),
                        b.values(),
                        "case {case} round {round} ({label}): models differ bitwise"
                    ),
                    (CheckResult::Unsat, CheckResult::Unsat) => {}
                    other => {
                        panic!("case {case} round {round} ({label}): verdicts disagree: {other:?}")
                    }
                }
            }
            // After all rounds the warm solver is back to base scope and must
            // still agree with a fresh base-only check.
            let warm_base = warm.check().expect("ample budget");
            let mut fresh = SmtSolver::with_config(w.pool.clone(), config);
            for f in &w.base {
                fresh.assert(f.clone());
            }
            assert_eq!(
                warm_base,
                fresh.check().expect("ample budget"),
                "case {case} ({label}): post-replay base state diverged"
            );
        }
    }
}
