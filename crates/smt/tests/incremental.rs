//! Differential tests for the incremental sparse simplex: on randomized
//! constraint systems, the push/pop incremental path must return the same
//! feasibility verdicts as the one-shot from-scratch `Simplex::check`, and
//! feasible verdicts must come with assignments that satisfy every asserted
//! constraint.
//!
//! Cases are drawn from the workspace's deterministic [`cps_linalg::SplitMix64`]
//! (seeded per test, so failures reproduce). Roughly half the systems are
//! feasible **by construction** (every constraint is generated to hold at a
//! random witness point), which makes any `Infeasible` verdict on them an
//! immediate soundness failure rather than a silent disagreement.

mod testutil;

use cps_linalg::SplitMix64;
use cps_smt::simplex::{Simplex, SimplexResult};
use cps_smt::Constraint;
use testutil::{env_seed, Gen};

const CASES: u64 = 300;

fn assert_model_satisfies(constraints: &[(Constraint, usize)], model: &[f64]) {
    for (constraint, tag) in constraints {
        assert!(
            constraint.holds(model),
            "feasible verdict but constraint {tag} is violated: {constraint}"
        );
    }
}

/// Replays the constraint set through the incremental API with interleaved
/// marks, retractions and re-assertions, ending in a state equivalent to
/// asserting everything once. Returns the final verdict.
fn incremental_verdict(
    rng: &mut SplitMix64,
    num_vars: usize,
    constraints: &[(Constraint, usize)],
) -> Result<Vec<f64>, ()> {
    let mut simplex = Simplex::new(num_vars);
    // Phase 1: assert a random prefix, solve, then retract it entirely.
    let mark = simplex.mark();
    let prefix = rng.usize_below(constraints.len() + 1);
    let mut contradicted = false;
    for (constraint, tag) in &constraints[..prefix] {
        if simplex.assert_atom(constraint, *tag).is_err() {
            contradicted = true;
            break;
        }
    }
    if !contradicted {
        let _ = simplex.solve();
    }
    simplex.pop_to(mark);
    assert!(
        simplex.solve().is_ok(),
        "retracting every bound must restore feasibility"
    );
    // Phase 2: assert everything, solving after random chunks.
    for (constraint, tag) in constraints {
        if simplex.assert_atom(constraint, *tag).is_err() {
            return Err(());
        }
        if rng.usize_below(3) == 0 && simplex.solve().is_err() {
            return Err(());
        }
    }
    match simplex.solve() {
        Ok(()) => Ok(simplex.concrete_assignment()),
        Err(_) => Err(()),
    }
}

#[test]
fn incremental_agrees_with_from_scratch_on_feasible_systems() {
    let mut gen = Gen::new(env_seed(0xFEA51B1E));
    for case in 0..CASES {
        let (pool, constraints) = gen.constraint_system(true);
        match Simplex::check(pool.len(), &constraints) {
            SimplexResult::Feasible(model) => assert_model_satisfies(&constraints, &model),
            SimplexResult::Infeasible(tags) => {
                panic!("case {case}: witness-backed system declared infeasible ({tags:?})")
            }
        }
        let mut rng = SplitMix64::new(0xAB + case);
        let model = incremental_verdict(&mut rng, pool.len(), &constraints)
            .unwrap_or_else(|()| panic!("case {case}: incremental path declared infeasible"));
        assert_model_satisfies(&constraints, &model);
    }
}

#[test]
fn incremental_agrees_with_from_scratch_on_arbitrary_systems() {
    let mut gen = Gen::new(env_seed(0xD1FF));
    let mut feasible = 0usize;
    let mut infeasible = 0usize;
    for case in 0..CASES {
        let (pool, constraints) = gen.constraint_system(false);
        let scratch = Simplex::check(pool.len(), &constraints);
        let mut rng = SplitMix64::new(0xCD + case);
        let incremental = incremental_verdict(&mut rng, pool.len(), &constraints);
        match (&scratch, &incremental) {
            (SimplexResult::Feasible(model), Ok(inc_model)) => {
                feasible += 1;
                assert_model_satisfies(&constraints, model);
                assert_model_satisfies(&constraints, inc_model);
            }
            (SimplexResult::Infeasible(_), Err(())) => infeasible += 1,
            other => panic!("case {case}: verdicts disagree: {other:?}"),
        }
    }
    assert!(feasible > 0, "generator never produced a feasible system");
    assert!(
        infeasible > 0,
        "generator never produced an infeasible system"
    );
}

#[test]
fn infeasibility_explanations_are_conflicting_subsets() {
    let mut gen = Gen::new(env_seed(0xE1));
    let mut checked = 0usize;
    for _ in 0..CASES {
        let (pool, constraints) = gen.constraint_system(false);
        if let SimplexResult::Infeasible(tags) = Simplex::check(pool.len(), &constraints) {
            // The explanation must itself be infeasible (it is a conflicting
            // subset, not just a pointer into the input).
            let subset: Vec<(Constraint, usize)> = constraints
                .iter()
                .filter(|(_, tag)| tags.contains(tag))
                .cloned()
                .collect();
            assert!(
                !Simplex::check(pool.len(), &subset).is_feasible(),
                "explanation {tags:?} is not itself conflicting"
            );
            checked += 1;
        }
    }
    assert!(checked > 0, "no infeasible system generated");
}
