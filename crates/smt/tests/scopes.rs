//! Property tests for the solver's `push`/`pop` assertion scopes: retracting
//! a scope must restore the solver to a state *bit-identical* to one that
//! never saw the scoped assertions — same verdict, same model values — both
//! for the simple assert → push → assert → pop pattern and for randomized
//! interleavings of asserts, pushes and pops. Scope restoration is what makes
//! warm-started CEGIS rounds equivalent to fresh-per-round ones, so these
//! properties are checked across the full 16-corner configuration grid.

mod testutil;

use cps_linalg::SplitMix64;
use cps_smt::{CheckResult, Formula, SmtSolver, SolverConfig, VarId, VarPool};
use testutil::{env_seed, grid_configs, Gen};

const CASES: u64 = 60;

fn fresh_verdict(config: SolverConfig, pool: &VarPool, formulas: &[Formula]) -> CheckResult {
    let mut solver = SmtSolver::with_config(pool.clone(), config);
    for f in formulas {
        solver.assert(f.clone());
    }
    solver.check().expect("ample budget")
}

/// Generation harness: a pool with ids and a witness point, from which both
/// base and scope formulas are drawn (arbitrary polarity, so verdicts vary).
fn setup(gen: &mut Gen) -> (VarPool, Vec<VarId>, Vec<f64>) {
    let n = 2 + gen.rng.usize_below(3);
    let mut pool = VarPool::new();
    let ids = pool.fresh_block("x", n);
    let point: Vec<f64> = (0..n).map(|_| gen.rng.range(-3.0, 3.0)).collect();
    (pool, ids, point)
}

#[test]
fn pop_restores_the_never_pushed_state() {
    let mut gen = Gen::new(env_seed(0x5C0_9E5));
    for case in 0..CASES {
        let (pool, ids, point) = setup(&mut gen);
        let base: Vec<Formula> = (0..1 + gen.rng.usize_below(3))
            .map(|_| gen.formula(&ids, &point, true, 2))
            .collect();
        let scoped: Vec<Formula> = (0..1 + gen.rng.usize_below(3))
            .map(|_| gen.formula(&ids, &point, false, 2))
            .collect();
        for (config, label) in grid_configs() {
            let mut solver = SmtSolver::with_config(pool.clone(), config);
            for f in &base {
                solver.assert(f.clone());
            }
            solver.push();
            for f in &scoped {
                solver.assert(f.clone());
            }
            let _ = solver.check().expect("ample budget");
            solver.pop();
            let after_pop = solver.check().expect("ample budget");
            let never_pushed = fresh_verdict(config, &pool, &base);
            assert_eq!(
                after_pop, never_pushed,
                "case {case} ({label}): check after pop differs from never-pushed state"
            );
        }
    }
}

#[test]
fn randomized_interleavings_match_flat_assertions() {
    let mut gen = Gen::new(env_seed(0x5C0_1EA7));
    for case in 0..CASES {
        let (pool, ids, point) = setup(&mut gen);
        let mut ops_rng = SplitMix64::new(0xA11CE ^ case);
        // Shadow stack of assertion frames; frame 0 is the base level.
        let mut frames: Vec<Vec<Formula>> = vec![Vec::new()];
        let config = SolverConfig::default();
        let mut solver = SmtSolver::with_config(pool.clone(), config);
        for _ in 0..6 + ops_rng.usize_below(8) {
            match ops_rng.usize_below(4) {
                // Assert into the current innermost frame.
                0 | 1 => {
                    let f = gen.formula(&ids, &point, ops_rng.usize_below(2) == 0, 2);
                    solver.assert(f.clone());
                    frames.last_mut().expect("frame 0 always exists").push(f);
                }
                2 => {
                    solver.push();
                    frames.push(Vec::new());
                }
                _ => {
                    if frames.len() > 1 {
                        solver.pop();
                        frames.pop();
                    }
                }
            }
            // Occasionally check mid-sequence: scope bookkeeping must survive
            // checks interleaved with pushes and pops.
            if ops_rng.usize_below(4) == 0 {
                let _ = solver.check().expect("ample budget");
            }
        }
        assert_eq!(solver.scope_depth(), frames.len() - 1);
        let live: Vec<Formula> = frames.iter().flatten().cloned().collect();
        let interleaved = solver.check().expect("ample budget");
        let flat = fresh_verdict(config, &pool, &live);
        assert_eq!(
            interleaved, flat,
            "case {case}: interleaved push/pop state diverged from flat assertions"
        );
    }
}
