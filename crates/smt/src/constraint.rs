use std::fmt;

use crate::LinExpr;

/// Relational operator of an atomic linear constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum RelOp {
    /// `expr <= bound`
    Le,
    /// `expr < bound`
    Lt,
    /// `expr >= bound`
    Ge,
    /// `expr > bound`
    Gt,
    /// `expr = bound`
    Eq,
}

impl RelOp {
    /// The operator describing the negation of a constraint with this operator.
    ///
    /// `Eq` has no atomic negation (it becomes a disjunction `< ∨ >`), which is
    /// handled at the formula level; this method therefore panics for `Eq`.
    ///
    /// # Panics
    ///
    /// Panics when called on [`RelOp::Eq`].
    pub fn negated(self) -> RelOp {
        match self {
            RelOp::Le => RelOp::Gt,
            RelOp::Lt => RelOp::Ge,
            RelOp::Ge => RelOp::Lt,
            RelOp::Gt => RelOp::Le,
            RelOp::Eq => panic!("negation of an equality is not an atomic constraint"),
        }
    }
}

impl fmt::Display for RelOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RelOp::Le => "<=",
            RelOp::Lt => "<",
            RelOp::Ge => ">=",
            RelOp::Gt => ">",
            RelOp::Eq => "=",
        };
        f.write_str(s)
    }
}

/// An atomic linear constraint `expr ⋈ bound` over real variables.
///
/// Constraints are produced from [`LinExpr`] via [`LinExpr::le`],
/// [`LinExpr::lt`], [`LinExpr::ge`], [`LinExpr::gt`] and [`LinExpr::eq_to`].
/// The constant part of the expression is folded into the bound so the stored
/// form is canonical (`expr` has a zero constant term).
///
/// # Example
///
/// ```
/// use cps_smt::{LinExpr, RelOp, VarPool};
///
/// let mut pool = VarPool::new();
/// let x = pool.fresh("x");
/// let c = (LinExpr::var(x) + LinExpr::constant(1.0)).le(3.0);
/// assert_eq!(c.op(), RelOp::Le);
/// assert_eq!(c.bound(), 2.0); // constant folded into the bound
/// assert!(c.holds(&[1.5]));
/// assert!(!c.holds(&[2.5]));
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Constraint {
    expr: LinExpr,
    op: RelOp,
    bound: f64,
}

/// Slack used by [`Constraint::holds`] to absorb floating-point round-off.
const EVAL_EPS: f64 = 1e-9;

impl Constraint {
    /// Creates a constraint `expr ⋈ bound`, folding the expression's constant
    /// term into the bound.
    pub fn new(expr: LinExpr, op: RelOp, bound: f64) -> Self {
        let constant = expr.constant_term();
        let mut canonical = expr;
        canonical.add_constant(-constant);
        Self {
            expr: canonical,
            op,
            bound: bound - constant,
        }
    }

    /// The (constant-free) linear expression on the left-hand side.
    pub fn expr(&self) -> &LinExpr {
        &self.expr
    }

    /// The relational operator.
    pub fn op(&self) -> RelOp {
        self.op
    }

    /// The right-hand-side bound.
    pub fn bound(&self) -> f64 {
        self.bound
    }

    /// Returns `true` when the left-hand side and the bound are finite
    /// (see [`LinExpr::is_finite`]).
    pub fn is_finite(&self) -> bool {
        self.bound.is_finite() && self.expr.is_finite()
    }

    /// Returns the negation of this constraint as one or two atomic
    /// constraints (an equality negates to a disjunction of two strict
    /// inequalities).
    pub fn negate(&self) -> Vec<Constraint> {
        match self.op {
            RelOp::Eq => vec![
                Constraint {
                    expr: self.expr.clone(),
                    op: RelOp::Lt,
                    bound: self.bound,
                },
                Constraint {
                    expr: self.expr.clone(),
                    op: RelOp::Gt,
                    bound: self.bound,
                },
            ],
            op => vec![Constraint {
                expr: self.expr.clone(),
                op: op.negated(),
                bound: self.bound,
            }],
        }
    }

    /// Evaluates the constraint under a dense assignment.
    ///
    /// Non-strict comparisons and equalities are evaluated with a small
    /// tolerance to absorb floating-point round-off; strict comparisons are
    /// evaluated exactly so that a constraint and its negation never both hold
    /// at the boundary.
    ///
    /// # Panics
    ///
    /// Panics if the assignment is shorter than the largest variable index.
    pub fn holds(&self, assignment: &[f64]) -> bool {
        let value = self.expr.evaluate(assignment);
        match self.op {
            RelOp::Le => value <= self.bound + EVAL_EPS,
            RelOp::Lt => value < self.bound,
            RelOp::Ge => value >= self.bound - EVAL_EPS,
            RelOp::Gt => value > self.bound,
            RelOp::Eq => (value - self.bound).abs() <= EVAL_EPS,
        }
    }
}

impl fmt::Display for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {:.6}", self.expr, self.op, self.bound)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::VarPool;

    #[test]
    fn constant_folding_into_bound() {
        let mut pool = VarPool::new();
        let x = pool.fresh("x");
        let c = (LinExpr::var(x) + LinExpr::constant(2.5)).ge(1.0);
        assert_eq!(c.bound(), -1.5);
        assert_eq!(c.expr().constant_term(), 0.0);
    }

    #[test]
    fn negation_of_inequalities() {
        let mut pool = VarPool::new();
        let x = pool.fresh("x");
        let le = LinExpr::var(x).le(2.0);
        let neg = le.negate();
        assert_eq!(neg.len(), 1);
        assert_eq!(neg[0].op(), RelOp::Gt);
        assert_eq!(neg[0].bound(), 2.0);

        let gt = LinExpr::var(x).gt(0.0);
        assert_eq!(gt.negate()[0].op(), RelOp::Le);
    }

    #[test]
    fn negation_of_equality_splits() {
        let mut pool = VarPool::new();
        let x = pool.fresh("x");
        let eq = LinExpr::var(x).eq_to(1.0);
        let neg = eq.negate();
        assert_eq!(neg.len(), 2);
        assert_eq!(neg[0].op(), RelOp::Lt);
        assert_eq!(neg[1].op(), RelOp::Gt);
    }

    #[test]
    fn holds_evaluates_all_operators() {
        let mut pool = VarPool::new();
        let x = pool.fresh("x");
        assert!(LinExpr::var(x).le(1.0).holds(&[0.5]));
        assert!(!LinExpr::var(x).le(1.0).holds(&[1.5]));
        assert!(LinExpr::var(x).ge(1.0).holds(&[1.5]));
        assert!(LinExpr::var(x).lt(1.0).holds(&[0.5]));
        assert!(LinExpr::var(x).gt(1.0).holds(&[1.5]));
        assert!(LinExpr::var(x).eq_to(1.0).holds(&[1.0]));
        assert!(!LinExpr::var(x).eq_to(1.0).holds(&[1.1]));
    }

    #[test]
    #[should_panic(expected = "negation of an equality")]
    fn relop_eq_negation_panics() {
        let _ = RelOp::Eq.negated();
    }

    #[test]
    fn display_contains_operator() {
        let mut pool = VarPool::new();
        let x = pool.fresh("x");
        let c = LinExpr::var(x).lt(0.5);
        assert!(format!("{c}").contains('<'));
    }
}
