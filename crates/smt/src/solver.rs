use std::error::Error;
use std::fmt;
use std::sync::Arc;
use std::time::Instant;

use std::collections::HashMap;

use crate::budget::{Budget, CancelToken, Governor, InterruptReason};
use crate::sat::{Lit, SatSolver};
use crate::simplex::{ImpliedBound, Simplex};
use crate::tseitin::{CnfBuilder, CnfMark};
use crate::{Constraint, Formula, RelOp, VarId, VarPool};

/// Cumulative-pivot threshold after which the incremental tableau is rebuilt
/// from the original constraints as numerical hygiene (see
/// [`SmtSolver::theory_check`]).
const PIVOT_REBUILD_THRESHOLD: u64 = 50_000;

/// Configuration of the DPLL(T) search loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolverConfig {
    /// Maximum number of propositional + theory conflicts before the solver
    /// gives up with [`SmtError::Interrupted`]
    /// ([`InterruptReason::ConflictBudget`]). This mirrors the per-query
    /// timeout the paper applies to each Z3 call; a per-*run* wall-clock
    /// deadline is set separately via [`SmtSolver::set_budget`].
    pub max_conflicts: u64,
    /// If non-zero, a theory consistency check also runs on the partial
    /// assignment every `partial_check_interval` decisions (in addition to the
    /// mandatory check at full assignments). Early checks prune the search at
    /// the cost of more simplex runs — with the incremental theory backend a
    /// partial check only processes the literals assigned since the previous
    /// check, so a small interval is cheap.
    pub partial_check_interval: u64,
    /// Selects the theory backend. `true` (default): a persistent simplex is
    /// kept in lock-step with the SAT trail — theory checks assert only the
    /// newly assigned literals' bounds and backtracking pops bounds instead
    /// of rebuilding. `false`: rebuild the tableau from scratch on every
    /// theory check, the PR-1 discipline (kept as an ablation baseline for
    /// the `solver_ablation` bench; pair it with PR-1's
    /// `partial_check_interval` of 32 for a faithful baseline — the default
    /// interval of 1 assumes cheap incremental checks).
    pub incremental_theory: bool,
    /// Enables theory-level bound propagation (`true` by default): after a
    /// consistent partial theory check, bounds implied by the asserted ones
    /// are derived by interval-propagating the tableau rows
    /// ([`Simplex::propagate_bounds`]), and every theory atom decided by a
    /// derived bound is fixed on the SAT trail with a persistent implication
    /// clause whose antecedents come from the bound implication graph.
    /// Conflicts between derived and asserted bounds surface immediately with
    /// generalised explanations instead of waiting for a pivot-level
    /// certificate. `false` disables all of it — the PR-2 "check-at-leaves"
    /// discipline — as an ablation baseline, independently toggleable from
    /// [`SolverConfig::incremental_theory`].
    pub theory_propagation: bool,
    /// Enables Luby-sequence search restarts (`true` by default): the SAT
    /// core abandons its current subtree every `luby(i) · 256` conflicts,
    /// carrying phase saving, VSIDS activities and all learned clauses across
    /// the restart. Cheap insurance against heavy-tailed search: a run that
    /// committed to a bad prefix early gets to re-decide it with mature
    /// activities.
    pub restarts: bool,
    /// Enables learned-clause database reduction (`true` by default): when
    /// the deletable learned-clause count exceeds a growing cap, the
    /// lowest-activity half of the high-glue clauses is deleted at the next
    /// level-zero opportunity. Problem clauses and persistent theory
    /// implication clauses are exempt (deleting an implication clause would
    /// force the theory to re-derive it with fresh simplex work).
    pub clause_db_reduction: bool,
    /// Warm-started incremental CEGIS rounds (`true` by default). Consumed by
    /// the synthesis layer, not by [`SmtSolver::check`] itself: when set, the
    /// attack synthesizer keeps **one** solver per synthesis run, asserts the
    /// round-invariant encoding once, and wraps each round's threshold
    /// constraints in a [`SmtSolver::push`]/[`SmtSolver::pop`] scope. Every
    /// `check` still derives its search state from the accumulated CNF alone,
    /// so warm rounds return bit-identical verdicts, models and thresholds to
    /// fresh-per-round runs — the speedup comes from not re-encoding the
    /// round-invariant formulas (monitors, attack bounds, performance
    /// violation) every round.
    pub incremental_rounds: bool,
}

impl Default for SolverConfig {
    fn default() -> Self {
        Self {
            max_conflicts: 2_000_000,
            partial_check_interval: 1,
            incremental_theory: true,
            theory_propagation: true,
            restarts: true,
            clause_db_reduction: true,
            incremental_rounds: true,
        }
    }
}

/// Statistics gathered during a [`SmtSolver::check`] call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Propositional decisions made.
    pub decisions: u64,
    /// Propositional conflicts resolved.
    pub conflicts: u64,
    /// Theory (simplex) feasibility checks performed.
    pub theory_checks: u64,
    /// Theory conflicts that produced learned clauses.
    pub theory_conflicts: u64,
    /// Simplex pivots performed across all theory checks.
    pub pivots: u64,
    /// Times the incremental tableau was rebuilt from the original
    /// constraints (numerical-hygiene refactorisations; not counted in
    /// from-scratch ablation mode, where every check rebuilds by design).
    pub theory_rebuilds: u64,
    /// Wall-clock nanoseconds spent inside the theory solver (bound
    /// synchronisation + simplex).
    pub simplex_nanos: u64,
    /// Bounds derived by theory propagation
    /// ([`SolverConfig::theory_propagation`]).
    pub implied_bounds: u64,
    /// Theory atoms fixed on the SAT trail by a derived bound (each comes
    /// with a persistent implication clause).
    pub propagated_literals: u64,
    /// Total literals across all theory-conflict explanations; divide by
    /// [`SolverStats::theory_conflicts`] for the mean explanation length —
    /// the conflict-generalisation quality metric.
    pub explanation_literals: u64,
    /// Simplex violation-priority-queue pops (the pivot-selection hot path).
    pub queue_pops: u64,
    /// Luby restarts performed by the SAT core
    /// ([`SolverConfig::restarts`]).
    pub restarts: u64,
    /// Learned clauses deleted by database reduction
    /// ([`SolverConfig::clause_db_reduction`]).
    pub clauses_deleted: u64,
    /// `check` calls served by a warm solver (one that had already completed
    /// an earlier `check`, so its round-invariant encoding was reused instead
    /// of rebuilt). Aggregated over a CEGIS run this counts the warm-started
    /// rounds; it stays zero in fresh-per-round mode.
    pub scopes_reused: u64,
}

impl SolverStats {
    /// Wall-clock time spent inside the theory solver.
    pub fn simplex_time(&self) -> std::time::Duration {
        std::time::Duration::from_nanos(self.simplex_nanos)
    }

    /// Mean theory-conflict explanation length (0 when no conflicts arose).
    pub fn mean_explanation_len(&self) -> f64 {
        if self.theory_conflicts == 0 {
            0.0
        } else {
            self.explanation_literals as f64 / self.theory_conflicts as f64
        }
    }

    /// Adds `other`'s counters into `self` — used to aggregate per-query
    /// statistics over a multi-round CEGIS run.
    pub fn absorb(&mut self, other: &SolverStats) {
        self.decisions += other.decisions;
        self.conflicts += other.conflicts;
        self.theory_checks += other.theory_checks;
        self.theory_conflicts += other.theory_conflicts;
        self.pivots += other.pivots;
        self.theory_rebuilds += other.theory_rebuilds;
        self.simplex_nanos += other.simplex_nanos;
        self.implied_bounds += other.implied_bounds;
        self.propagated_literals += other.propagated_literals;
        self.explanation_literals += other.explanation_literals;
        self.queue_pops += other.queue_pops;
        self.restarts += other.restarts;
        self.clauses_deleted += other.clauses_deleted;
        self.scopes_reused += other.scopes_reused;
    }
}

/// Errors returned by [`SmtSolver::check`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum SmtError {
    /// The check stopped before deciding its query — "Unknown" as a
    /// first-class verdict. The reason says which resource axis tripped
    /// (wall-clock deadline, cancellation, conflict or pivot budget; see
    /// [`Budget`] and [`CancelToken`]) and the carried statistics attribute
    /// the work done up to the interruption. The solver's assertion store is
    /// untouched: re-running [`SmtSolver::check`] with a larger budget
    /// resumes from the CNF and returns the verdict the uninterrupted run
    /// would have returned, bit-identically.
    Interrupted {
        /// Which budget axis (or cancellation) stopped the run.
        reason: InterruptReason,
        /// Statistics gathered up to the interruption.
        stats: SolverStats,
    },
    /// An assertion containing a NaN or ±inf coefficient or bound was
    /// rejected at the API boundary ([`SmtSolver::assert`]). Non-finite
    /// values would otherwise propagate silently through the tableau and
    /// poison every verdict; the error clears when the offending assertion
    /// scope is popped.
    NonFiniteAssertion,
}

impl SmtError {
    /// The interrupt reason, when the error is an interruption.
    pub fn interrupt_reason(&self) -> Option<InterruptReason> {
        match self {
            SmtError::Interrupted { reason, .. } => Some(*reason),
            _ => None,
        }
    }
}

impl fmt::Display for SmtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SmtError::Interrupted { reason, stats } => write!(
                f,
                "solver interrupted ({reason}) after {} conflicts / {} pivots",
                stats.conflicts, stats.pivots
            ),
            SmtError::NonFiniteAssertion => {
                write!(f, "assertion contains a non-finite coefficient or bound")
            }
        }
    }
}

impl Error for SmtError {}

/// A satisfying assignment for the real-valued variables of a query.
#[derive(Debug, Clone, PartialEq)]
pub struct Model {
    values: Vec<f64>,
}

impl Model {
    /// Value assigned to `var` (variables never mentioned in the assertions
    /// default to zero).
    pub fn value(&self, var: VarId) -> f64 {
        self.values.get(var.index()).copied().unwrap_or(0.0)
    }

    /// Dense slice of all variable values, indexed by [`VarId::index`].
    pub fn values(&self) -> &[f64] {
        &self.values
    }
}

/// Result of a satisfiability check.
#[derive(Debug, Clone, PartialEq)]
pub enum CheckResult {
    /// The assertions are satisfiable; a model is provided.
    Sat(Model),
    /// The assertions are unsatisfiable.
    Unsat,
}

impl CheckResult {
    /// Returns `true` for [`CheckResult::Sat`].
    pub fn is_sat(&self) -> bool {
        matches!(self, CheckResult::Sat(_))
    }

    /// Extracts the model.
    ///
    /// # Panics
    ///
    /// Panics if the result is [`CheckResult::Unsat`].
    pub fn expect_sat(self) -> Model {
        match self {
            CheckResult::Sat(model) => model,
            CheckResult::Unsat => panic!("expected a satisfiable result"),
        }
    }

    /// Returns the model if satisfiable.
    pub fn model(self) -> Option<Model> {
        match self {
            CheckResult::Sat(model) => Some(model),
            CheckResult::Unsat => None,
        }
    }
}

/// Persistent theory state kept in lock-step with the SAT trail.
///
/// Every theory atom's expression is registered in the simplex once (slack
/// rows are shared between atoms over the same expression); the `stack`
/// mirrors the subsequence of SAT trail literals that are theory atoms,
/// together with the simplex trail mark taken before each literal's bound
/// was asserted. Synchronisation pops the stack back to the longest prefix
/// still present on the SAT trail (backtracking only truncates the trail, so
/// prefix positions stay valid) and pushes bounds for the newly assigned
/// atom literals.
#[derive(Debug)]
struct TheoryContext {
    simplex: Simplex,
    /// Per-atom `(tableau variable, bound scale)` slot from [`Simplex::define`].
    atom_slot: Vec<(usize, f64)>,
    /// Reverse index: tableau variable → atoms bounding it, used to turn
    /// derived bounds into SAT-trail literal propagations.
    var_atoms: HashMap<usize, Vec<u32>>,
    stack: Vec<SyncedLit>,
}

#[derive(Debug, Clone, Copy)]
struct SyncedLit {
    /// Position of `lit` on the SAT trail when it was synchronised.
    trail_pos: u32,
    lit: Lit,
    /// Simplex trail mark taken before asserting this literal's bound.
    mark: usize,
}

impl TheoryContext {
    fn new(num_real_vars: usize, cnf: &CnfBuilder, track_implied: bool) -> Self {
        let mut simplex = Simplex::new(num_real_vars);
        simplex.set_bound_tracking(track_implied);
        let atom_slot: Vec<(usize, f64)> = cnf
            .atoms()
            .iter()
            .map(|atom| simplex.define(atom.expr()))
            .collect();
        let mut var_atoms: HashMap<usize, Vec<u32>> = HashMap::new();
        for (atom_idx, &(var, _)) in atom_slot.iter().enumerate() {
            var_atoms.entry(var).or_default().push(atom_idx as u32);
        }
        Self {
            simplex,
            atom_slot,
            var_atoms,
            stack: Vec::new(),
        }
    }
}

/// Lazy DPLL(T) solver for quantifier-free linear real arithmetic.
///
/// Assertions are accumulated with [`SmtSolver::assert`] and the conjunction
/// of all assertions is decided by [`SmtSolver::check`]. The solver is a
/// drop-in substitute for the Z3 queries issued by Algorithm 1 of the paper.
///
/// The theory side is *incremental* (Dutertre–de Moura): one persistent
/// [`Simplex`] per `check` call owns the tableau, theory checks assert only
/// the bounds of literals assigned since the previous check, and SAT
/// backtracking retracts bounds by popping the simplex trail instead of
/// rebuilding. See [`SolverConfig::incremental_theory`] for the from-scratch
/// ablation switch.
///
/// See the [crate-level documentation](crate) for a complete example.
#[derive(Debug)]
pub struct SmtSolver {
    vars: VarPool,
    cnf: CnfBuilder,
    config: SolverConfig,
    stats: SolverStats,
    /// Open assertion scopes ([`SmtSolver::push`]), oldest first.
    scopes: Vec<CnfMark>,
    /// Total [`SmtSolver::check`] calls completed on this solver — the basis
    /// of the [`SolverStats::scopes_reused`] warm-round accounting.
    checks_completed: u64,
    /// Resource budget applied to every check ([`SmtSolver::set_budget`]).
    budget: Budget,
    /// Cooperative cancellation flag shared with the caller.
    cancel: CancelToken,
    /// Per-check governor; rebuilt at the start of every [`SmtSolver::check`]
    /// and consulted by the SAT core, the simplex and the theory-check layer.
    governor: Option<Arc<Governor>>,
    /// Scope depth at which a non-finite assertion was rejected, if any
    /// (`Some(0)` poisons the solver permanently; deeper poisons clear when
    /// the offending scope is popped).
    poison_depth: Option<usize>,
    /// Armed fault injector ([`SmtSolver::install_faults`]); shared with each
    /// check's governor so fire counts persist across warm rounds.
    #[cfg(feature = "fault-injection")]
    faults: Option<Arc<std::sync::Mutex<crate::fault::FaultInjector>>>,
}

/// Minimum number of unassigned theory atoms for bound propagation to be
/// worth attempting. Small SAT-leaning queries (a conjunction plus one thin
/// disjunction) leave only a couple of atoms undecided; interval-propagating
/// the whole tableau to maybe fix them costs more than the entire search.
/// Dead-zone-style encodings leave dozens-to-hundreds of atoms open, which
/// is where propagation collapses the search.
const PROP_MIN_UNASSIGNED_ATOMS: usize = 8;

impl SmtSolver {
    /// Creates a solver over the variables allocated in `vars`.
    pub fn new(vars: VarPool) -> Self {
        Self::with_config(vars, SolverConfig::default())
    }

    /// Creates a solver with an explicit search configuration.
    pub fn with_config(vars: VarPool, config: SolverConfig) -> Self {
        Self {
            vars,
            cnf: CnfBuilder::new(),
            config,
            stats: SolverStats::default(),
            scopes: Vec::new(),
            checks_completed: 0,
            budget: Budget::unlimited(),
            cancel: CancelToken::new(),
            governor: None,
            poison_depth: None,
            #[cfg(feature = "fault-injection")]
            faults: None,
        }
    }

    /// Installs a resource [`Budget`] applied to every subsequent
    /// [`SmtSolver::check`]. The deadline is absolute, so one budget shared
    /// across several checks (warm CEGIS rounds) bounds the whole run.
    pub fn set_budget(&mut self, budget: Budget) {
        self.budget = budget;
    }

    /// The currently installed budget.
    pub fn budget(&self) -> Budget {
        self.budget
    }

    /// A clone of the solver's cancellation token: cancel it from any thread
    /// to make a running check unwind with [`InterruptReason::Cancelled`].
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// Replaces the solver's cancellation token (e.g. to share one token
    /// across a portfolio of solvers).
    pub fn set_cancel_token(&mut self, token: CancelToken) {
        self.cancel = token;
    }

    /// Arms a deterministic fault-injection plan (see [`crate::fault`]).
    /// Compiled only with the `fault-injection` feature.
    #[cfg(feature = "fault-injection")]
    pub fn install_faults(&mut self, plan: crate::fault::FaultPlan) {
        self.faults = Some(Arc::new(std::sync::Mutex::new(
            crate::fault::FaultInjector::new(plan),
        )));
    }

    /// Total fault fires so far across the armed plan's kinds (see
    /// [`crate::fault::FaultInjector::total_fires`]); `0` when no plan is
    /// armed.
    #[cfg(feature = "fault-injection")]
    pub fn fault_fires(&self) -> u32 {
        self.faults
            .as_ref()
            .map_or(0, |f| f.lock().expect("fault injector lock").total_fires())
    }

    /// The variable pool the solver was created with.
    pub fn vars(&self) -> &VarPool {
        &self.vars
    }

    /// Statistics of the most recent [`SmtSolver::check`] call.
    pub fn stats(&self) -> SolverStats {
        self.stats
    }

    /// Adds an assertion to the conjunction to be checked.
    ///
    /// An assertion containing a non-finite (NaN/±inf) coefficient or bound
    /// is **rejected** instead of encoded: the solver records the poisoning
    /// and every [`SmtSolver::check`] fails with
    /// [`SmtError::NonFiniteAssertion`] until the scope holding the rejected
    /// assertion is popped. Keeping `assert` infallible preserves the
    /// builder-style call sites; the typed error surfaces at the
    /// `Result`-returning boundary.
    pub fn assert(&mut self, formula: Formula) {
        if !formula_is_finite(&formula) {
            let depth = self.scopes.len();
            self.poison_depth = Some(self.poison_depth.map_or(depth, |d| d.min(depth)));
            return;
        }
        self.cnf.assert_formula(&formula);
    }

    /// Opens an assertion scope. Assertions added after `push` — together
    /// with every theory atom and auxiliary Boolean variable their encoding
    /// introduces — are retracted by the matching [`SmtSolver::pop`].
    ///
    /// Scoping acts on the *assertion store* (the accumulated CNF), not on
    /// search state: each [`SmtSolver::check`] derives its SAT and theory
    /// engines from the store, so a check after `pop` behaves exactly as if
    /// the popped assertions had never been made. That is what makes warm
    /// CEGIS rounds ([`SolverConfig::incremental_rounds`]) bit-identical to
    /// fresh-per-round ones.
    pub fn push(&mut self) {
        self.scopes.push(self.cnf.mark());
    }

    /// Closes the innermost assertion scope, retracting everything asserted
    /// since the matching [`SmtSolver::push`].
    ///
    /// # Panics
    ///
    /// Panics when no scope is open.
    pub fn pop(&mut self) {
        let mark = self.scopes.pop().expect("pop without a matching push");
        self.cnf.release_to(mark);
        // Popping below the scope that saw a non-finite assertion retracts
        // the poisoning along with the assertion.
        if self.poison_depth.is_some_and(|d| self.scopes.len() < d) {
            self.poison_depth = None;
        }
    }

    /// Number of currently open assertion scopes.
    pub fn scope_depth(&self) -> usize {
        self.scopes.len()
    }

    /// Decides satisfiability of the conjunction of all assertions.
    ///
    /// # Errors
    ///
    /// Returns [`SmtError::Interrupted`] when the installed [`Budget`] (or
    /// the [`SolverConfig::max_conflicts`] conflict cap) is exhausted or the
    /// [`CancelToken`] is cancelled before the query is decided, and
    /// [`SmtError::NonFiniteAssertion`] when a non-finite assertion was
    /// rejected and its scope is still open. Neither error corrupts the
    /// assertion store: a later `check` (with a larger budget, or after the
    /// poisoned scope is popped) behaves as if the failed one never ran.
    pub fn check(&mut self) -> Result<CheckResult, SmtError> {
        let result = self.check_inner();
        self.checks_completed += 1;
        result
    }

    /// Builds the per-check governor from the installed budget, cancel token
    /// and (under fault injection) the armed injector.
    fn make_governor(&self) -> Arc<Governor> {
        // The config-level conflict cap and the budget's compose: the
        // smaller one trips first.
        let mut budget = self.budget;
        let cap = budget.max_conflicts.map_or(self.config.max_conflicts, |b| {
            b.min(self.config.max_conflicts)
        });
        budget.max_conflicts = Some(cap);
        #[allow(unused_mut)]
        let mut governor = Governor::new(budget, self.cancel.clone());
        #[cfg(feature = "fault-injection")]
        {
            governor.faults = self.faults.clone();
        }
        Arc::new(governor)
    }

    /// The latched interrupt reason of the current check, if any.
    fn tripped(&self) -> Option<InterruptReason> {
        self.governor.as_ref().and_then(|g| g.tripped())
    }

    /// The [`SmtError::Interrupted`] value for the current (tripped) check.
    fn interrupted_error(&self) -> SmtError {
        SmtError::Interrupted {
            reason: self.tripped().unwrap_or(InterruptReason::Cancelled),
            stats: self.stats,
        }
    }

    fn check_inner(&mut self) -> Result<CheckResult, SmtError> {
        self.stats = SolverStats::default();
        if self.poison_depth.is_some() {
            return Err(SmtError::NonFiniteAssertion);
        }
        // A solver that already completed a check serves this one warm: its
        // accumulated base encoding is reused instead of re-encoded.
        if self.checks_completed > 0 {
            self.stats.scopes_reused = 1;
        }
        let governor = self.make_governor();
        self.governor = Some(Arc::clone(&governor));
        let mut sat = SatSolver::new(self.cnf.num_bool_vars());
        sat.enable_scale_out(self.config.restarts, self.config.clause_db_reduction);
        sat.set_governor(Arc::clone(&governor));
        for clause in self.cnf.clauses() {
            sat.add_clause(clause.clone());
        }
        if sat.is_unsat() {
            return Ok(CheckResult::Unsat);
        }
        // A query with no theory atoms at all (pure constants / free Boolean
        // structure) is decided by the SAT core alone (which polls the same
        // governor at its conflict boundaries).
        if self.cnf.num_atoms() == 0 {
            return match sat.solve_governed() {
                Ok(true) => Ok(CheckResult::Sat(Model {
                    values: vec![0.0; self.vars.len()],
                })),
                Ok(false) => Ok(CheckResult::Unsat),
                Err(reason) => {
                    self.stats.decisions = sat.decisions();
                    self.stats.conflicts = sat.conflicts();
                    Err(SmtError::Interrupted {
                        reason,
                        stats: self.stats,
                    })
                }
            };
        }

        let mut theory = self.fresh_theory();
        let mut decisions_since_check: u64 = 0;
        loop {
            // Cooperative checkpoint once per loop iteration — every conflict
            // and restart boundary passes through here.
            if let Some(reason) = governor.check_conflicts(sat.conflicts()) {
                self.record(&sat, &theory);
                return Err(SmtError::Interrupted {
                    reason,
                    stats: self.stats,
                });
            }
            if let Some(conflict) = sat.propagate() {
                self.stats.conflicts += 1;
                if !sat.resolve_conflict(conflict) {
                    self.record(&sat, &theory);
                    return Ok(CheckResult::Unsat);
                }
                // Restarts only drop SAT search state; the theory context
                // re-synchronises from the truncated trail on its next check.
                if sat.should_restart() {
                    sat.restart();
                } else {
                    sat.maybe_reduce_db();
                }
                continue;
            }
            match sat.pick_branch_literal() {
                Some(lit) => {
                    let do_partial = self.config.partial_check_interval > 0
                        && decisions_since_check >= self.config.partial_check_interval;
                    if do_partial {
                        decisions_since_check = 0;
                        let trail_before = sat.trail().len();
                        match self.theory_check(&mut theory, &mut sat, false) {
                            TheoryOutcome::Interrupted => {
                                self.record(&sat, &theory);
                                return Err(self.interrupted_error());
                            }
                            TheoryOutcome::Consistent(_) => {
                                // Theory propagation may have fixed literals
                                // (possibly `lit` itself): return the picked
                                // variable to the heap, run unit propagation
                                // and re-pick before deciding.
                                if sat.trail().len() != trail_before {
                                    sat.requeue_decision(lit.var());
                                    continue;
                                }
                            }
                            TheoryOutcome::Conflict(clause) => {
                                self.stats.theory_conflicts += 1;
                                self.stats.explanation_literals += clause.len() as u64;
                                sat.requeue_decision(lit.var());
                                if !sat.add_learned_clause(clause) {
                                    self.record(&sat, &theory);
                                    return Ok(CheckResult::Unsat);
                                }
                                if sat.should_restart() {
                                    sat.restart();
                                } else {
                                    sat.maybe_reduce_db();
                                }
                                continue;
                            }
                        }
                    }
                    decisions_since_check += 1;
                    self.stats.decisions += 1;
                    sat.decide(lit);
                }
                None => {
                    // Full propositional assignment: the theory has the last word.
                    match self.theory_check(&mut theory, &mut sat, true) {
                        TheoryOutcome::Interrupted => {
                            self.record(&sat, &theory);
                            return Err(self.interrupted_error());
                        }
                        TheoryOutcome::Consistent(values) => {
                            self.record(&sat, &theory);
                            return Ok(CheckResult::Sat(Model { values }));
                        }
                        TheoryOutcome::Conflict(clause) => {
                            self.stats.theory_conflicts += 1;
                            self.stats.explanation_literals += clause.len() as u64;
                            if !sat.add_learned_clause(clause) {
                                self.record(&sat, &theory);
                                return Ok(CheckResult::Unsat);
                            }
                            if sat.should_restart() {
                                sat.restart();
                            } else {
                                sat.maybe_reduce_db();
                            }
                        }
                    }
                }
            }
        }
    }

    fn record(&mut self, sat: &SatSolver, theory: &TheoryContext) {
        self.stats.decisions = sat.decisions();
        self.stats.conflicts = sat.conflicts();
        self.stats.restarts = sat.restarts();
        self.stats.clauses_deleted = sat.clauses_deleted();
        // Rebuilds fold the retired tableau's counters into the running
        // totals; add the live tableau's counts on top.
        self.stats.pivots += theory.simplex.pivots();
        self.stats.queue_pops += theory.simplex.queue_pops();
    }

    /// Folds a retired tableau's lifetime counters into the stats before the
    /// context is replaced (rebuilds and ablation-mode refreshes).
    fn fold_theory_counters(&mut self, theory: &TheoryContext) {
        self.stats.pivots += theory.simplex.pivots();
        self.stats.queue_pops += theory.simplex.queue_pops();
    }

    /// Builds a fresh theory context with the current check's governor
    /// installed on its simplex (used at check start and on every rebuild).
    fn fresh_theory(&self) -> TheoryContext {
        let mut theory =
            TheoryContext::new(self.vars.len(), &self.cnf, self.config.theory_propagation);
        if let Some(governor) = &self.governor {
            theory.simplex.set_governor(Arc::clone(governor));
        }
        theory
    }

    /// Runs a simplex feasibility check on the theory literals currently
    /// assigned by the SAT core.
    ///
    /// Incremental mode synchronises the persistent simplex with the SAT
    /// trail: bounds of literals no longer on the trail are popped, bounds of
    /// newly assigned atom literals are asserted, and the warm simplex state
    /// is re-solved. From-scratch mode (the ablation baseline) rebuilds the
    /// theory context first, which re-registers every atom row and re-asserts
    /// every bound.
    /// `full` marks the mandatory check at a complete propositional
    /// assignment: only there is a concrete model materialised and validated
    /// (partial checks just prune the search, so their model would be
    /// discarded and a numerically stale "consistent" merely fails to prune).
    fn theory_check(
        &mut self,
        theory: &mut TheoryContext,
        sat: &mut SatSolver,
        full: bool,
    ) -> TheoryOutcome {
        self.stats.theory_checks += 1;
        let started = Instant::now();
        // A fresh tableau has no accumulated pivot error; rebuild when asked
        // (ablation mode) and periodically as numerical hygiene — float error
        // compounds through pivot arithmetic and the sparse engine has no
        // refactorisation step.
        if !self.config.incremental_theory || theory.simplex.pivots() > PIVOT_REBUILD_THRESHOLD {
            if self.config.incremental_theory {
                self.stats.theory_rebuilds += 1;
            }
            self.fold_theory_counters(theory);
            *theory = self.fresh_theory();
        }
        let low_water = sat.trail_low_water();
        sat.reset_trail_low_water();
        let mut outcome = self.sync_and_solve(theory, sat, low_water);
        // A governed simplex reports an interruption as a bounded-solve
        // failure; the latched reason distinguishes it from genuine
        // divergence, which the rebuild below would otherwise retry forever.
        if self.tripped().is_some() {
            self.stats.simplex_nanos += started.elapsed().as_nanos() as u64;
            return TheoryOutcome::Interrupted;
        }
        // Fault site: flip a feasible verdict to "diverged", driving the
        // rebuild recovery path (bounded by the plan's fire cap).
        #[cfg(feature = "fault-injection")]
        if matches!(outcome, SolveOutcome::Feasible)
            && self.governor.as_ref().is_some_and(|g| g.fault_divergence())
        {
            outcome = SolveOutcome::Diverged;
        }
        // Theory propagation: on a consistent *partial* assignment, derive
        // implied bounds, fix decided atoms on the SAT trail and surface
        // derived-bound conflicts with generalised explanations. Skipped at
        // full assignments and whenever every atom is already assigned
        // (conjunction-heavy queries fix all atoms at level zero, leaving
        // only auxiliary Tseitin variables to decide — derived bounds can
        // then fix nothing and the simplex solve already owns conflict
        // detection), and on the rebuild path below (plain solving is
        // complete without it, which also guarantees a rebuild can never
        // re-derive a bogus conflict).
        if !full
            && self.config.theory_propagation
            && matches!(outcome, SolveOutcome::Feasible)
            && self.propagation_worthwhile(sat)
        {
            outcome = self.theory_propagate(theory, sat);
        }
        // Verdicts from a long-lived tableau are not trusted blindly: a
        // feasible verdict at a full assignment must actually satisfy every
        // asserted atom at the concrete model, and a conflict's explanation
        // must itself be an infeasible subset (checked on a fresh
        // mini-tableau over just those atoms — explanations are small, so
        // this is cheap). Divergence and both validation failures signal
        // tableau degradation; all are repaired by one rebuild + fresh solve,
        // whose verdict is then trusted.
        let mut model: Option<Vec<f64>> = None;
        let needs_rebuild = match &outcome {
            SolveOutcome::Feasible if full => {
                #[allow(unused_mut)]
                let mut values = self.padded_model(theory);
                // Fault site: corrupt model values *before* validation — the
                // NaN/inf must be caught here and repaired by the rebuild
                // below, never escape to the caller.
                #[cfg(feature = "fault-injection")]
                if let Some(governor) = &self.governor {
                    for value in &mut values {
                        *value = governor.fault_perturb(*value);
                    }
                }
                let ok = self.model_consistent(sat, &values);
                if ok {
                    model = Some(values);
                }
                !ok
            }
            SolveOutcome::Feasible => false,
            SolveOutcome::Diverged => true,
            SolveOutcome::Conflict(explanation) => self.explanation_feasible(explanation),
        };
        if needs_rebuild {
            if self.config.incremental_theory {
                self.stats.theory_rebuilds += 1;
            }
            self.fold_theory_counters(theory);
            *theory = self.fresh_theory();
            outcome = self.sync_and_solve(theory, sat, 0);
            if self.tripped().is_some() {
                self.stats.simplex_nanos += started.elapsed().as_nanos() as u64;
                return TheoryOutcome::Interrupted;
            }
            if matches!(outcome, SolveOutcome::Diverged) {
                // Freshly rebuilt and still stuck: let the Bland-guarded
                // unbounded solve finish the job. It only fails to complete
                // when the governor trips mid-solve.
                outcome = match theory.simplex.solve_interruptible() {
                    None => {
                        debug_assert!(self.tripped().is_some(), "ungoverned unbounded solve");
                        self.stats.simplex_nanos += started.elapsed().as_nanos() as u64;
                        return TheoryOutcome::Interrupted;
                    }
                    Some(Ok(())) => SolveOutcome::Feasible,
                    Some(Err(explanation)) => SolveOutcome::Conflict(explanation),
                };
            }
            if full && matches!(outcome, SolveOutcome::Feasible) {
                model = Some(self.padded_model(theory));
            }
        }
        self.stats.simplex_nanos += started.elapsed().as_nanos() as u64;
        match outcome {
            SolveOutcome::Feasible => TheoryOutcome::Consistent(model.unwrap_or_default()),
            SolveOutcome::Conflict(explanation) => {
                TheoryOutcome::Conflict(Self::conflict_clause(explanation))
            }
            SolveOutcome::Diverged => unreachable!("divergence handled by rebuild"),
        }
    }

    /// Returns `true` when a conflict explanation (bound tags encoded as
    /// [`Lit::index`]) is *not* actually an infeasible constraint subset —
    /// the signature of a numerically degraded tableau fabricating a
    /// certificate.
    fn explanation_feasible(&self, explanation: &[usize]) -> bool {
        let constraints: Vec<(Constraint, usize)> = explanation
            .iter()
            .enumerate()
            .map(|(i, &tag)| {
                let lit = Lit::from_index(tag);
                let atom_idx = self
                    .cnf
                    .atom_of_var(lit.var())
                    .expect("explanation tags are theory literals");
                let atom = &self.cnf.atoms()[atom_idx];
                let constraint = if lit.is_positive() {
                    atom.clone()
                } else {
                    let mut negated = atom.negate();
                    debug_assert_eq!(negated.len(), 1, "equality atoms are split");
                    negated.pop().expect("non-empty negation")
                };
                (constraint, i)
            })
            .collect();
        Simplex::check(self.vars.len(), &constraints).is_feasible()
    }

    /// Checks the concrete theory model against every atom literal on the
    /// SAT trail (using the original constraint expressions, not the tableau).
    /// Non-finite values fail outright: a NaN/inf slot — pivot blow-up, or an
    /// injected fault — must never reach a returned [`Model`], even on a
    /// variable no asserted atom constrains.
    fn model_consistent(&self, sat: &SatSolver, values: &[f64]) -> bool {
        if values.iter().any(|v| !v.is_finite()) {
            return false;
        }
        sat.trail().iter().all(|lit| {
            let Some(atom_idx) = self.cnf.atom_of_var(lit.var()) else {
                return true;
            };
            let atom = &self.cnf.atoms()[atom_idx];
            if lit.is_positive() {
                atom.holds(values)
            } else {
                atom.negate().iter().any(|c| c.holds(values))
            }
        })
    }

    fn padded_model(&self, theory: &TheoryContext) -> Vec<f64> {
        let mut values = theory.simplex.concrete_assignment();
        values.resize(self.vars.len(), 0.0);
        values
    }

    fn sync_and_solve(
        &self,
        theory: &mut TheoryContext,
        sat: &SatSolver,
        low_water: usize,
    ) -> SolveOutcome {
        let trail = sat.trail();
        // Pop bounds of every literal whose trail slot was truncated since
        // the previous sync (even if the slot has regrown — possibly with the
        // same literal — it belongs to a new branch and is re-asserted below).
        while let Some(top) = theory.stack.last() {
            if (top.trail_pos as usize) < low_water {
                break;
            }
            theory.simplex.pop_to(top.mark);
            theory.stack.pop();
        }
        debug_assert!(
            theory
                .stack
                .iter()
                .all(|entry| trail.get(entry.trail_pos as usize) == Some(&entry.lit)),
            "theory stack out of sync with the SAT trail"
        );
        // Push bounds for atom literals assigned since the last sync.
        let start = theory
            .stack
            .last()
            .map_or(0, |top| top.trail_pos as usize + 1);
        for (pos, &lit) in trail.iter().enumerate().skip(start) {
            let Some(atom_idx) = self.cnf.atom_of_var(lit.var()) else {
                continue;
            };
            let atom = &self.cnf.atoms()[atom_idx];
            debug_assert_ne!(
                atom.op(),
                RelOp::Eq,
                "equality atoms are split during CNF conversion"
            );
            let (op, bound) = if lit.is_positive() {
                (atom.op(), atom.bound())
            } else {
                (atom.op().negated(), atom.bound())
            };
            let (var, scale) = theory.atom_slot[atom_idx];
            let mark = theory.simplex.mark();
            match theory
                .simplex
                .assert_bound(var, scale, op, bound, lit.index())
            {
                Ok(()) => theory.stack.push(SyncedLit {
                    trail_pos: pos as u32,
                    lit,
                    mark,
                }),
                Err(explanation) => {
                    theory.simplex.pop_to(mark);
                    return SolveOutcome::Conflict(explanation);
                }
            }
        }
        match theory.simplex.solve_bounded(self.solve_budget()) {
            None => SolveOutcome::Diverged,
            Some(Ok(())) => SolveOutcome::Feasible,
            Some(Err(explanation)) => SolveOutcome::Conflict(explanation),
        }
    }

    /// Pivot budget for one warm re-solve. Healthy incremental re-solves take
    /// a handful of pivots; blowing this budget signals tableau degradation.
    fn solve_budget(&self) -> u64 {
        200 + 4 * self.cnf.num_atoms() as u64
    }

    /// `true` when at least [`PROP_MIN_UNASSIGNED_ATOMS`] theory atoms are
    /// still unassigned — the only situation where bound propagation can pay
    /// for itself (early-exits once the threshold is reached, so the scan is
    /// cheap exactly when propagation will run anyway).
    fn propagation_worthwhile(&self, sat: &SatSolver) -> bool {
        let mut unassigned = 0usize;
        for i in 0..self.cnf.num_atoms() {
            if sat.var_value(self.cnf.atom_bool_var(i)).is_none() {
                unassigned += 1;
                if unassigned >= PROP_MIN_UNASSIGNED_ATOMS {
                    return true;
                }
            }
        }
        false
    }

    /// Runs theory-level bound propagation and pushes its consequences to the
    /// SAT core (see [`SolverConfig::theory_propagation`]).
    fn theory_propagate(
        &mut self,
        theory: &mut TheoryContext,
        sat: &mut SatSolver,
    ) -> SolveOutcome {
        let mut implied: Vec<ImpliedBound> = Vec::new();
        let limit = 8 * self.cnf.num_atoms() + 64;
        if let Err(explanation) = theory.simplex.propagate_bounds(limit, &mut implied) {
            return SolveOutcome::Conflict(explanation);
        }
        self.stats.implied_bounds += implied.len() as u64;
        let mut antecedents: Vec<Lit> = Vec::new();
        for bound in &implied {
            // A bound derived from the empty antecedent set is a structural
            // fact (constant row); there is no clause to attach for it.
            if bound.explanation.is_empty() {
                continue;
            }
            let Some(atom_ids) = theory.var_atoms.get(&bound.var) else {
                continue;
            };
            for &atom_idx in atom_ids {
                let atom_idx = atom_idx as usize;
                let bool_var = self.cnf.atom_bool_var(atom_idx);
                if sat.var_value(bool_var).is_some() {
                    continue;
                }
                let atom = &self.cnf.atoms()[atom_idx];
                let (_, scale) = theory.atom_slot[atom_idx];
                let Some(positive) = implied_polarity(atom.op(), atom.bound(), scale, bound) else {
                    continue;
                };
                let lit = Lit::new(bool_var, positive);
                antecedents.clear();
                antecedents.extend(bound.explanation.iter().map(|&tag| Lit::from_index(tag)));
                // The implication clause about to be attached is *permanent* —
                // unlike every other verdict of the drift-prone tableau it
                // could never be repaired by a rebuild — so it gets the same
                // distrust: re-verify on a fresh mini-tableau (antecedents
                // plus the negated conclusion must be infeasible) before
                // attaching. Propagated literals are few (tens to hundreds
                // per query) so this stays off the hot path; a failed check
                // signals pivot-degraded row data (threshold-constrained VSC
                // queries reach this through propagation's robustness padding)
                // and simply skips the literal, which is always sound.
                let mut refutation: Vec<usize> = bound.explanation.to_vec();
                refutation.push(lit.negated().index());
                if self.explanation_feasible(&refutation) {
                    continue;
                }
                if sat.propagate_theory_literal(lit, &antecedents) {
                    self.stats.propagated_literals += 1;
                } else {
                    // The implied literal is already false on the trail: the
                    // implication clause itself is a theory conflict.
                    let mut tags: Vec<usize> = bound.explanation.to_vec();
                    tags.push(lit.negated().index());
                    return SolveOutcome::Conflict(tags);
                }
            }
        }
        SolveOutcome::Feasible
    }

    /// Maps an infeasibility explanation (bound tags are [`Lit::index`]
    /// encodings of the asserting literals) to the learned clause that blocks
    /// the conflicting combination.
    fn conflict_clause(explanation: Vec<usize>) -> Vec<Lit> {
        explanation
            .into_iter()
            .map(|tag| Lit::from_index(tag).negated())
            .collect()
    }
}

/// Recursive finiteness walk over a formula's atoms (the
/// [`SmtSolver::assert`] boundary check).
fn formula_is_finite(formula: &Formula) -> bool {
    match formula {
        Formula::True | Formula::False | Formula::BoolVar(_) => true,
        Formula::Atom(constraint) => constraint.is_finite(),
        Formula::Not(inner) => formula_is_finite(inner),
        Formula::And(parts) | Formula::Or(parts) => parts.iter().all(formula_is_finite),
    }
}

/// Decides whether a derived bound on an atom's tableau variable fixes the
/// atom's truth value. `scale · var ⋈ bound` is normalised to variable space
/// exactly as in [`Simplex::assert_bound`]; only real-part dominance with a
/// robustness clearance is used — at that distance neither the infinitesimal
/// components of strict bounds nor the propagation padding can flip the
/// verdict, so missed borderline propagations are the only cost.
fn implied_polarity(op: RelOp, bound: f64, scale: f64, derived: &ImpliedBound) -> Option<bool> {
    /// Minimum real-part clearance between a derived bound and an atom's
    /// bound before the atom is considered decided.
    const CLEAR: f64 = 1e-9;
    if op == RelOp::Eq {
        return None; // equality atoms are split during CNF conversion
    }
    let value = bound / scale;
    let flip = scale < 0.0;
    // Positive-polarity view of the atom in variable space: an upper-type
    // atom constrains `var ⋖ value`, a lower-type one `var ⋗ value`.
    let atom_is_upper = matches!(
        (op, flip),
        (RelOp::Le, false) | (RelOp::Ge, true) | (RelOp::Lt, false) | (RelOp::Gt, true)
    );
    let real = derived.value.real;
    match (atom_is_upper, derived.is_upper) {
        // var ≤ U, U < value  ⇒  `var ⋖ value` holds (strict or not).
        (true, true) if real < value - CLEAR => Some(true),
        // var ≥ L, L > value  ⇒  `var ⋖ value` is violated.
        (true, false) if real > value + CLEAR => Some(false),
        // var ≥ L, L > value  ⇒  `var ⋗ value` holds.
        (false, false) if real > value + CLEAR => Some(true),
        // var ≤ U, U < value  ⇒  `var ⋗ value` is violated.
        (false, true) if real < value - CLEAR => Some(false),
        _ => None,
    }
}

enum TheoryOutcome {
    /// Theory-consistent. The model is only materialised for checks at a
    /// full propositional assignment; partial checks carry an empty vector.
    Consistent(Vec<f64>),
    Conflict(Vec<Lit>),
    /// The run governor tripped (deadline, cancellation or pivot budget)
    /// during the theory check; the caller unwinds with
    /// [`SmtError::Interrupted`].
    Interrupted,
}

/// Raw verdict of one synchronise-and-solve pass, before conflict clauses
/// are built and verdicts validated.
enum SolveOutcome {
    Feasible,
    /// Infeasible with a bound-tag explanation ([`Lit::index`] encodings).
    Conflict(Vec<usize>),
    /// The pivot budget was exhausted or only numerically degenerate pivots
    /// remained: the tableau needs a rebuild.
    Diverged,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LinExpr;

    fn pool2() -> (VarPool, VarId, VarId) {
        let mut pool = VarPool::new();
        let x = pool.fresh("x");
        let y = pool.fresh("y");
        (pool, x, y)
    }

    #[test]
    fn pure_conjunction_sat_with_model() {
        let (pool, x, y) = pool2();
        let mut solver = SmtSolver::new(pool);
        solver.assert(Formula::atom((LinExpr::var(x) + LinExpr::var(y)).le(2.0)));
        solver.assert(Formula::atom(LinExpr::var(x).ge(1.0)));
        solver.assert(Formula::atom(LinExpr::var(y).ge(0.5)));
        let model = solver.check().unwrap().expect_sat();
        assert!(model.value(x) >= 1.0 - 1e-9);
        assert!(model.value(y) >= 0.5 - 1e-9);
        assert!(model.value(x) + model.value(y) <= 2.0 + 1e-9);
    }

    #[test]
    fn pure_conjunction_unsat() {
        let (pool, x, y) = pool2();
        let mut solver = SmtSolver::new(pool);
        solver.assert(Formula::atom((LinExpr::var(x) + LinExpr::var(y)).le(1.0)));
        solver.assert(Formula::atom(LinExpr::var(x).ge(1.0)));
        solver.assert(Formula::atom(LinExpr::var(y).ge(0.5)));
        assert_eq!(solver.check().unwrap(), CheckResult::Unsat);
    }

    #[test]
    fn disjunction_requires_theory_reasoning() {
        let (pool, x, y) = pool2();
        let mut solver = SmtSolver::new(pool);
        // x >= 5 ∧ (x <= 1 ∨ y >= 3): the first disjunct is theory-infeasible,
        // so the solver must pick the second.
        solver.assert(Formula::atom(LinExpr::var(x).ge(5.0)));
        solver.assert(Formula::or(vec![
            Formula::atom(LinExpr::var(x).le(1.0)),
            Formula::atom(LinExpr::var(y).ge(3.0)),
        ]));
        let model = solver.check().unwrap().expect_sat();
        assert!(model.value(x) >= 5.0 - 1e-9);
        assert!(model.value(y) >= 3.0 - 1e-9);
    }

    #[test]
    fn negated_atoms_are_handled() {
        let (pool, x, _) = pool2();
        let mut solver = SmtSolver::new(pool);
        // ¬(x <= 1) ∧ x <= 3  ⇒  1 < x <= 3.
        solver.assert(Formula::not(Formula::atom(LinExpr::var(x).le(1.0))));
        solver.assert(Formula::atom(LinExpr::var(x).le(3.0)));
        let model = solver.check().unwrap().expect_sat();
        assert!(model.value(x) > 1.0);
        assert!(model.value(x) <= 3.0 + 1e-9);
    }

    #[test]
    fn strict_inequality_conflict_is_unsat() {
        let (pool, x, _) = pool2();
        let mut solver = SmtSolver::new(pool);
        solver.assert(Formula::atom(LinExpr::var(x).lt(1.0)));
        solver.assert(Formula::atom(LinExpr::var(x).gt(1.0)));
        assert_eq!(solver.check().unwrap(), CheckResult::Unsat);
    }

    #[test]
    fn equality_atoms_work_in_both_polarities() {
        let (pool, x, y) = pool2();
        let mut solver = SmtSolver::new(pool);
        solver.assert(Formula::atom(
            (LinExpr::var(x) + LinExpr::var(y)).eq_to(4.0),
        ));
        solver.assert(Formula::atom(
            (LinExpr::var(x) - LinExpr::var(y)).eq_to(2.0),
        ));
        let model = solver.check().unwrap().expect_sat();
        assert!((model.value(x) - 3.0).abs() < 1e-6);
        assert!((model.value(y) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn negated_equality_is_a_disjunction() {
        let (pool, x, _) = pool2();
        let mut solver = SmtSolver::new(pool);
        solver.assert(Formula::not(Formula::atom(LinExpr::var(x).eq_to(0.0))));
        solver.assert(Formula::atom(LinExpr::var(x).ge(-1.0)));
        solver.assert(Formula::atom(LinExpr::var(x).le(1.0)));
        let model = solver.check().unwrap().expect_sat();
        assert!(model.value(x).abs() > 1e-9, "x must differ from zero");
    }

    #[test]
    fn unsatisfiable_boolean_structure() {
        let (pool, x, _) = pool2();
        let a = Formula::atom(LinExpr::var(x).ge(0.0));
        let mut solver = SmtSolver::new(pool);
        solver.assert(Formula::and(vec![a.clone(), Formula::not(a)]));
        assert_eq!(solver.check().unwrap(), CheckResult::Unsat);
    }

    #[test]
    fn constants_only_query() {
        let pool = VarPool::new();
        let mut solver = SmtSolver::new(pool);
        solver.assert(Formula::True);
        assert!(solver.check().unwrap().is_sat());

        let pool = VarPool::new();
        let mut solver = SmtSolver::new(pool);
        solver.assert(Formula::False);
        assert_eq!(solver.check().unwrap(), CheckResult::Unsat);
    }

    #[test]
    fn implication_chain_over_reals() {
        // (x >= 1 → y >= 2) ∧ (y >= 2 → x + y >= 3.5) ∧ x >= 1, with y <= 10.
        let (pool, x, y) = pool2();
        let mut solver = SmtSolver::new(pool);
        solver.assert(Formula::implies(
            Formula::atom(LinExpr::var(x).ge(1.0)),
            Formula::atom(LinExpr::var(y).ge(2.0)),
        ));
        solver.assert(Formula::implies(
            Formula::atom(LinExpr::var(y).ge(2.0)),
            Formula::atom((LinExpr::var(x) + LinExpr::var(y)).ge(3.5)),
        ));
        solver.assert(Formula::atom(LinExpr::var(x).ge(1.0)));
        solver.assert(Formula::atom(LinExpr::var(y).le(10.0)));
        let model = solver.check().unwrap().expect_sat();
        assert!(model.value(y) >= 2.0 - 1e-9);
        assert!(model.value(x) + model.value(y) >= 3.5 - 1e-9);
    }

    #[test]
    fn stats_are_populated() {
        let (pool, x, y) = pool2();
        let mut solver = SmtSolver::new(pool);
        solver.assert(Formula::or(vec![
            Formula::atom(LinExpr::var(x).ge(1.0)),
            Formula::atom(LinExpr::var(y).ge(1.0)),
        ]));
        solver.check().unwrap();
        assert!(solver.stats().theory_checks >= 1);
    }

    #[test]
    fn incremental_and_from_scratch_backends_agree() {
        for incremental in [false, true] {
            let (pool, x, y) = pool2();
            let mut solver = SmtSolver::with_config(
                pool,
                SolverConfig {
                    incremental_theory: incremental,
                    ..SolverConfig::default()
                },
            );
            solver.assert(Formula::or(vec![
                Formula::atom(LinExpr::var(x).ge(4.0)),
                Formula::atom(LinExpr::var(y).ge(4.0)),
            ]));
            solver.assert(Formula::atom((LinExpr::var(x) + LinExpr::var(y)).le(5.0)));
            solver.assert(Formula::atom(LinExpr::var(x).ge(0.0)));
            solver.assert(Formula::atom(LinExpr::var(y).ge(0.0)));
            let model = solver.check().unwrap().expect_sat();
            assert!(
                model.value(x) >= 4.0 - 1e-9 || model.value(y) >= 4.0 - 1e-9,
                "backend incremental={incremental} produced a bad model"
            );
            assert!(model.value(x) + model.value(y) <= 5.0 + 1e-9);
        }
    }

    #[test]
    fn budget_exhaustion_is_reported() {
        let (pool, x, y) = pool2();
        let mut solver = SmtSolver::with_config(
            pool,
            SolverConfig {
                max_conflicts: 0,
                partial_check_interval: 0,
                ..SolverConfig::default()
            },
        );
        // Force at least one conflict so the zero budget trips.
        let a = Formula::atom(LinExpr::var(x).ge(1.0));
        let b = Formula::atom(LinExpr::var(y).ge(1.0));
        solver.assert(Formula::or(vec![a.clone(), b.clone()]));
        solver.assert(Formula::or(vec![Formula::not(a), Formula::not(b)]));
        // With a zero conflict budget the check either finishes without any
        // conflict or reports exhaustion; both are acceptable, but it must not
        // loop forever.
        let _ = solver.check();
    }

    #[test]
    fn push_pop_restores_assertions() {
        let (pool, x, _) = pool2();
        let mut solver = SmtSolver::new(pool);
        solver.assert(Formula::atom(LinExpr::var(x).ge(1.0)));
        assert!(solver.check().unwrap().is_sat());
        solver.push();
        solver.assert(Formula::atom(LinExpr::var(x).le(0.0)));
        assert_eq!(solver.check().unwrap(), CheckResult::Unsat);
        solver.pop();
        let model = solver.check().unwrap().expect_sat();
        assert!(model.value(x) >= 1.0 - 1e-9);
    }

    #[test]
    fn nested_scopes_pop_in_lifo_order() {
        let (pool, x, y) = pool2();
        let mut solver = SmtSolver::new(pool);
        solver.assert(Formula::atom(LinExpr::var(x).ge(0.0)));
        solver.push();
        solver.assert(Formula::atom(LinExpr::var(y).ge(5.0)));
        solver.push();
        solver.assert(Formula::atom(LinExpr::var(y).le(4.0)));
        assert_eq!(solver.scope_depth(), 2);
        assert_eq!(solver.check().unwrap(), CheckResult::Unsat);
        solver.pop();
        let model = solver.check().unwrap().expect_sat();
        assert!(model.value(y) >= 5.0 - 1e-9);
        solver.pop();
        assert_eq!(solver.scope_depth(), 0);
        assert!(solver.check().unwrap().is_sat());
    }

    #[test]
    fn warm_checks_report_scope_reuse() {
        let (pool, x, _) = pool2();
        let mut solver = SmtSolver::new(pool);
        solver.assert(Formula::atom(LinExpr::var(x).ge(1.0)));
        solver.check().unwrap();
        assert_eq!(solver.stats().scopes_reused, 0, "first check is cold");
        solver.push();
        solver.assert(Formula::atom(LinExpr::var(x).le(3.0)));
        solver.check().unwrap();
        assert_eq!(solver.stats().scopes_reused, 1, "second check is warm");
        solver.pop();
    }

    #[test]
    fn model_values_default_to_zero_for_unconstrained_vars() {
        let mut pool = VarPool::new();
        let x = pool.fresh("x");
        let unused = pool.fresh("unused");
        let mut solver = SmtSolver::new(pool);
        solver.assert(Formula::atom(LinExpr::var(x).ge(1.0)));
        let model = solver.check().unwrap().expect_sat();
        assert!(model.value(x) >= 1.0 - 1e-9);
        assert_eq!(model.value(unused), 0.0);
        assert_eq!(model.values().len(), 2);
    }
}
