use std::error::Error;
use std::fmt;

use crate::sat::{Lit, SatSolver};
use crate::simplex::{Simplex, SimplexResult};
use crate::tseitin::CnfBuilder;
use crate::{Constraint, Formula, VarId, VarPool};

/// Configuration of the DPLL(T) search loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolverConfig {
    /// Maximum number of propositional + theory conflicts before the solver
    /// gives up with [`SmtError::BudgetExhausted`]. This mirrors the per-query
    /// timeout the paper applies to each Z3 call.
    pub max_conflicts: u64,
    /// If non-zero, a theory consistency check also runs on the partial
    /// assignment every `partial_check_interval` decisions (in addition to the
    /// mandatory check at full assignments). Early checks prune the search at
    /// the cost of more simplex runs.
    pub partial_check_interval: u64,
}

impl Default for SolverConfig {
    fn default() -> Self {
        Self {
            max_conflicts: 2_000_000,
            partial_check_interval: 32,
        }
    }
}

/// Statistics gathered during a [`SmtSolver::check`] call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Propositional decisions made.
    pub decisions: u64,
    /// Propositional conflicts resolved.
    pub conflicts: u64,
    /// Theory (simplex) feasibility checks performed.
    pub theory_checks: u64,
    /// Theory conflicts that produced learned clauses.
    pub theory_conflicts: u64,
}

/// Errors returned by [`SmtSolver::check`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum SmtError {
    /// The conflict budget configured in [`SolverConfig`] was exhausted before
    /// the query was decided.
    BudgetExhausted,
}

impl fmt::Display for SmtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SmtError::BudgetExhausted => write!(f, "solver conflict budget exhausted"),
        }
    }
}

impl Error for SmtError {}

/// A satisfying assignment for the real-valued variables of a query.
#[derive(Debug, Clone, PartialEq)]
pub struct Model {
    values: Vec<f64>,
}

impl Model {
    /// Value assigned to `var` (variables never mentioned in the assertions
    /// default to zero).
    pub fn value(&self, var: VarId) -> f64 {
        self.values.get(var.index()).copied().unwrap_or(0.0)
    }

    /// Dense slice of all variable values, indexed by [`VarId::index`].
    pub fn values(&self) -> &[f64] {
        &self.values
    }
}

/// Result of a satisfiability check.
#[derive(Debug, Clone, PartialEq)]
pub enum CheckResult {
    /// The assertions are satisfiable; a model is provided.
    Sat(Model),
    /// The assertions are unsatisfiable.
    Unsat,
}

impl CheckResult {
    /// Returns `true` for [`CheckResult::Sat`].
    pub fn is_sat(&self) -> bool {
        matches!(self, CheckResult::Sat(_))
    }

    /// Extracts the model.
    ///
    /// # Panics
    ///
    /// Panics if the result is [`CheckResult::Unsat`].
    pub fn expect_sat(self) -> Model {
        match self {
            CheckResult::Sat(model) => model,
            CheckResult::Unsat => panic!("expected a satisfiable result"),
        }
    }

    /// Returns the model if satisfiable.
    pub fn model(self) -> Option<Model> {
        match self {
            CheckResult::Sat(model) => Some(model),
            CheckResult::Unsat => None,
        }
    }
}

/// Lazy DPLL(T) solver for quantifier-free linear real arithmetic.
///
/// Assertions are accumulated with [`SmtSolver::assert`] and the conjunction
/// of all assertions is decided by [`SmtSolver::check`]. The solver is a
/// drop-in substitute for the Z3 queries issued by Algorithm 1 of the paper.
///
/// See the [crate-level documentation](crate) for a complete example.
#[derive(Debug)]
pub struct SmtSolver {
    vars: VarPool,
    cnf: CnfBuilder,
    config: SolverConfig,
    stats: SolverStats,
}

impl SmtSolver {
    /// Creates a solver over the variables allocated in `vars`.
    pub fn new(vars: VarPool) -> Self {
        Self::with_config(vars, SolverConfig::default())
    }

    /// Creates a solver with an explicit search configuration.
    pub fn with_config(vars: VarPool, config: SolverConfig) -> Self {
        Self {
            vars,
            cnf: CnfBuilder::new(),
            config,
            stats: SolverStats::default(),
        }
    }

    /// The variable pool the solver was created with.
    pub fn vars(&self) -> &VarPool {
        &self.vars
    }

    /// Statistics of the most recent [`SmtSolver::check`] call.
    pub fn stats(&self) -> SolverStats {
        self.stats
    }

    /// Adds an assertion to the conjunction to be checked.
    pub fn assert(&mut self, formula: Formula) {
        self.cnf.assert_formula(&formula);
    }

    /// Decides satisfiability of the conjunction of all assertions.
    ///
    /// # Errors
    ///
    /// Returns [`SmtError::BudgetExhausted`] when the configured conflict
    /// budget is spent before the query is decided.
    pub fn check(&mut self) -> Result<CheckResult, SmtError> {
        self.stats = SolverStats::default();
        let mut sat = SatSolver::new(self.cnf.num_bool_vars());
        for clause in self.cnf.clauses() {
            sat.add_clause(clause.clone());
        }
        if sat.is_unsat() {
            return Ok(CheckResult::Unsat);
        }
        // A query with no theory atoms at all (pure constants) is decided by
        // the SAT core alone.
        if self.cnf.num_atoms() == 0 {
            return Ok(if sat.solve() {
                CheckResult::Sat(Model {
                    values: vec![0.0; self.vars.len()],
                })
            } else {
                CheckResult::Unsat
            });
        }

        let mut decisions_since_check: u64 = 0;
        loop {
            if sat.conflicts() >= self.config.max_conflicts {
                return Err(SmtError::BudgetExhausted);
            }
            if let Some(conflict) = sat.propagate() {
                self.stats.conflicts += 1;
                if !sat.resolve_conflict(conflict) {
                    self.record(&sat);
                    return Ok(CheckResult::Unsat);
                }
                continue;
            }
            match sat.pick_branch_literal() {
                Some(lit) => {
                    let do_partial = self.config.partial_check_interval > 0
                        && decisions_since_check >= self.config.partial_check_interval;
                    if do_partial {
                        decisions_since_check = 0;
                        match self.theory_check(&sat) {
                            TheoryOutcome::Consistent(_) => {}
                            TheoryOutcome::Conflict(clause) => {
                                self.stats.theory_conflicts += 1;
                                if !sat.add_learned_clause(clause) {
                                    self.record(&sat);
                                    return Ok(CheckResult::Unsat);
                                }
                                continue;
                            }
                        }
                    }
                    decisions_since_check += 1;
                    self.stats.decisions += 1;
                    sat.decide(lit);
                }
                None => {
                    // Full propositional assignment: the theory has the last word.
                    match self.theory_check(&sat) {
                        TheoryOutcome::Consistent(values) => {
                            self.record(&sat);
                            return Ok(CheckResult::Sat(Model { values }));
                        }
                        TheoryOutcome::Conflict(clause) => {
                            self.stats.theory_conflicts += 1;
                            if !sat.add_learned_clause(clause) {
                                self.record(&sat);
                                return Ok(CheckResult::Unsat);
                            }
                        }
                    }
                }
            }
        }
    }

    fn record(&mut self, sat: &SatSolver) {
        self.stats.decisions = sat.decisions();
        self.stats.conflicts = sat.conflicts();
    }

    /// Runs a simplex feasibility check on the theory literals currently
    /// assigned by the SAT core.
    fn theory_check(&mut self, sat: &SatSolver) -> TheoryOutcome {
        self.stats.theory_checks += 1;
        let mut asserted: Vec<(Constraint, usize)> = Vec::new();
        let mut asserted_lits: Vec<Lit> = Vec::new();
        for atom_idx in 0..self.cnf.num_atoms() {
            let bool_var = self.cnf.atom_bool_var(atom_idx);
            let Some(value) = sat.var_value(bool_var) else {
                continue;
            };
            let atom = &self.cnf.atoms()[atom_idx];
            let constraint = if value {
                atom.clone()
            } else {
                let mut negated = atom.negate();
                debug_assert_eq!(
                    negated.len(),
                    1,
                    "equality atoms are split during CNF conversion"
                );
                negated.pop().expect("non-empty negation")
            };
            let tag = asserted.len();
            asserted.push((constraint, tag));
            asserted_lits.push(Lit::new(bool_var, value));
        }
        match Simplex::check(self.vars.len(), &asserted) {
            SimplexResult::Feasible(values) => {
                let mut padded = values;
                padded.resize(self.vars.len(), 0.0);
                TheoryOutcome::Consistent(padded)
            }
            SimplexResult::Infeasible(explanation) => {
                let clause: Vec<Lit> = explanation
                    .into_iter()
                    .map(|tag| asserted_lits[tag].negated())
                    .collect();
                TheoryOutcome::Conflict(clause)
            }
        }
    }
}

enum TheoryOutcome {
    Consistent(Vec<f64>),
    Conflict(Vec<Lit>),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LinExpr;

    fn pool2() -> (VarPool, VarId, VarId) {
        let mut pool = VarPool::new();
        let x = pool.fresh("x");
        let y = pool.fresh("y");
        (pool, x, y)
    }

    #[test]
    fn pure_conjunction_sat_with_model() {
        let (pool, x, y) = pool2();
        let mut solver = SmtSolver::new(pool);
        solver.assert(Formula::atom((LinExpr::var(x) + LinExpr::var(y)).le(2.0)));
        solver.assert(Formula::atom(LinExpr::var(x).ge(1.0)));
        solver.assert(Formula::atom(LinExpr::var(y).ge(0.5)));
        let model = solver.check().unwrap().expect_sat();
        assert!(model.value(x) >= 1.0 - 1e-9);
        assert!(model.value(y) >= 0.5 - 1e-9);
        assert!(model.value(x) + model.value(y) <= 2.0 + 1e-9);
    }

    #[test]
    fn pure_conjunction_unsat() {
        let (pool, x, y) = pool2();
        let mut solver = SmtSolver::new(pool);
        solver.assert(Formula::atom((LinExpr::var(x) + LinExpr::var(y)).le(1.0)));
        solver.assert(Formula::atom(LinExpr::var(x).ge(1.0)));
        solver.assert(Formula::atom(LinExpr::var(y).ge(0.5)));
        assert_eq!(solver.check().unwrap(), CheckResult::Unsat);
    }

    #[test]
    fn disjunction_requires_theory_reasoning() {
        let (pool, x, y) = pool2();
        let mut solver = SmtSolver::new(pool);
        // x >= 5 ∧ (x <= 1 ∨ y >= 3): the first disjunct is theory-infeasible,
        // so the solver must pick the second.
        solver.assert(Formula::atom(LinExpr::var(x).ge(5.0)));
        solver.assert(Formula::or(vec![
            Formula::atom(LinExpr::var(x).le(1.0)),
            Formula::atom(LinExpr::var(y).ge(3.0)),
        ]));
        let model = solver.check().unwrap().expect_sat();
        assert!(model.value(x) >= 5.0 - 1e-9);
        assert!(model.value(y) >= 3.0 - 1e-9);
    }

    #[test]
    fn negated_atoms_are_handled() {
        let (pool, x, _) = pool2();
        let mut solver = SmtSolver::new(pool);
        // ¬(x <= 1) ∧ x <= 3  ⇒  1 < x <= 3.
        solver.assert(Formula::not(Formula::atom(LinExpr::var(x).le(1.0))));
        solver.assert(Formula::atom(LinExpr::var(x).le(3.0)));
        let model = solver.check().unwrap().expect_sat();
        assert!(model.value(x) > 1.0);
        assert!(model.value(x) <= 3.0 + 1e-9);
    }

    #[test]
    fn strict_inequality_conflict_is_unsat() {
        let (pool, x, _) = pool2();
        let mut solver = SmtSolver::new(pool);
        solver.assert(Formula::atom(LinExpr::var(x).lt(1.0)));
        solver.assert(Formula::atom(LinExpr::var(x).gt(1.0)));
        assert_eq!(solver.check().unwrap(), CheckResult::Unsat);
    }

    #[test]
    fn equality_atoms_work_in_both_polarities() {
        let (pool, x, y) = pool2();
        let mut solver = SmtSolver::new(pool);
        solver.assert(Formula::atom(
            (LinExpr::var(x) + LinExpr::var(y)).eq_to(4.0),
        ));
        solver.assert(Formula::atom(
            (LinExpr::var(x) - LinExpr::var(y)).eq_to(2.0),
        ));
        let model = solver.check().unwrap().expect_sat();
        assert!((model.value(x) - 3.0).abs() < 1e-6);
        assert!((model.value(y) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn negated_equality_is_a_disjunction() {
        let (pool, x, _) = pool2();
        let mut solver = SmtSolver::new(pool);
        solver.assert(Formula::not(Formula::atom(LinExpr::var(x).eq_to(0.0))));
        solver.assert(Formula::atom(LinExpr::var(x).ge(-1.0)));
        solver.assert(Formula::atom(LinExpr::var(x).le(1.0)));
        let model = solver.check().unwrap().expect_sat();
        assert!(model.value(x).abs() > 1e-9, "x must differ from zero");
    }

    #[test]
    fn unsatisfiable_boolean_structure() {
        let (pool, x, _) = pool2();
        let a = Formula::atom(LinExpr::var(x).ge(0.0));
        let mut solver = SmtSolver::new(pool);
        solver.assert(Formula::and(vec![a.clone(), Formula::not(a)]));
        assert_eq!(solver.check().unwrap(), CheckResult::Unsat);
    }

    #[test]
    fn constants_only_query() {
        let pool = VarPool::new();
        let mut solver = SmtSolver::new(pool);
        solver.assert(Formula::True);
        assert!(solver.check().unwrap().is_sat());

        let pool = VarPool::new();
        let mut solver = SmtSolver::new(pool);
        solver.assert(Formula::False);
        assert_eq!(solver.check().unwrap(), CheckResult::Unsat);
    }

    #[test]
    fn implication_chain_over_reals() {
        // (x >= 1 → y >= 2) ∧ (y >= 2 → x + y >= 3.5) ∧ x >= 1, with y <= 10.
        let (pool, x, y) = pool2();
        let mut solver = SmtSolver::new(pool);
        solver.assert(Formula::implies(
            Formula::atom(LinExpr::var(x).ge(1.0)),
            Formula::atom(LinExpr::var(y).ge(2.0)),
        ));
        solver.assert(Formula::implies(
            Formula::atom(LinExpr::var(y).ge(2.0)),
            Formula::atom((LinExpr::var(x) + LinExpr::var(y)).ge(3.5)),
        ));
        solver.assert(Formula::atom(LinExpr::var(x).ge(1.0)));
        solver.assert(Formula::atom(LinExpr::var(y).le(10.0)));
        let model = solver.check().unwrap().expect_sat();
        assert!(model.value(y) >= 2.0 - 1e-9);
        assert!(model.value(x) + model.value(y) >= 3.5 - 1e-9);
    }

    #[test]
    fn stats_are_populated() {
        let (pool, x, y) = pool2();
        let mut solver = SmtSolver::new(pool);
        solver.assert(Formula::or(vec![
            Formula::atom(LinExpr::var(x).ge(1.0)),
            Formula::atom(LinExpr::var(y).ge(1.0)),
        ]));
        solver.check().unwrap();
        assert!(solver.stats().theory_checks >= 1);
    }

    #[test]
    fn budget_exhaustion_is_reported() {
        let (pool, x, y) = pool2();
        let mut solver = SmtSolver::with_config(
            pool,
            SolverConfig {
                max_conflicts: 0,
                partial_check_interval: 0,
            },
        );
        // Force at least one conflict so the zero budget trips.
        let a = Formula::atom(LinExpr::var(x).ge(1.0));
        let b = Formula::atom(LinExpr::var(y).ge(1.0));
        solver.assert(Formula::or(vec![a.clone(), b.clone()]));
        solver.assert(Formula::or(vec![Formula::not(a), Formula::not(b)]));
        // With a zero conflict budget the check either finishes without any
        // conflict or reports exhaustion; both are acceptable, but it must not
        // loop forever.
        let _ = solver.check();
    }

    #[test]
    fn model_values_default_to_zero_for_unconstrained_vars() {
        let mut pool = VarPool::new();
        let x = pool.fresh("x");
        let unused = pool.fresh("unused");
        let mut solver = SmtSolver::new(pool);
        solver.assert(Formula::atom(LinExpr::var(x).ge(1.0)));
        let model = solver.check().unwrap().expect_sat();
        assert!(model.value(x) >= 1.0 - 1e-9);
        assert_eq!(model.value(unused), 0.0);
        assert_eq!(model.values().len(), 2);
    }
}
