use std::fmt;

use crate::Constraint;

/// A Boolean combination of atomic linear constraints.
///
/// `Formula` is the input language of [`SmtSolver`](crate::SmtSolver). It is a
/// plain tree; no sharing or hash-consing is attempted because the formulas
/// produced by unrolling a control loop for a few dozen steps stay small
/// (thousands of nodes).
///
/// # Example
///
/// ```
/// use cps_smt::{Formula, LinExpr, VarPool};
///
/// let mut pool = VarPool::new();
/// let x = pool.fresh("x");
/// let f = Formula::implies(
///     Formula::atom(LinExpr::var(x).ge(0.0)),
///     Formula::atom(LinExpr::var(x).le(10.0)),
/// );
/// assert!(f.holds(&[5.0]));
/// assert!(!f.holds(&[11.0]));
/// assert!(f.holds(&[-1.0])); // antecedent false
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Formula {
    /// The constant `true`.
    True,
    /// The constant `false`.
    False,
    /// An atomic linear constraint.
    Atom(Constraint),
    /// A free propositional variable (allocated from a [`BoolVarPool`]), used
    /// by auxiliary-variable encodings such as the sequential-counter
    /// dead-zone constraint. Purely Boolean: it carries no theory content.
    BoolVar(u32),
    /// Negation.
    Not(Box<Formula>),
    /// Conjunction of zero or more formulas (empty conjunction is `true`).
    And(Vec<Formula>),
    /// Disjunction of zero or more formulas (empty disjunction is `false`).
    Or(Vec<Formula>),
}

/// Allocator of free propositional variables for [`Formula::BoolVar`].
///
/// Use one pool per solver instance so identifiers never collide between
/// independently built sub-encodings.
///
/// # Example
///
/// ```
/// use cps_smt::{BoolVarPool, Formula};
///
/// let mut bools = BoolVarPool::new();
/// let a = bools.fresh();
/// let b = bools.fresh();
/// assert_ne!(a, b);
/// let f = Formula::or(vec![Formula::BoolVar(a), Formula::BoolVar(b)]);
/// assert_eq!(f.atom_count(), 0);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BoolVarPool {
    next: u32,
}

impl BoolVarPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates a fresh propositional variable identifier.
    pub fn fresh(&mut self) -> u32 {
        let id = self.next;
        self.next += 1;
        id
    }

    /// Number of identifiers allocated so far.
    pub fn len(&self) -> usize {
        self.next as usize
    }

    /// Returns `true` when no identifier has been allocated.
    pub fn is_empty(&self) -> bool {
        self.next == 0
    }
}

impl Formula {
    /// Wraps an atomic constraint.
    pub fn atom(constraint: Constraint) -> Self {
        Formula::Atom(constraint)
    }

    /// Builds a conjunction, flattening nested conjunctions and dropping
    /// `true` conjuncts. A conjunct of `false` collapses the whole formula.
    pub fn and(parts: Vec<Formula>) -> Self {
        let mut flat = Vec::with_capacity(parts.len());
        for p in parts {
            match p {
                Formula::True => {}
                Formula::False => return Formula::False,
                Formula::And(inner) => flat.extend(inner),
                other => flat.push(other),
            }
        }
        match flat.len() {
            0 => Formula::True,
            1 => flat.pop().expect("length checked"),
            _ => Formula::And(flat),
        }
    }

    /// Builds a disjunction, flattening nested disjunctions and dropping
    /// `false` disjuncts. A disjunct of `true` collapses the whole formula.
    pub fn or(parts: Vec<Formula>) -> Self {
        let mut flat = Vec::with_capacity(parts.len());
        for p in parts {
            match p {
                Formula::False => {}
                Formula::True => return Formula::True,
                Formula::Or(inner) => flat.extend(inner),
                other => flat.push(other),
            }
        }
        match flat.len() {
            0 => Formula::False,
            1 => flat.pop().expect("length checked"),
            _ => Formula::Or(flat),
        }
    }

    /// Builds a negation, folding constants and double negations.
    pub fn not(formula: Formula) -> Self {
        match formula {
            Formula::True => Formula::False,
            Formula::False => Formula::True,
            Formula::Not(inner) => *inner,
            other => Formula::Not(Box::new(other)),
        }
    }

    /// Builds the implication `antecedent → consequent`.
    pub fn implies(antecedent: Formula, consequent: Formula) -> Self {
        Formula::or(vec![Formula::not(antecedent), consequent])
    }

    /// Builds the biconditional `a ↔ b`.
    pub fn iff(a: Formula, b: Formula) -> Self {
        Formula::and(vec![
            Formula::implies(a.clone(), b.clone()),
            Formula::implies(b, a),
        ])
    }

    /// Number of atomic constraints in the formula (with multiplicity).
    /// [`Formula::BoolVar`]s carry no theory atom and count zero.
    pub fn atom_count(&self) -> usize {
        match self {
            Formula::True | Formula::False | Formula::BoolVar(_) => 0,
            Formula::Atom(_) => 1,
            Formula::Not(inner) => inner.atom_count(),
            Formula::And(parts) | Formula::Or(parts) => parts.iter().map(Formula::atom_count).sum(),
        }
    }

    /// Evaluates the formula under a dense real-valued assignment.
    ///
    /// # Panics
    ///
    /// Panics if the assignment is shorter than the largest variable index
    /// used by any atom, or if the formula contains a [`Formula::BoolVar`]
    /// (free propositional variables have no value under a real assignment —
    /// decide such formulas with [`SmtSolver`](crate::SmtSolver) instead).
    pub fn holds(&self, assignment: &[f64]) -> bool {
        match self {
            Formula::True => true,
            Formula::False => false,
            Formula::Atom(c) => c.holds(assignment),
            Formula::BoolVar(id) => {
                panic!("free propositional variable b{id} has no value under a real assignment")
            }
            Formula::Not(inner) => !inner.holds(assignment),
            Formula::And(parts) => parts.iter().all(|p| p.holds(assignment)),
            Formula::Or(parts) => parts.iter().any(|p| p.holds(assignment)),
        }
    }
}

impl fmt::Display for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Formula::True => write!(f, "true"),
            Formula::False => write!(f, "false"),
            Formula::Atom(c) => write!(f, "({c})"),
            Formula::BoolVar(id) => write!(f, "b{id}"),
            Formula::Not(inner) => write!(f, "¬{inner}"),
            Formula::And(parts) => {
                write!(f, "(")?;
                for (i, p) in parts.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ∧ ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, ")")
            }
            Formula::Or(parts) => {
                write!(f, "(")?;
                for (i, p) in parts.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ∨ ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, ")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LinExpr, VarPool};

    fn xy() -> (VarPool, crate::VarId, crate::VarId) {
        let mut pool = VarPool::new();
        let x = pool.fresh("x");
        let y = pool.fresh("y");
        (pool, x, y)
    }

    #[test]
    fn and_or_flattening_and_constant_folding() {
        let (_, x, _) = xy();
        let a = Formula::atom(LinExpr::var(x).le(1.0));
        assert_eq!(Formula::and(vec![]), Formula::True);
        assert_eq!(Formula::or(vec![]), Formula::False);
        assert_eq!(Formula::and(vec![Formula::True, a.clone()]), a);
        assert_eq!(Formula::or(vec![Formula::False, a.clone()]), a);
        assert_eq!(
            Formula::and(vec![Formula::False, a.clone()]),
            Formula::False
        );
        assert_eq!(Formula::or(vec![Formula::True, a.clone()]), Formula::True);

        let nested = Formula::and(vec![Formula::and(vec![a.clone(), a.clone()]), a.clone()]);
        match nested {
            Formula::And(parts) => assert_eq!(parts.len(), 3),
            other => panic!("expected flattened conjunction, got {other}"),
        }
    }

    #[test]
    fn not_folds_double_negation() {
        let (_, x, _) = xy();
        let a = Formula::atom(LinExpr::var(x).le(1.0));
        assert_eq!(Formula::not(Formula::not(a.clone())), a);
        assert_eq!(Formula::not(Formula::True), Formula::False);
        assert_eq!(Formula::not(Formula::False), Formula::True);
    }

    #[test]
    fn implication_and_iff_semantics() {
        let (_, x, y) = xy();
        let antecedent = Formula::atom(LinExpr::var(x).ge(0.0));
        let consequent = Formula::atom(LinExpr::var(y).ge(0.0));
        let imp = Formula::implies(antecedent.clone(), consequent.clone());
        assert!(imp.holds(&[1.0, 1.0]));
        assert!(imp.holds(&[-1.0, -5.0]));
        assert!(!imp.holds(&[1.0, -1.0]));

        let iff = Formula::iff(antecedent, consequent);
        assert!(iff.holds(&[1.0, 1.0]));
        assert!(iff.holds(&[-1.0, -1.0]));
        assert!(!iff.holds(&[-1.0, 1.0]));
    }

    #[test]
    fn atom_count_counts_with_multiplicity() {
        let (_, x, y) = xy();
        let f = Formula::and(vec![
            Formula::atom(LinExpr::var(x).le(1.0)),
            Formula::or(vec![
                Formula::atom(LinExpr::var(y).ge(0.0)),
                Formula::not(Formula::atom(LinExpr::var(x).gt(2.0))),
            ]),
        ]);
        assert_eq!(f.atom_count(), 3);
    }

    #[test]
    fn holds_evaluates_nested_structure() {
        let (_, x, y) = xy();
        let f = Formula::or(vec![
            Formula::and(vec![
                Formula::atom(LinExpr::var(x).ge(1.0)),
                Formula::atom(LinExpr::var(y).le(0.0)),
            ]),
            Formula::atom(LinExpr::var(y).ge(10.0)),
        ]);
        assert!(f.holds(&[1.5, -1.0]));
        assert!(f.holds(&[0.0, 12.0]));
        assert!(!f.holds(&[0.0, 5.0]));
    }

    #[test]
    fn display_renders_connectives() {
        let (_, x, _) = xy();
        let f = Formula::and(vec![
            Formula::atom(LinExpr::var(x).le(1.0)),
            Formula::not(Formula::atom(LinExpr::var(x).ge(5.0))),
        ]);
        let s = format!("{f}");
        assert!(s.contains('∧'));
        assert!(s.contains('¬'));
    }
}
