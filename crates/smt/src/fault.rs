//! Deterministic, seeded fault injection for robustness testing (compiled
//! only with the non-default `fault-injection` cargo feature).
//!
//! A [`FaultPlan`] describes, per fault kind, a per-site-visit firing
//! probability and a hard cap on total fires; installing it on a solver with
//! [`SmtSolver::install_faults`](crate::SmtSolver::install_faults) arms a
//! [`FaultInjector`] whose pseudo-random stream is a fixed-seed SplitMix64 —
//! the same plan against the same query replays the same faults, so every
//! failure found by the randomized suite reproduces exactly.
//!
//! Four fault kinds are injected at fixed sites inside the solver:
//!
//! - **Clock jumps** — the run governor's view of `Instant::now` accumulates
//!   random forward skew, exercising deadline handling (a jump can fire a
//!   deadline "early"; skew is monotone so time never runs backwards).
//! - **Spurious cancellations** — the governor's cooperative checkpoint
//!   reports `Cancelled` without the [`CancelToken`](crate::CancelToken)
//!   being touched.
//! - **Forced theory-verdict divergence** — a feasible simplex verdict is
//!   replaced by "diverged", driving the tableau-rebuild recovery path.
//! - **NaN/inf perturbation** — a model value is corrupted *before* model
//!   validation, driving the validate-then-rebuild recovery path.
//!
//! Every fire is bounded by the plan's `max_fires`, so recovery paths that
//! retry (rebuild, re-solve) always terminate. The invariant enforced by the
//! suite in `crates/smt/tests/fault_injection.rs`: a faulted run returns the
//! correct verdict or a typed interruption — never a wrong `Sat`/`Unsat`,
//! never a panic, never a hang.

use std::time::Duration;

/// Firing policy for one fault kind.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultSpec {
    /// Probability of firing per site visit, in `[0, 1]`.
    pub rate: f64,
    /// Hard cap on total fires over the injector's lifetime. Bounds every
    /// fault-driven retry loop.
    pub max_fires: u32,
}

impl FaultSpec {
    /// A kind that never fires.
    pub fn off() -> Self {
        Self::default()
    }

    /// Fires with probability `rate` per visit, at most `max_fires` times.
    pub fn new(rate: f64, max_fires: u32) -> Self {
        Self { rate, max_fires }
    }
}

/// A deterministic schedule of faults to inject into a solver run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Seed of the injector's SplitMix64 stream.
    pub seed: u64,
    /// Simulated forward clock jumps at deadline checks.
    pub clock_jump: FaultSpec,
    /// Spurious `Cancelled` reports at governor checkpoints.
    pub spurious_cancel: FaultSpec,
    /// Feasible-to-diverged theory verdict flips (drives tableau rebuilds).
    pub forced_divergence: FaultSpec,
    /// NaN/inf corruption of model values ahead of model validation.
    pub nan_perturbation: FaultSpec,
}

impl FaultPlan {
    /// A plan with every kind disabled.
    pub fn quiet(seed: u64) -> Self {
        Self {
            seed,
            clock_jump: FaultSpec::off(),
            spurious_cancel: FaultSpec::off(),
            forced_divergence: FaultSpec::off(),
            nan_perturbation: FaultSpec::off(),
        }
    }

    /// A plan arming **all four** kinds with the same rate and per-kind fire
    /// cap — the shape the randomized suite sweeps.
    pub fn all(seed: u64, rate: f64, max_fires: u32) -> Self {
        let spec = FaultSpec::new(rate, max_fires);
        Self {
            seed,
            clock_jump: spec,
            spurious_cancel: spec,
            forced_divergence: spec,
            nan_perturbation: spec,
        }
    }
}

/// Fault kinds, used as fire-count indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    ClockJump = 0,
    SpuriousCancel = 1,
    ForcedDivergence = 2,
    NanPerturbation = 3,
}

/// Live injector state: the plan plus the deterministic stream, fire counts
/// and accumulated clock skew. Owned by the solver, shared with its run
/// governor behind a mutex (runs are single-threaded; the mutex only buys
/// `Sync` so governed solvers stay `Send`).
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    /// SplitMix64 state (inlined: the solver crate is dependency-free).
    rng: u64,
    fired: [u32; 4],
    skew: Duration,
}

impl FaultInjector {
    /// Arms a plan.
    pub fn new(plan: FaultPlan) -> Self {
        Self {
            plan,
            rng: plan.seed,
            fired: [0; 4],
            skew: Duration::ZERO,
        }
    }

    /// Total fires across all kinds (test-side evidence that a sweep actually
    /// exercised the fault paths).
    pub fn total_fires(&self) -> u32 {
        self.fired.iter().sum()
    }

    fn next_u64(&mut self) -> u64 {
        // SplitMix64 (Steele, Lea & Flood) — matches the test generators.
        self.rng = self.rng.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    fn fire(&mut self, kind: Kind, spec: FaultSpec) -> bool {
        if spec.rate <= 0.0 || self.fired[kind as usize] >= spec.max_fires {
            return false;
        }
        // Always draw, so disabling one kind's cap does not shift the stream
        // consumed by the others within a visit sequence.
        let roll = self.unit();
        if roll < spec.rate {
            self.fired[kind as usize] += 1;
            true
        } else {
            false
        }
    }

    /// Current simulated clock skew; visiting this site may fire a jump of
    /// 1–500 ms. Skew only grows, preserving clock monotonicity.
    pub(crate) fn clock_skew(&mut self) -> Duration {
        let spec = self.plan.clock_jump;
        if self.fire(Kind::ClockJump, spec) {
            let jump_ms = 1 + self.next_u64() % 500;
            self.skew += Duration::from_millis(jump_ms);
        }
        self.skew
    }

    /// Whether this governor checkpoint spuriously reports cancellation.
    pub(crate) fn spurious_cancel(&mut self) -> bool {
        let spec = self.plan.spurious_cancel;
        self.fire(Kind::SpuriousCancel, spec)
    }

    /// Whether this feasible theory verdict is flipped to "diverged".
    pub(crate) fn forced_divergence(&mut self) -> bool {
        let spec = self.plan.forced_divergence;
        self.fire(Kind::ForcedDivergence, spec)
    }

    /// Possibly corrupts a model value with NaN or ±inf.
    pub(crate) fn perturb(&mut self, value: f64) -> f64 {
        let spec = self.plan.nan_perturbation;
        if !self.fire(Kind::NanPerturbation, spec) {
            return value;
        }
        match self.next_u64() % 3 {
            0 => f64::NAN,
            1 => f64::INFINITY,
            _ => f64::NEG_INFINITY,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_are_deterministic_and_bounded() {
        let plan = FaultPlan::all(42, 0.5, 3);
        let run = || {
            let mut injector = FaultInjector::new(plan);
            let fires: Vec<bool> = (0..64).map(|_| injector.spurious_cancel()).collect();
            (fires, injector.total_fires())
        };
        let (a, fires_a) = run();
        let (b, fires_b) = run();
        assert_eq!(a, b, "same seed must replay the same faults");
        assert_eq!(fires_a, fires_b);
        assert!(fires_a <= 3, "per-kind cap must bound fires");
        assert!(fires_a > 0, "rate 0.5 over 64 visits must fire");
    }

    #[test]
    fn clock_skew_is_monotone() {
        let mut injector = FaultInjector::new(FaultPlan::all(7, 1.0, 8));
        let mut last = Duration::ZERO;
        for _ in 0..16 {
            let skew = injector.clock_skew();
            assert!(skew >= last);
            last = skew;
        }
        assert!(last > Duration::ZERO);
    }

    #[test]
    fn quiet_plan_never_fires() {
        let mut injector = FaultInjector::new(FaultPlan::quiet(9));
        for _ in 0..32 {
            assert!(!injector.spurious_cancel());
            assert!(!injector.forced_divergence());
            assert_eq!(injector.clock_skew(), Duration::ZERO);
            assert_eq!(injector.perturb(1.5), 1.5);
        }
        assert_eq!(injector.total_fires(), 0);
    }

    #[test]
    fn perturbation_yields_non_finite_values() {
        let mut injector = FaultInjector::new(FaultPlan::all(3, 1.0, 100));
        let corrupted = (0..16)
            .map(|_| injector.perturb(2.0))
            .filter(|v| !v.is_finite())
            .count();
        assert!(corrupted > 0);
    }
}
