//! Linear optimisation over conjunctions of constraints.
//!
//! The synthesis algorithms mostly need *feasibility* queries with Boolean
//! structure (handled by [`SmtSolver`](crate::SmtSolver)), but two places
//! benefit from plain linear programming:
//!
//! - the LP-only attack-synthesis ablation (maximise the terminal deviation
//!   subject to stealthiness encoded conjunctively), and
//! - greedy sub-problems such as "how large can this residue become under the
//!   current threshold vector".
//!
//! Both are served by [`maximize`] / [`minimize`], thin wrappers around the
//! bounded-variable simplex in [`simplex`](crate::simplex).

use crate::simplex::{ObjectiveOutcome, Simplex};
use crate::{Constraint, LinExpr};

/// Outcome of a linear optimisation run.
#[derive(Debug, Clone, PartialEq)]
pub enum OptimizeOutcome {
    /// The constraint conjunction is infeasible.
    Infeasible,
    /// The objective is unbounded in the requested direction.
    Unbounded,
    /// Optimum found: `(objective value, assignment)` where the assignment is
    /// indexed by [`VarId::index`](crate::VarId::index).
    Optimal(f64, Vec<f64>),
}

impl OptimizeOutcome {
    /// Returns the optimal value if one was found.
    pub fn value(&self) -> Option<f64> {
        match self {
            OptimizeOutcome::Optimal(v, _) => Some(*v),
            _ => None,
        }
    }

    /// Returns the optimal assignment if one was found.
    pub fn assignment(&self) -> Option<&[f64]> {
        match self {
            OptimizeOutcome::Optimal(_, a) => Some(a),
            _ => None,
        }
    }
}

/// Maximises `objective` subject to the conjunction of `constraints` over
/// `num_vars` problem variables.
///
/// # Example
///
/// ```
/// use cps_smt::{maximize, LinExpr, OptimizeOutcome, VarPool};
///
/// let mut pool = VarPool::new();
/// let x = pool.fresh("x");
/// let constraints = vec![LinExpr::var(x).ge(0.0), LinExpr::var(x).le(3.0)];
/// match maximize(pool.len(), &constraints, &LinExpr::var(x)) {
///     OptimizeOutcome::Optimal(value, _) => assert!((value - 3.0).abs() < 1e-9),
///     other => panic!("unexpected outcome {other:?}"),
/// }
/// ```
pub fn maximize(
    num_vars: usize,
    constraints: &[Constraint],
    objective: &LinExpr,
) -> OptimizeOutcome {
    let tagged: Vec<(Constraint, usize)> = constraints
        .iter()
        .cloned()
        .enumerate()
        .map(|(i, c)| (c, i))
        .collect();
    match Simplex::check_and_maximize(num_vars, &tagged, objective) {
        Err(_) => OptimizeOutcome::Infeasible,
        Ok(ObjectiveOutcome::Unbounded) => OptimizeOutcome::Unbounded,
        Ok(ObjectiveOutcome::Optimal(value, assignment)) => {
            OptimizeOutcome::Optimal(value, assignment)
        }
    }
}

/// Minimises `objective` subject to the conjunction of `constraints`.
///
/// Implemented as maximisation of the negated objective; see [`maximize`].
pub fn minimize(
    num_vars: usize,
    constraints: &[Constraint],
    objective: &LinExpr,
) -> OptimizeOutcome {
    match maximize(num_vars, constraints, &objective.clone().scale(-1.0)) {
        OptimizeOutcome::Optimal(value, assignment) => OptimizeOutcome::Optimal(-value, assignment),
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::VarPool;

    #[test]
    fn maximize_simple_box() {
        let mut pool = VarPool::new();
        let x = pool.fresh("x");
        let y = pool.fresh("y");
        let constraints = vec![
            LinExpr::var(x).ge(-1.0),
            LinExpr::var(x).le(2.0),
            LinExpr::var(y).ge(0.0),
            LinExpr::var(y).le(1.0),
        ];
        let objective = LinExpr::var(x) + LinExpr::var(y) * 3.0;
        match maximize(pool.len(), &constraints, &objective) {
            OptimizeOutcome::Optimal(value, assignment) => {
                assert!((value - 5.0).abs() < 1e-6);
                assert!((assignment[x.index()] - 2.0).abs() < 1e-6);
                assert!((assignment[y.index()] - 1.0).abs() < 1e-6);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn minimize_simple_box() {
        let mut pool = VarPool::new();
        let x = pool.fresh("x");
        let constraints = vec![LinExpr::var(x).ge(-2.0), LinExpr::var(x).le(5.0)];
        match minimize(pool.len(), &constraints, &LinExpr::var(x)) {
            OptimizeOutcome::Optimal(value, _) => assert!((value + 2.0).abs() < 1e-6),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn infeasible_constraints_are_reported() {
        let mut pool = VarPool::new();
        let x = pool.fresh("x");
        let constraints = vec![LinExpr::var(x).ge(1.0), LinExpr::var(x).le(0.0)];
        assert_eq!(
            maximize(pool.len(), &constraints, &LinExpr::var(x)),
            OptimizeOutcome::Infeasible
        );
    }

    #[test]
    fn unbounded_direction_is_reported() {
        let mut pool = VarPool::new();
        let x = pool.fresh("x");
        let constraints = vec![LinExpr::var(x).ge(0.0)];
        assert_eq!(
            maximize(pool.len(), &constraints, &LinExpr::var(x)),
            OptimizeOutcome::Unbounded
        );
        // Minimisation of the same objective is bounded (at zero).
        match minimize(pool.len(), &constraints, &LinExpr::var(x)) {
            OptimizeOutcome::Optimal(value, _) => assert!(value.abs() < 1e-9),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn coupled_constraints_optimum() {
        // max x subject to x <= y, y <= 4, x >= 0.
        let mut pool = VarPool::new();
        let x = pool.fresh("x");
        let y = pool.fresh("y");
        let constraints = vec![
            (LinExpr::var(x) - LinExpr::var(y)).le(0.0),
            LinExpr::var(y).le(4.0),
            LinExpr::var(x).ge(0.0),
        ];
        match maximize(pool.len(), &constraints, &LinExpr::var(x)) {
            OptimizeOutcome::Optimal(value, _) => assert!((value - 4.0).abs() < 1e-6),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn accessors_on_outcome() {
        let mut pool = VarPool::new();
        let x = pool.fresh("x");
        let constraints = vec![LinExpr::var(x).le(1.0), LinExpr::var(x).ge(1.0)];
        let outcome = maximize(pool.len(), &constraints, &LinExpr::var(x));
        assert_eq!(outcome.value(), Some(1.0));
        assert_eq!(outcome.assignment().map(|a| a.len()), Some(1));
        assert_eq!(OptimizeOutcome::Infeasible.value(), None);
        assert_eq!(OptimizeOutcome::Unbounded.assignment(), None);
    }
}
