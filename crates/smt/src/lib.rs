//! A quantifier-free linear real arithmetic (QF-LRA) SMT solver.
//!
//! This crate is the workspace's substitute for the Z3 solver used in the
//! paper *Formal Synthesis of Monitoring and Detection Systems for Secure CPS
//! Implementations* (DATE 2020). Every query produced by unrolling an LTI
//! closed loop — threshold bounds on residues, range/gradient/relation
//! monitors, and the negated performance criterion — is a Boolean combination
//! of linear constraints over real variables, which is exactly the QF-LRA
//! fragment implemented here.
//!
//! Paper mapping: discharges the Algorithm 1 attack-vector queries of §III
//! (the paper hands them to Z3) and, via [`optimize`], the LP-only ablation.
//!
//! # Architecture
//!
//! - [`LinExpr`] / [`Constraint`] — linear expressions and atomic constraints,
//! - [`Formula`] — Boolean combinations of constraints, plus free
//!   propositional variables ([`Formula::BoolVar`], allocated from a
//!   [`BoolVarPool`]) for auxiliary-variable encodings such as the
//!   sequential-counter dead-zone constraint,
//! - [`tseitin`] — conversion to CNF over fresh Boolean variables,
//! - [`sat`] — a CDCL SAT core (watched literals, first-UIP learning, VSIDS),
//! - [`simplex`] — the **incremental sparse** general simplex theory solver
//!   of Dutertre & de Moura, with infinitesimal (δ) handling for strict
//!   inequalities and infeasibility explanations,
//! - [`SmtSolver`] — the lazy DPLL(T) loop tying the pieces together,
//! - [`optimize`] — a simplex-based linear optimiser over conjunctions of
//!   constraints (used for the LP-only attack-synthesis ablation).
//!
//! # Incremental theory integration
//!
//! The theory side follows the incremental discipline of Dutertre & de Moura
//! ("A Fast Linear-Arithmetic Solver for DPLL(T)", CAV 2006):
//!
//! - one persistent [`simplex::Simplex`] per [`SmtSolver::check`] call owns a
//!   sparse tableau whose rows are built **once** per distinct constraint
//!   expression (slack rows are shared across atoms over the same left-hand
//!   side);
//! - asserting a theory literal installs a variable *bound*
//!   ([`simplex::Simplex::assert_bound`]); SAT backtracking retracts bounds by
//!   popping a trail ([`simplex::Simplex::pop_to`]) — the basis and the
//!   current assignment stay put, so each re-solve starts warm and typically
//!   needs a handful of pivots;
//! - the solver keeps the simplex in lock-step with the SAT trail via trail
//!   positions and a low-water mark (only literals assigned since the last
//!   check are processed);
//! - the simplex repair loop pops a **violation priority queue** (largest
//!   infeasibility first, maintained incrementally by bound installs,
//!   assignment updates and pivots) instead of rescanning every row per
//!   pivot, and the SAT core picks decisions from an activity-ordered binary
//!   heap with lazy deletion instead of an `O(vars)` scan;
//! - **theory-level bound propagation** interval-propagates the tableau rows
//!   after each consistent partial check: implied variable bounds are
//!   derived with implication-graph explanations (the asserted atoms they
//!   follow from), theory atoms decided by a derived bound are fixed on the
//!   SAT trail with persistent implication clauses, and derived-vs-asserted
//!   bound conflicts surface with generalised (minimal-cut) explanations —
//!   the lever that makes threshold-constrained `UNSAT` certificates
//!   tractable at the paper's 50-sample horizon;
//! - numerical hygiene: pivot arithmetic accumulates float error (there is no
//!   refactorisation), so consistent verdicts are validated against the
//!   original constraint expressions and the tableau is rebuilt from scratch
//!   when a re-solve diverges or the cumulative pivot count grows large;
//!   derived bounds are padded outward and only trusted when they clear an
//!   atom's bound by a robustness margin.
//!
//! [`SolverConfig::incremental_theory`] switches back to the from-scratch
//! behaviour (a fresh tableau per theory check) and
//! [`SolverConfig::theory_propagation`] disables bound propagation — two
//! independently toggleable ablation baselines; the `solver_ablation` bench
//! reports all corners.
//!
//! # Example
//!
//! ```
//! use cps_smt::{Formula, LinExpr, SmtSolver, VarPool};
//!
//! let mut vars = VarPool::new();
//! let x = vars.fresh("x");
//! let y = vars.fresh("y");
//!
//! // x + y <= 1  ∧  x >= 0.6  ∧  (y >= 0.5 ∨ y <= -2)
//! let f = Formula::and(vec![
//!     Formula::atom((LinExpr::var(x) + LinExpr::var(y)).le(1.0)),
//!     Formula::atom(LinExpr::var(x).ge(0.6)),
//!     Formula::or(vec![
//!         Formula::atom(LinExpr::var(y).ge(0.5)),
//!         Formula::atom(LinExpr::var(y).le(-2.0)),
//!     ]),
//! ]);
//!
//! let mut solver = SmtSolver::new(vars);
//! solver.assert(f);
//! let model = solver.check().expect("query solved").expect_sat();
//! assert!(model.value(x) >= 0.6 - 1e-9);
//! assert!(model.value(x) + model.value(y) <= 1.0 + 1e-9);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod budget;
mod constraint;
mod expr;
#[cfg(feature = "fault-injection")]
pub mod fault;
mod formula;
pub mod optimize;
pub mod sat;
pub mod simplex;
mod solver;
pub mod tseitin;

pub use budget::{Budget, CancelToken, InterruptReason};
pub use constraint::{Constraint, RelOp};
pub use expr::{LinExpr, VarId, VarPool};
#[cfg(feature = "fault-injection")]
pub use fault::{FaultPlan, FaultSpec};
pub use formula::{BoolVarPool, Formula};
pub use optimize::{maximize, minimize, OptimizeOutcome};
pub use solver::{CheckResult, Model, SmtError, SmtSolver, SolverConfig, SolverStats};
