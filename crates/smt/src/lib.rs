//! A quantifier-free linear real arithmetic (QF-LRA) SMT solver.
//!
//! This crate is the workspace's substitute for the Z3 solver used in the
//! paper *Formal Synthesis of Monitoring and Detection Systems for Secure CPS
//! Implementations* (DATE 2020). Every query produced by unrolling an LTI
//! closed loop — threshold bounds on residues, range/gradient/relation
//! monitors, and the negated performance criterion — is a Boolean combination
//! of linear constraints over real variables, which is exactly the QF-LRA
//! fragment implemented here.
//!
//! Paper mapping: discharges the Algorithm 1 attack-vector queries of §III
//! (the paper hands them to Z3) and, via [`optimize`], the LP-only ablation.
//!
//! # Architecture
//!
//! - [`LinExpr`] / [`Constraint`] — linear expressions and atomic constraints,
//! - [`Formula`] — Boolean combinations of constraints,
//! - [`tseitin`] — conversion to CNF over fresh Boolean variables,
//! - [`sat`] — a CDCL SAT core (watched literals, first-UIP learning, VSIDS),
//! - [`simplex`] — the general simplex theory solver of Dutertre & de Moura,
//!   with infinitesimal (δ) handling for strict inequalities and
//!   infeasibility explanations,
//! - [`SmtSolver`] — the lazy DPLL(T) loop tying the pieces together,
//! - [`optimize`] — a simplex-based linear optimiser over conjunctions of
//!   constraints (used for the LP-only attack-synthesis ablation).
//!
//! # Example
//!
//! ```
//! use cps_smt::{Formula, LinExpr, SmtSolver, VarPool};
//!
//! let mut vars = VarPool::new();
//! let x = vars.fresh("x");
//! let y = vars.fresh("y");
//!
//! // x + y <= 1  ∧  x >= 0.6  ∧  (y >= 0.5 ∨ y <= -2)
//! let f = Formula::and(vec![
//!     Formula::atom((LinExpr::var(x) + LinExpr::var(y)).le(1.0)),
//!     Formula::atom(LinExpr::var(x).ge(0.6)),
//!     Formula::or(vec![
//!         Formula::atom(LinExpr::var(y).ge(0.5)),
//!         Formula::atom(LinExpr::var(y).le(-2.0)),
//!     ]),
//! ]);
//!
//! let mut solver = SmtSolver::new(vars);
//! solver.assert(f);
//! let model = solver.check().expect("query solved").expect_sat();
//! assert!(model.value(x) >= 0.6 - 1e-9);
//! assert!(model.value(x) + model.value(y) <= 1.0 + 1e-9);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod constraint;
mod expr;
mod formula;
pub mod optimize;
pub mod sat;
pub mod simplex;
mod solver;
pub mod tseitin;

pub use constraint::{Constraint, RelOp};
pub use expr::{LinExpr, VarId, VarPool};
pub use formula::Formula;
pub use optimize::{maximize, minimize, OptimizeOutcome};
pub use solver::{CheckResult, Model, SmtError, SmtSolver, SolverConfig, SolverStats};
