//! Resource governance for solver runs: wall-clock deadlines, conflict and
//! pivot caps, and cooperative cancellation.
//!
//! A [`Budget`] bounds a single [`SmtSolver::check`](crate::SmtSolver::check)
//! run along three axes — wall-clock time, propositional conflicts and simplex
//! pivots — and a [`CancelToken`] lets another thread (a job server, a
//! portfolio racer) abort the run from outside. All checks are *cooperative*:
//! the SAT core polls at conflict/restart boundaries and the simplex polls at
//! amortised pivot-batch boundaries, so the overhead stays well under 1 % of
//! the search itself while the reaction latency stays at the granularity of a
//! few conflicts or pivots.
//!
//! An exceeded budget or an observed cancellation never corrupts state and
//! never fabricates a verdict: the run unwinds with
//! [`SmtError::Interrupted`](crate::SmtError::Interrupted) carrying the
//! [`InterruptReason`] and the statistics gathered so far, so "Unknown" is a
//! first-class, attributable outcome.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a [`check`](crate::SmtSolver::check) run stopped before deciding its
/// query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum InterruptReason {
    /// The wall-clock deadline of the [`Budget`] passed.
    Deadline,
    /// The run's [`CancelToken`] was cancelled.
    Cancelled,
    /// The conflict cap — [`Budget::with_conflict_cap`] or
    /// [`SolverConfig::max_conflicts`](crate::SolverConfig::max_conflicts),
    /// whichever is smaller — was reached.
    ConflictBudget,
    /// The pivot cap ([`Budget::with_pivot_cap`]) was reached.
    PivotBudget,
}

impl fmt::Display for InterruptReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterruptReason::Deadline => write!(f, "wall-clock deadline"),
            InterruptReason::Cancelled => write!(f, "cancelled"),
            InterruptReason::ConflictBudget => write!(f, "conflict budget"),
            InterruptReason::PivotBudget => write!(f, "pivot budget"),
        }
    }
}

impl InterruptReason {
    /// Stable latch encoding (0 is reserved for "not tripped").
    fn code(self) -> u8 {
        match self {
            InterruptReason::Deadline => 1,
            InterruptReason::Cancelled => 2,
            InterruptReason::ConflictBudget => 3,
            InterruptReason::PivotBudget => 4,
        }
    }

    fn from_code(code: u8) -> Option<Self> {
        match code {
            1 => Some(InterruptReason::Deadline),
            2 => Some(InterruptReason::Cancelled),
            3 => Some(InterruptReason::ConflictBudget),
            4 => Some(InterruptReason::PivotBudget),
            _ => None,
        }
    }
}

/// Resource budget for a single [`check`](crate::SmtSolver::check) run.
///
/// Defaults to unlimited on every axis; compose caps builder-style:
///
/// ```
/// use cps_smt::Budget;
/// use std::time::Duration;
///
/// let budget = Budget::unlimited()
///     .with_timeout(Duration::from_secs(5))
///     .with_pivot_cap(1_000_000);
/// assert!(!budget.is_unlimited());
/// ```
///
/// The deadline is *absolute*: a budget built once and installed on several
/// solvers (or reused across warm CEGIS rounds) bounds the **whole** run, not
/// each query separately — exactly the semantics a synthesis loop wants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Budget {
    pub(crate) deadline: Option<Instant>,
    pub(crate) max_conflicts: Option<u64>,
    pub(crate) max_pivots: Option<u64>,
}

impl Budget {
    /// A budget with no caps (the default).
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// Caps the run at an absolute wall-clock deadline.
    pub fn with_deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Caps the run at `timeout` from **now** (the moment this builder is
    /// called, not the moment the check starts).
    pub fn with_timeout(self, timeout: Duration) -> Self {
        self.with_deadline(Instant::now() + timeout)
    }

    /// Caps the number of propositional + theory conflicts. The effective cap
    /// is the smaller of this and
    /// [`SolverConfig::max_conflicts`](crate::SolverConfig::max_conflicts).
    pub fn with_conflict_cap(mut self, cap: u64) -> Self {
        self.max_conflicts = Some(cap);
        self
    }

    /// Caps the total simplex pivots across all theory checks of the run
    /// (counted at batch granularity, so the run may overshoot by one batch).
    pub fn with_pivot_cap(mut self, cap: u64) -> Self {
        self.max_pivots = Some(cap);
        self
    }

    /// `true` when no axis is capped.
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none() && self.max_conflicts.is_none() && self.max_pivots.is_none()
    }

    /// The absolute wall-clock deadline, if one is set.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// The conflict cap, if one is set.
    pub fn max_conflicts(&self) -> Option<u64> {
        self.max_conflicts
    }

    /// The pivot cap, if one is set.
    pub fn max_pivots(&self) -> Option<u64> {
        self.max_pivots
    }
}

/// Shared cancellation flag for cooperative run abortion.
///
/// Clone the token, hand one clone to the solver
/// ([`SmtSolver::set_cancel_token`](crate::SmtSolver::set_cancel_token)) and
/// keep the other; calling [`CancelToken::cancel`] from any thread makes the
/// running check unwind with
/// [`InterruptReason::Cancelled`] at its next cooperative checkpoint.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation. Idempotent; safe from any thread.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }

    /// Clears the flag so the token can govern another run.
    pub fn reset(&self) {
        self.flag.store(false, Ordering::Relaxed);
    }
}

/// Per-run governor shared by the DPLL(T) loop, the SAT core and the simplex.
///
/// Wraps the budget axes in one latched checkpoint object: the first trip
/// wins and every later poll observes the same [`InterruptReason`], so the
/// nested loops (simplex inside theory check inside CDCL) unwind coherently
/// without threading error values through every return type.
#[derive(Debug)]
pub(crate) struct Governor {
    deadline: Option<Instant>,
    max_conflicts: Option<u64>,
    max_pivots: Option<u64>,
    cancel: CancelToken,
    /// Pivots noted so far (batch granularity; see [`Governor::note_pivots`]).
    pivots: AtomicU64,
    /// Latched [`InterruptReason::code`]; 0 while the run is healthy.
    tripped: AtomicU8,
    /// Deterministic fault injector (see [`crate::fault`]); shared with the
    /// owning solver so fire counts persist across warm CEGIS rounds.
    #[cfg(feature = "fault-injection")]
    pub(crate) faults: Option<Arc<std::sync::Mutex<crate::fault::FaultInjector>>>,
}

impl Governor {
    pub(crate) fn new(budget: Budget, cancel: CancelToken) -> Self {
        Self {
            deadline: budget.deadline,
            max_conflicts: budget.max_conflicts,
            max_pivots: budget.max_pivots,
            cancel,
            pivots: AtomicU64::new(0),
            tripped: AtomicU8::new(0),
            #[cfg(feature = "fault-injection")]
            faults: None,
        }
    }

    /// The latched interrupt reason, if the run has tripped.
    pub(crate) fn tripped(&self) -> Option<InterruptReason> {
        InterruptReason::from_code(self.tripped.load(Ordering::Relaxed))
    }

    /// Latches `reason` (first trip wins) and returns the winning reason.
    fn trip(&self, reason: InterruptReason) -> InterruptReason {
        match self
            .tripped
            .compare_exchange(0, reason.code(), Ordering::Relaxed, Ordering::Relaxed)
        {
            Ok(_) => reason,
            Err(prev) => InterruptReason::from_code(prev).unwrap_or(reason),
        }
    }

    /// Wall clock as the governor sees it — identical to [`Instant::now`]
    /// except under fault injection, where simulated clock jumps add a
    /// monotone skew.
    fn now(&self) -> Instant {
        let now = Instant::now();
        #[cfg(feature = "fault-injection")]
        if let Some(faults) = &self.faults {
            return now + faults.lock().expect("fault injector lock").clock_skew();
        }
        now
    }

    /// Deadline + cancellation checkpoint. Cheap enough for every conflict:
    /// two relaxed atomic loads, plus one `Instant::now` only when a deadline
    /// is actually set.
    pub(crate) fn check(&self) -> Option<InterruptReason> {
        if let Some(reason) = self.tripped() {
            return Some(reason);
        }
        #[cfg(feature = "fault-injection")]
        if let Some(faults) = &self.faults {
            if faults
                .lock()
                .expect("fault injector lock")
                .spurious_cancel()
            {
                return Some(self.trip(InterruptReason::Cancelled));
            }
        }
        if self.cancel.is_cancelled() {
            return Some(self.trip(InterruptReason::Cancelled));
        }
        if let Some(deadline) = self.deadline {
            if self.now() >= deadline {
                return Some(self.trip(InterruptReason::Deadline));
            }
        }
        None
    }

    /// Conflict-boundary checkpoint: conflict cap first, then
    /// [`Governor::check`].
    pub(crate) fn check_conflicts(&self, conflicts: u64) -> Option<InterruptReason> {
        if let Some(cap) = self.max_conflicts {
            if conflicts >= cap {
                return Some(self.trip(InterruptReason::ConflictBudget));
            }
        }
        self.check()
    }

    /// Pivot-batch checkpoint: adds `batch` to the run's pivot total, trips
    /// on the pivot cap, then falls through to [`Governor::check`]. Callers
    /// poll every few dozen pivots, so the cap is enforced at batch
    /// granularity.
    pub(crate) fn note_pivots(&self, batch: u64) -> Option<InterruptReason> {
        let total = self.pivots.fetch_add(batch, Ordering::Relaxed) + batch;
        if let Some(cap) = self.max_pivots {
            if total >= cap {
                return Some(self.trip(InterruptReason::PivotBudget));
            }
        }
        self.check()
    }

    /// Fault hook: forced theory-verdict divergence (see [`crate::fault`]).
    #[cfg(feature = "fault-injection")]
    pub(crate) fn fault_divergence(&self) -> bool {
        self.faults.as_ref().is_some_and(|faults| {
            faults
                .lock()
                .expect("fault injector lock")
                .forced_divergence()
        })
    }

    /// Fault hook: NaN/inf model-value perturbation (see [`crate::fault`]).
    #[cfg(feature = "fault-injection")]
    pub(crate) fn fault_perturb(&self, value: f64) -> f64 {
        match &self.faults {
            Some(faults) => faults.lock().expect("fault injector lock").perturb(value),
            None => value,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_never_trips() {
        let governor = Governor::new(Budget::unlimited(), CancelToken::new());
        assert_eq!(governor.check(), None);
        assert_eq!(governor.check_conflicts(u64::MAX - 1), None);
        assert_eq!(governor.note_pivots(1 << 40), None);
        assert_eq!(governor.tripped(), None);
    }

    #[test]
    fn expired_deadline_trips_and_latches() {
        let budget = Budget::unlimited().with_deadline(Instant::now() - Duration::from_secs(1));
        let governor = Governor::new(budget, CancelToken::new());
        assert_eq!(governor.check(), Some(InterruptReason::Deadline));
        // Later (different-axis) checks observe the same latched reason.
        assert_eq!(
            governor.check_conflicts(u64::MAX - 1),
            Some(InterruptReason::Deadline)
        );
        assert_eq!(governor.tripped(), Some(InterruptReason::Deadline));
    }

    #[test]
    fn cancellation_is_observed() {
        let token = CancelToken::new();
        let governor = Governor::new(Budget::unlimited(), token.clone());
        assert_eq!(governor.check(), None);
        token.cancel();
        assert_eq!(governor.check(), Some(InterruptReason::Cancelled));
        token.reset();
        // The trip is latched: resetting the token does not un-interrupt a run.
        assert_eq!(governor.tripped(), Some(InterruptReason::Cancelled));
    }

    #[test]
    fn conflict_and_pivot_caps_trip() {
        let budget = Budget::unlimited()
            .with_conflict_cap(10)
            .with_pivot_cap(100);
        let governor = Governor::new(budget, CancelToken::new());
        assert_eq!(governor.check_conflicts(9), None);
        assert_eq!(
            governor.check_conflicts(10),
            Some(InterruptReason::ConflictBudget)
        );

        let governor = Governor::new(budget, CancelToken::new());
        assert_eq!(governor.note_pivots(64), None);
        assert_eq!(governor.note_pivots(64), Some(InterruptReason::PivotBudget));
    }
}
