//! A CDCL SAT core used as the propositional engine of the DPLL(T) loop.
//!
//! The solver implements the standard ingredients — two-watched-literal
//! propagation, first-UIP conflict analysis with clause learning, VSIDS-style
//! activity-based decisions and phase saving — in a deliberately compact form.
//! It is driven externally by [`SmtSolver`](crate::SmtSolver), which
//! interleaves theory checks between propositional decisions, so the public
//! surface exposes the individual steps (propagate / decide / conflict
//! handling) rather than a single monolithic `solve`.
//!
//! Two scale-out mechanisms are off by default and switched on via
//! [`SatSolver::enable_scale_out`]: Luby-sequence restarts (the search
//! abandons its current subtree on a `luby(i) · unit` conflict schedule while
//! phase saving and VSIDS activities carry its knowledge across the restart)
//! and learned-clause database reduction (when the deletable-clause count
//! exceeds a growing cap, the lowest-activity half of the high-glue learned
//! clauses is deleted and the arena compacted). Three clause classes exist:
//! *problem* clauses from [`SatSolver::add_clause`] (never deleted),
//! *learned* clauses from conflict analysis and
//! [`SatSolver::add_learned_clause`] (deletable), and *persistent theory
//! implication* clauses from [`SatSolver::propagate_theory_literal`]
//! (exempt from reduction — re-deriving them would repeat simplex work).

use std::fmt;
use std::sync::Arc;

use crate::budget::{Governor, InterruptReason};

/// A propositional literal: a Boolean variable together with a polarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Lit(u32);

impl Lit {
    /// Creates a literal for `var` with the given polarity.
    pub fn new(var: usize, positive: bool) -> Self {
        Lit((var as u32) << 1 | u32::from(!positive))
    }

    /// Reconstructs a literal from its dense [`Lit::index`] encoding.
    pub fn from_index(index: usize) -> Self {
        Lit(index as u32)
    }

    /// The variable index of the literal.
    pub fn var(self) -> usize {
        (self.0 >> 1) as usize
    }

    /// `true` for a positive (non-negated) literal.
    pub fn is_positive(self) -> bool {
        self.0 & 1 == 0
    }

    /// The literal with the opposite polarity.
    pub fn negated(self) -> Lit {
        Lit(self.0 ^ 1)
    }

    /// Dense index usable for watch lists (`2·var + sign`).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_positive() {
            write!(f, "b{}", self.var())
        } else {
            write!(f, "¬b{}", self.var())
        }
    }
}

/// Truth value of a literal under the current partial assignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LitValue {
    /// The literal evaluates to true.
    True,
    /// The literal evaluates to false.
    False,
    /// The literal's variable is unassigned.
    Unassigned,
}

/// Outcome of adding a clause to the solver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AddClauseResult {
    /// The clause was stored (or was already satisfied at level zero).
    Ok,
    /// The clause is empty or falsified at decision level zero: the instance
    /// is unsatisfiable.
    Unsat,
}

/// One stored clause. Problem clauses, learned clauses and persistent theory
/// implication lemmas share the arena; `deletable`, `lbd` and `activity`
/// drive the database-reduction policy.
#[derive(Debug)]
struct Clause {
    lits: Vec<Lit>,
    /// Eligible for database reduction. Problem clauses and theory
    /// implication clauses are never deleted; clauses learned from
    /// propositional or theory conflicts are.
    deletable: bool,
    /// Literal-block distance (glue) at learn time: the number of distinct
    /// decision levels among the clause's literals. Low-glue clauses connect
    /// few levels and are kept unconditionally.
    lbd: u32,
    /// Bumped whenever the clause participates in conflict analysis.
    activity: f64,
}

/// Conflicts per Luby unit: restart `i` fires `luby(i) · RESTART_UNIT`
/// conflicts after restart `i-1`.
const RESTART_UNIT: u64 = 256;

/// Learned clauses with glue at or below this are never deleted.
const GLUE_LBD: u32 = 2;

/// Deletable-clause count that triggers the first database reduction. The
/// cap grows by a quarter after each reduction, so the database still grows,
/// just sub-linearly in conflicts.
const INITIAL_LEARNED_CAP: usize = 2000;

/// The Luby restart sequence 1, 1, 2, 1, 1, 2, 4, 1, … (`x` is 0-indexed).
/// Reluctant doubling gives the log-optimal universal restart schedule.
pub(crate) fn luby(mut x: u64) -> u64 {
    // Find the smallest complete block (length 2^(seq+1) - 1) containing x,
    // then recurse into its position within that block.
    let (mut size, mut seq) = (1u64, 0u32);
    while size < x + 1 {
        seq += 1;
        size = 2 * size + 1;
    }
    while size - 1 != x {
        size = (size - 1) >> 1;
        seq -= 1;
        x %= size;
    }
    1u64 << seq
}

/// Indexed binary max-heap over variables ordered by VSIDS activity
/// (ties break towards the smaller variable index, matching the linear-scan
/// selection it replaces). Assigned variables are *lazily deleted*: they stay
/// in the heap until they surface at the root during a pop, and are
/// re-inserted when backtracking unassigns them.
#[derive(Debug, Default)]
struct VarOrder {
    /// Heap array of variable indices.
    heap: Vec<u32>,
    /// `pos[var]` is the index of `var` in `heap`, or `ABSENT`.
    pos: Vec<u32>,
}

const ABSENT: u32 = u32::MAX;

impl VarOrder {
    fn new(num_vars: usize) -> Self {
        // Equal activities with the smaller-index tie-break mean the identity
        // ordering is already a valid heap.
        Self {
            heap: (0..num_vars as u32).collect(),
            pos: (0..num_vars as u32).collect(),
        }
    }

    /// `true` when `a` should sit above `b` in the heap.
    fn precedes(activity: &[f64], a: u32, b: u32) -> bool {
        let (aa, ab) = (activity[a as usize], activity[b as usize]);
        aa > ab || (aa == ab && a < b)
    }

    fn contains(&self, var: usize) -> bool {
        self.pos[var] != ABSENT
    }

    fn insert(&mut self, var: usize, activity: &[f64]) {
        if self.contains(var) {
            return;
        }
        self.pos[var] = self.heap.len() as u32;
        self.heap.push(var as u32);
        self.sift_up(self.heap.len() - 1, activity);
    }

    /// Restores the heap property after `var`'s activity increased.
    fn bumped(&mut self, var: usize, activity: &[f64]) {
        let i = self.pos[var];
        if i != ABSENT {
            self.sift_up(i as usize, activity);
        }
    }

    fn pop(&mut self, activity: &[f64]) -> Option<usize> {
        let top = *self.heap.first()?;
        let last = self.heap.pop().expect("heap is non-empty");
        self.pos[top as usize] = ABSENT;
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.pos[last as usize] = 0;
            self.sift_down(0, activity);
        }
        Some(top as usize)
    }

    fn sift_up(&mut self, mut i: usize, activity: &[f64]) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if Self::precedes(activity, self.heap[i], self.heap[parent]) {
                self.heap.swap(i, parent);
                self.pos[self.heap[i] as usize] = i as u32;
                self.pos[self.heap[parent] as usize] = parent as u32;
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize, activity: &[f64]) {
        loop {
            let left = 2 * i + 1;
            if left >= self.heap.len() {
                break;
            }
            let right = left + 1;
            let mut child = left;
            if right < self.heap.len()
                && Self::precedes(activity, self.heap[right], self.heap[left])
            {
                child = right;
            }
            if Self::precedes(activity, self.heap[child], self.heap[i]) {
                self.heap.swap(i, child);
                self.pos[self.heap[i] as usize] = i as u32;
                self.pos[self.heap[child] as usize] = child as u32;
                i = child;
            } else {
                break;
            }
        }
    }
}

/// A conflict-driven clause-learning SAT solver.
///
/// # Example
///
/// ```
/// use cps_smt::sat::{Lit, SatSolver};
///
/// let mut solver = SatSolver::new(2);
/// // (b0 ∨ b1) ∧ (¬b0 ∨ b1) ∧ (¬b1 ∨ b0) ∧ (¬b0 ∨ ¬b1) is unsatisfiable.
/// solver.add_clause(vec![Lit::new(0, true), Lit::new(1, true)]);
/// solver.add_clause(vec![Lit::new(0, false), Lit::new(1, true)]);
/// solver.add_clause(vec![Lit::new(1, false), Lit::new(0, true)]);
/// solver.add_clause(vec![Lit::new(0, false), Lit::new(1, false)]);
/// assert!(!solver.solve());
/// ```
#[derive(Debug)]
pub struct SatSolver {
    num_vars: usize,
    clauses: Vec<Clause>,
    watches: Vec<Vec<usize>>,
    assign: Vec<Option<bool>>,
    level: Vec<usize>,
    reason: Vec<Option<usize>>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    /// Minimum trail length reached since the last
    /// [`SatSolver::reset_trail_low_water`]: everything at or above this
    /// index was truncated at some point, even if the trail has regrown past
    /// it since.
    trail_low_water: usize,
    propagate_head: usize,
    activity: Vec<f64>,
    activity_inc: f64,
    /// Activity-ordered decision heap (see [`VarOrder`]).
    order: VarOrder,
    phase: Vec<bool>,
    unsat: bool,
    conflicts: u64,
    decisions: u64,
    propagations: u64,
    /// Luby restarts enabled (see [`SatSolver::enable_scale_out`]).
    restarts_enabled: bool,
    /// Learned-clause database reduction enabled.
    reduction_enabled: bool,
    /// Conflicts per Luby unit (a field so tests can shrink the schedule).
    restart_unit: u64,
    /// 0-indexed position in the Luby sequence of the *next* restart.
    luby_index: u64,
    /// Conflict count at which the next restart fires.
    next_restart_at: u64,
    restarts: u64,
    clauses_deleted: u64,
    /// Number of clauses currently in the arena with `deletable` set.
    num_deletable: usize,
    /// Deletable-clause count that triggers the next database reduction.
    learned_cap: usize,
    /// Additive clause-activity increment (decayed geometrically, like
    /// variable activities but with a slower constant).
    clause_act_inc: f64,
    /// Budget/cancellation governor installed by the DPLL(T) driver for the
    /// duration of one `check`. Polled at conflict boundaries only, so the
    /// ungoverned hot path pays a single `Option` test per conflict.
    governor: Option<Arc<Governor>>,
}

impl SatSolver {
    /// Creates a solver over `num_vars` Boolean variables.
    pub fn new(num_vars: usize) -> Self {
        Self {
            num_vars,
            clauses: Vec::new(),
            watches: vec![Vec::new(); 2 * num_vars],
            assign: vec![None; num_vars],
            level: vec![0; num_vars],
            reason: vec![None; num_vars],
            trail: Vec::new(),
            trail_lim: Vec::new(),
            trail_low_water: 0,
            propagate_head: 0,
            activity: vec![0.0; num_vars],
            activity_inc: 1.0,
            order: VarOrder::new(num_vars),
            phase: vec![false; num_vars],
            unsat: false,
            conflicts: 0,
            decisions: 0,
            propagations: 0,
            restarts_enabled: false,
            reduction_enabled: false,
            restart_unit: RESTART_UNIT,
            luby_index: 0,
            next_restart_at: RESTART_UNIT,
            restarts: 0,
            clauses_deleted: 0,
            num_deletable: 0,
            learned_cap: INITIAL_LEARNED_CAP,
            clause_act_inc: 1.0,
            governor: None,
        }
    }

    /// Installs the budget/cancellation governor polled at conflict
    /// boundaries during [`SatSolver::solve_governed`].
    pub(crate) fn set_governor(&mut self, governor: Arc<Governor>) {
        self.governor = Some(governor);
    }

    /// Switches the scale-out mechanisms on or off: Luby restarts and
    /// learned-clause database reduction. Both default to off so the solver
    /// behaves exactly as the pre-scale-out engine unless the DPLL(T) driver
    /// (or a test) opts in.
    pub fn enable_scale_out(&mut self, restarts: bool, clause_db_reduction: bool) {
        self.restarts_enabled = restarts;
        self.reduction_enabled = clause_db_reduction;
        self.next_restart_at = self.conflicts + self.restart_unit * luby(self.luby_index);
    }

    /// Overrides the conflicts-per-Luby-unit constant. Intended for tests
    /// that want to exercise many restarts on small instances.
    pub fn set_restart_unit(&mut self, unit: u64) {
        self.restart_unit = unit.max(1);
        self.next_restart_at = self.conflicts + self.restart_unit * luby(self.luby_index);
    }

    /// Overrides the deletable-clause cap that triggers database reduction.
    /// Intended for tests that want reductions on small instances.
    pub fn set_learned_cap(&mut self, cap: usize) {
        self.learned_cap = cap;
    }

    /// Number of Luby restarts performed so far.
    pub fn restarts(&self) -> u64 {
        self.restarts
    }

    /// Number of learned clauses deleted by database reduction so far.
    pub fn clauses_deleted(&self) -> u64 {
        self.clauses_deleted
    }

    /// Number of clauses currently stored (all classes).
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Number of Boolean variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of conflicts encountered so far.
    pub fn conflicts(&self) -> u64 {
        self.conflicts
    }

    /// Number of decisions made so far.
    pub fn decisions(&self) -> u64 {
        self.decisions
    }

    /// Number of literal propagations performed so far.
    pub fn propagations(&self) -> u64 {
        self.propagations
    }

    /// Current decision level.
    pub fn decision_level(&self) -> usize {
        self.trail_lim.len()
    }

    /// Returns `true` once the clause database is known to be unsatisfiable.
    pub fn is_unsat(&self) -> bool {
        self.unsat
    }

    /// Truth value of a literal.
    pub fn value(&self, lit: Lit) -> LitValue {
        match self.assign[lit.var()] {
            None => LitValue::Unassigned,
            Some(v) => {
                if v == lit.is_positive() {
                    LitValue::True
                } else {
                    LitValue::False
                }
            }
        }
    }

    /// Boolean value of a variable, if assigned.
    pub fn var_value(&self, var: usize) -> Option<bool> {
        self.assign[var]
    }

    /// Returns `true` when every variable is assigned.
    pub fn all_assigned(&self) -> bool {
        self.trail.len() == self.num_vars
    }

    /// The assignment trail in chronological order. Backtracking only ever
    /// truncates the trail, so a prefix that matched earlier still matches —
    /// the property the incremental theory synchronisation relies on.
    pub fn trail(&self) -> &[Lit] {
        &self.trail
    }

    /// Smallest trail length reached since the last
    /// [`SatSolver::reset_trail_low_water`] call. Trail entries below this
    /// index are guaranteed unchanged since then; entries at or above it may
    /// have been truncated and regrown (possibly with identical literals), so
    /// an incremental theory must re-process them.
    pub fn trail_low_water(&self) -> usize {
        self.trail_low_water
    }

    /// Marks the current trail as fully observed: the low-water mark restarts
    /// at the current trail length.
    pub fn reset_trail_low_water(&mut self) {
        self.trail_low_water = self.trail.len();
    }

    /// Adds a problem clause (never deleted by database reduction).
    /// Duplicate literals are removed; tautologies are ignored.
    pub fn add_clause(&mut self, lits: Vec<Lit>) -> AddClauseResult {
        self.add_clause_with(lits, false)
    }

    fn add_clause_with(&mut self, mut lits: Vec<Lit>, deletable: bool) -> AddClauseResult {
        if self.unsat {
            return AddClauseResult::Unsat;
        }
        debug_assert_eq!(
            self.decision_level(),
            0,
            "problem clauses must be added at decision level zero"
        );
        lits.sort_by_key(|l| l.index());
        lits.dedup();
        // Tautology check: a literal and its negation in the same clause.
        for pair in lits.windows(2) {
            if pair[0].var() == pair[1].var() {
                return AddClauseResult::Ok;
            }
        }
        // Drop literals already false at level zero; short-circuit on true ones.
        let mut reduced = Vec::with_capacity(lits.len());
        for lit in lits {
            match self.value(lit) {
                LitValue::True => return AddClauseResult::Ok,
                LitValue::False => {}
                LitValue::Unassigned => reduced.push(lit),
            }
        }
        match reduced.len() {
            0 => {
                self.unsat = true;
                AddClauseResult::Unsat
            }
            1 => {
                self.enqueue(reduced[0], None);
                if self.propagate().is_some() {
                    self.unsat = true;
                    AddClauseResult::Unsat
                } else {
                    AddClauseResult::Ok
                }
            }
            _ => {
                // Level-zero adds carry no decision-level structure, so the
                // clause length stands in for the glue of deletable clauses.
                let lbd = reduced.len() as u32;
                self.attach_clause(reduced, deletable, lbd);
                AddClauseResult::Ok
            }
        }
    }

    fn attach_clause(&mut self, lits: Vec<Lit>, deletable: bool, lbd: u32) -> usize {
        let idx = self.clauses.len();
        self.watches[lits[0].index()].push(idx);
        self.watches[lits[1].index()].push(idx);
        if deletable {
            self.num_deletable += 1;
        }
        self.clauses.push(Clause {
            lits,
            deletable,
            lbd,
            activity: 0.0,
        });
        idx
    }

    /// `true` when restarts are enabled and the Luby schedule says the
    /// current conflict budget is exhausted.
    pub fn should_restart(&self) -> bool {
        self.restarts_enabled && self.conflicts >= self.next_restart_at
    }

    /// Performs a restart: backtracks to decision level zero and advances the
    /// Luby schedule. Phase saving, VSIDS activities and learned clauses all
    /// survive, so the restarted search replays its useful prefix quickly and
    /// diverges where the activity landscape has shifted. Also gives database
    /// reduction its level-zero opportunity to run.
    pub fn restart(&mut self) {
        self.backtrack(0);
        self.restarts += 1;
        self.luby_index += 1;
        self.next_restart_at = self.conflicts + self.restart_unit * luby(self.luby_index);
        self.maybe_reduce_db();
    }

    /// Runs a database reduction if reduction is enabled, the solver sits at
    /// decision level zero, and the deletable-clause count exceeds the cap.
    /// Safe to call opportunistically — a no-op in any other state.
    pub fn maybe_reduce_db(&mut self) {
        if self.reduction_enabled
            && self.decision_level() == 0
            && self.num_deletable > self.learned_cap
        {
            self.reduce_db();
        }
    }

    /// Deletes the less-useful half of the deletable learned clauses and
    /// compacts the arena. Kept unconditionally: non-deletable clauses
    /// (problem + theory implication), glue clauses (`lbd ≤ GLUE_LBD`) and
    /// *locked* clauses (the reason of a currently-assigned literal — conflict
    /// analysis may still resolve through them). Candidates are ranked by
    /// activity ascending, glue descending on ties, so the clauses that
    /// recently drove conflict analysis survive.
    fn reduce_db(&mut self) {
        debug_assert_eq!(self.decision_level(), 0, "reduce only at level zero");
        let mut locked = vec![false; self.clauses.len()];
        for lit in &self.trail {
            if let Some(idx) = self.reason[lit.var()] {
                locked[idx] = true;
            }
        }
        let mut candidates: Vec<usize> = (0..self.clauses.len())
            .filter(|&i| {
                let c = &self.clauses[i];
                c.deletable && c.lbd > GLUE_LBD && !locked[i]
            })
            .collect();
        // Ties break towards the smaller arena index, keeping the deletion
        // set (and hence the subsequent search) fully deterministic.
        candidates.sort_by(|&a, &b| {
            let (ca, cb) = (&self.clauses[a], &self.clauses[b]);
            ca.activity
                .total_cmp(&cb.activity)
                .then(cb.lbd.cmp(&ca.lbd))
                .then(a.cmp(&b))
        });
        let doomed = &candidates[..candidates.len() / 2];
        // Whether anything was deleted or not, grow the cap so reductions
        // stay geometrically spaced in conflict count.
        self.learned_cap += self.learned_cap / 4 + 1;
        if doomed.is_empty() {
            return;
        }
        let mut drop = vec![false; self.clauses.len()];
        for &i in doomed {
            drop[i] = true;
        }
        // Compact the arena, then remap watch lists and reason indices.
        let mut remap: Vec<usize> = vec![usize::MAX; self.clauses.len()];
        let mut kept = Vec::with_capacity(self.clauses.len() - doomed.len());
        for (i, clause) in std::mem::take(&mut self.clauses).into_iter().enumerate() {
            if drop[i] {
                self.num_deletable -= 1;
                self.clauses_deleted += 1;
                continue;
            }
            remap[i] = kept.len();
            kept.push(clause);
        }
        self.clauses = kept;
        for list in &mut self.watches {
            list.retain_mut(|idx| {
                if remap[*idx] == usize::MAX {
                    return false;
                }
                *idx = remap[*idx];
                true
            });
        }
        for reason in &mut self.reason {
            if let Some(idx) = reason {
                debug_assert_ne!(remap[*idx], usize::MAX, "locked clause was deleted");
                *idx = remap[*idx];
            }
        }
    }

    fn bump_clause(&mut self, idx: usize) {
        if !self.clauses[idx].deletable {
            return;
        }
        self.clauses[idx].activity += self.clause_act_inc;
        if self.clauses[idx].activity > 1e20 {
            for clause in &mut self.clauses {
                clause.activity *= 1e-20;
            }
            self.clause_act_inc *= 1e-20;
        }
    }

    fn decay_clause_activities(&mut self) {
        self.clause_act_inc /= 0.999;
    }

    fn enqueue(&mut self, lit: Lit, reason: Option<usize>) {
        debug_assert!(self.value(lit) == LitValue::Unassigned);
        self.assign[lit.var()] = Some(lit.is_positive());
        self.level[lit.var()] = self.decision_level();
        self.reason[lit.var()] = reason;
        self.phase[lit.var()] = lit.is_positive();
        self.trail.push(lit);
    }

    /// Runs unit propagation to a fixpoint. Returns the index of a conflicting
    /// clause, if any.
    pub fn propagate(&mut self) -> Option<usize> {
        while self.propagate_head < self.trail.len() {
            let lit = self.trail[self.propagate_head];
            self.propagate_head += 1;
            self.propagations += 1;
            let falsified = lit.negated();
            let watch_list = std::mem::take(&mut self.watches[falsified.index()]);
            let mut retained = Vec::with_capacity(watch_list.len());
            let mut conflict = None;
            for (pos, &clause_idx) in watch_list.iter().enumerate() {
                if conflict.is_some() {
                    retained.extend_from_slice(&watch_list[pos..]);
                    break;
                }
                // Normalise so the falsified literal sits at position 1.
                let clause_len = self.clauses[clause_idx].lits.len();
                if self.clauses[clause_idx].lits[0] == falsified {
                    self.clauses[clause_idx].lits.swap(0, 1);
                }
                let first = self.clauses[clause_idx].lits[0];
                if self.value(first) == LitValue::True {
                    retained.push(clause_idx);
                    continue;
                }
                // Look for a replacement watch.
                let mut replaced = false;
                for k in 2..clause_len {
                    let candidate = self.clauses[clause_idx].lits[k];
                    if self.value(candidate) != LitValue::False {
                        self.clauses[clause_idx].lits.swap(1, k);
                        self.watches[candidate.index()].push(clause_idx);
                        replaced = true;
                        break;
                    }
                }
                if replaced {
                    continue;
                }
                // No replacement: the clause is unit or conflicting.
                retained.push(clause_idx);
                match self.value(first) {
                    LitValue::Unassigned => self.enqueue(first, Some(clause_idx)),
                    LitValue::False => conflict = Some(clause_idx),
                    LitValue::True => unreachable!("handled above"),
                }
            }
            self.watches[falsified.index()] = retained;
            if conflict.is_some() {
                self.propagate_head = self.trail.len();
                return conflict;
            }
        }
        None
    }

    /// Starts a new decision level and assumes `lit`.
    pub fn decide(&mut self, lit: Lit) {
        debug_assert!(self.value(lit) == LitValue::Unassigned);
        self.decisions += 1;
        self.trail_lim.push(self.trail.len());
        self.enqueue(lit, None);
    }

    /// Picks the next decision literal: the unassigned variable with the
    /// highest activity (popped from the activity-ordered heap; assigned
    /// entries surfacing at the root are lazily discarded), using the saved
    /// phase. Returns `None` when all variables are assigned.
    pub fn pick_branch_literal(&mut self) -> Option<Lit> {
        while let Some(var) = self.order.pop(&self.activity) {
            if self.assign[var].is_none() {
                return Some(Lit::new(var, self.phase[var]));
            }
        }
        None
    }

    /// Returns a variable obtained from [`SatSolver::pick_branch_literal`]
    /// to the decision heap without deciding it — used by the DPLL(T) driver
    /// when a theory check intervenes between picking and deciding.
    pub fn requeue_decision(&mut self, var: usize) {
        self.order.insert(var, &self.activity);
    }

    /// Backtracks to the given decision level (keeping assignments made at or
    /// below that level).
    pub fn backtrack(&mut self, target_level: usize) {
        if self.decision_level() <= target_level {
            return;
        }
        let new_len = self.trail_lim[target_level];
        for i in new_len..self.trail.len() {
            let var = self.trail[i].var();
            self.assign[var] = None;
            self.reason[var] = None;
            self.order.insert(var, &self.activity);
        }
        self.trail.truncate(new_len);
        self.trail_lim.truncate(target_level);
        self.trail_low_water = self.trail_low_water.min(self.trail.len());
        self.propagate_head = self.trail.len();
    }

    fn bump_activity(&mut self, var: usize) {
        self.activity[var] += self.activity_inc;
        self.order.bumped(var, &self.activity);
        if self.activity[var] > 1e100 {
            // Uniform rescale: relative order is untouched, so the heap needs
            // no repair.
            for act in &mut self.activity {
                *act *= 1e-100;
            }
            self.activity_inc *= 1e-100;
        }
    }

    fn decay_activities(&mut self) {
        self.activity_inc /= 0.95;
    }

    /// Analyses a conflict expressed as a set of currently-false literals,
    /// learns a first-UIP clause, backjumps and asserts the learned literal.
    ///
    /// Returns `false` when the conflict proves unsatisfiability (conflict at
    /// decision level zero).
    pub fn resolve_conflict_with(&mut self, conflict_lits: &[Lit]) -> bool {
        self.conflicts += 1;
        debug_assert!(conflict_lits
            .iter()
            .all(|l| self.value(*l) == LitValue::False));

        // The analysis below requires at least one conflict literal at the
        // current decision level. Theory conflicts may only involve literals
        // assigned earlier; backtrack to the deepest level they mention first.
        let max_level = conflict_lits
            .iter()
            .map(|l| self.level[l.var()])
            .max()
            .unwrap_or(0);
        if max_level == 0 || self.decision_level() == 0 {
            self.unsat = true;
            return false;
        }
        if max_level < self.decision_level() {
            self.backtrack(max_level);
        }

        let current_level = self.decision_level();
        let mut seen = vec![false; self.num_vars];
        let mut learnt: Vec<Lit> = Vec::new();
        let mut counter = 0usize;
        let mut trail_idx = self.trail.len();
        let mut current_reason: Vec<Lit> = conflict_lits.to_vec();
        let mut asserting_lit: Option<Lit> = None;

        loop {
            for &lit in &current_reason {
                if Some(lit) == asserting_lit.map(Lit::negated) {
                    continue;
                }
                let var = lit.var();
                if !seen[var] && self.level[var] > 0 {
                    seen[var] = true;
                    self.bump_activity(var);
                    if self.level[var] >= current_level {
                        counter += 1;
                    } else {
                        learnt.push(lit);
                    }
                }
            }
            // Walk the trail backwards to the next seen literal.
            loop {
                trail_idx -= 1;
                if seen[self.trail[trail_idx].var()] {
                    break;
                }
            }
            let p = self.trail[trail_idx];
            seen[p.var()] = false;
            counter -= 1;
            if counter == 0 {
                asserting_lit = Some(p);
                break;
            }
            let reason_idx = self.reason[p.var()]
                .expect("non-decision literal at the current level has a reason");
            self.bump_clause(reason_idx);
            current_reason = self.clauses[reason_idx]
                .lits
                .iter()
                .copied()
                .filter(|l| *l != p)
                .collect();
            asserting_lit = Some(p);
        }

        let asserting = asserting_lit.expect("conflict analysis produces an asserting literal");
        let asserted = asserting.negated();
        // Backjump level: highest level among the remaining learned literals.
        let backjump = learnt
            .iter()
            .map(|l| self.level[l.var()])
            .max()
            .unwrap_or(0);

        let mut clause = Vec::with_capacity(learnt.len() + 1);
        clause.push(asserted);
        clause.extend(learnt);

        // Glue (LBD) of the learned clause: distinct decision levels among
        // its literals, measured before the backjump unassigns them.
        let mut levels: Vec<usize> = clause.iter().map(|l| self.level[l.var()]).collect();
        levels.sort_unstable();
        levels.dedup();
        let lbd = levels.len() as u32;

        self.decay_activities();
        self.decay_clause_activities();
        self.backtrack(backjump);

        if clause.len() == 1 {
            self.enqueue(asserted, None);
        } else {
            // Watch the asserted literal and one literal from the backjump level.
            let mut second = 1;
            for (i, lit) in clause.iter().enumerate().skip(1) {
                if self.level[lit.var()] == backjump {
                    second = i;
                    break;
                }
            }
            clause.swap(1, second);
            let idx = self.attach_clause(clause, true, lbd);
            self.bump_clause(idx);
            self.enqueue(asserted, Some(idx));
        }
        true
    }

    /// Resolves a conflict identified by a stored clause index.
    ///
    /// Returns `false` when the instance is proved unsatisfiable.
    pub fn resolve_conflict(&mut self, clause_idx: usize) -> bool {
        self.bump_clause(clause_idx);
        let lits = self.clauses[clause_idx].lits.clone();
        self.resolve_conflict_with(&lits)
    }

    /// Adds a clause learned outside the SAT core (e.g. from a theory
    /// conflict). The clause may mention assigned literals at any level; the
    /// solver backtracks far enough to integrate it, then propagates.
    ///
    /// Returns `false` when the instance becomes unsatisfiable.
    pub fn add_learned_clause(&mut self, lits: Vec<Lit>) -> bool {
        if self.unsat {
            return false;
        }
        if lits.is_empty() {
            self.unsat = true;
            return false;
        }
        // If every literal is false the clause is conflicting: run conflict
        // analysis on it directly, which also learns and backjumps.
        let all_false = lits.iter().all(|l| self.value(*l) == LitValue::False);
        if all_false {
            return self.resolve_conflict_with(&lits);
        }
        // Otherwise integrate it as a regular clause: backtrack to level zero
        // is not required, but we must not attach watches to falsified
        // literals without care. The simplest correct integration is to
        // backtrack to level 0 and re-add (as a deletable learned clause).
        self.backtrack(0);
        self.add_clause_with(lits, true) != AddClauseResult::Unsat
    }

    /// Enqueues `lit` as a *theory-propagated* literal: the theory solver has
    /// derived `(a₁ ∧ … ∧ aₙ) → lit` from the currently-true antecedent
    /// literals `aᵢ`. The implication clause `lit ∨ ¬a₁ ∨ … ∨ ¬aₙ` is
    /// attached eagerly (watching `lit` and the deepest-level antecedent, the
    /// same discipline as learned clauses) so it both serves as the reason
    /// for conflict analysis and persists as a theory lemma.
    ///
    /// Returns `false` when `lit` is already false — the implication is then
    /// a theory conflict and the caller should raise it as one. Already-true
    /// literals are a no-op.
    ///
    /// # Panics
    ///
    /// Debug builds assert that `antecedents` is non-empty and all currently
    /// true.
    pub fn propagate_theory_literal(&mut self, lit: Lit, antecedents: &[Lit]) -> bool {
        debug_assert!(!antecedents.is_empty(), "implication needs antecedents");
        debug_assert!(antecedents.iter().all(|a| self.value(*a) == LitValue::True));
        match self.value(lit) {
            LitValue::True => true,
            LitValue::False => false,
            LitValue::Unassigned => {
                let mut clause = Vec::with_capacity(antecedents.len() + 1);
                clause.push(lit);
                clause.extend(antecedents.iter().map(|a| a.negated()));
                let mut deepest = 1;
                for (i, l) in clause.iter().enumerate().skip(2) {
                    if self.level[l.var()] > self.level[clause[deepest].var()] {
                        deepest = i;
                    }
                }
                clause.swap(1, deepest);
                // Persistent theory lemma: exempt from database reduction
                // (deleting it would force the theory to re-derive the
                // implication with fresh simplex work).
                let idx = self.attach_clause(clause, false, 0);
                self.enqueue(lit, Some(idx));
                true
            }
        }
    }

    /// Self-contained propositional solve loop (no theory). Used by unit tests
    /// and as a fallback; returns `true` when satisfiable.
    ///
    /// # Panics
    ///
    /// Panics if a governor was installed via `set_governor` and it trips;
    /// governed callers use the crate-internal `solve_governed` instead.
    pub fn solve(&mut self) -> bool {
        self.solve_governed()
            .expect("solve() is only used without an installed governor")
    }

    /// [`SatSolver::solve`] with cooperative interruption: the installed
    /// governor (if any) is polled after each conflict resolution, and a trip
    /// surfaces as `Err` with the latched reason. Without a governor this is
    /// exactly the ungoverned loop.
    pub(crate) fn solve_governed(&mut self) -> Result<bool, InterruptReason> {
        if self.unsat {
            return Ok(false);
        }
        loop {
            if let Some(conflict) = self.propagate() {
                if !self.resolve_conflict(conflict) {
                    return Ok(false);
                }
                if let Some(governor) = &self.governor {
                    if let Some(reason) = governor.check_conflicts(self.conflicts) {
                        return Err(reason);
                    }
                }
                if self.should_restart() {
                    self.restart();
                } else {
                    self.maybe_reduce_db();
                }
                continue;
            }
            match self.pick_branch_literal() {
                None => return Ok(true),
                Some(lit) => self.decide(lit),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(var: usize, positive: bool) -> Lit {
        Lit::new(var, positive)
    }

    #[test]
    fn literal_encoding_round_trip() {
        let l = lit(7, true);
        assert_eq!(l.var(), 7);
        assert!(l.is_positive());
        assert!(!l.negated().is_positive());
        assert_eq!(l.negated().negated(), l);
        assert_eq!(l.index(), 14);
        assert_eq!(l.negated().index(), 15);
    }

    #[test]
    fn empty_problem_is_sat() {
        let mut solver = SatSolver::new(3);
        assert!(solver.solve());
    }

    #[test]
    fn unit_clauses_propagate() {
        let mut solver = SatSolver::new(2);
        solver.add_clause(vec![lit(0, true)]);
        solver.add_clause(vec![lit(0, false), lit(1, true)]);
        assert!(solver.solve());
        assert_eq!(solver.var_value(0), Some(true));
        assert_eq!(solver.var_value(1), Some(true));
    }

    #[test]
    fn contradictory_units_are_unsat() {
        let mut solver = SatSolver::new(1);
        solver.add_clause(vec![lit(0, true)]);
        let result = solver.add_clause(vec![lit(0, false)]);
        assert_eq!(result, AddClauseResult::Unsat);
        assert!(!solver.solve());
    }

    #[test]
    fn simple_unsat_instance() {
        // All four clauses over two variables: unsatisfiable.
        let mut solver = SatSolver::new(2);
        solver.add_clause(vec![lit(0, true), lit(1, true)]);
        solver.add_clause(vec![lit(0, true), lit(1, false)]);
        solver.add_clause(vec![lit(0, false), lit(1, true)]);
        solver.add_clause(vec![lit(0, false), lit(1, false)]);
        assert!(!solver.solve());
    }

    #[test]
    fn satisfiable_three_sat_instance() {
        let mut solver = SatSolver::new(4);
        solver.add_clause(vec![lit(0, true), lit(1, true), lit(2, false)]);
        solver.add_clause(vec![lit(1, false), lit(2, true), lit(3, true)]);
        solver.add_clause(vec![lit(0, false), lit(3, false), lit(2, true)]);
        solver.add_clause(vec![lit(0, false), lit(1, false), lit(3, true)]);
        assert!(solver.solve());
        // Verify the model satisfies every clause.
        for clause in &solver.clauses {
            assert!(clause
                .lits
                .iter()
                .any(|l| solver.value(*l) == LitValue::True));
        }
    }

    #[test]
    fn pigeonhole_three_pigeons_two_holes_is_unsat() {
        // Variables p_{i,j} = pigeon i in hole j, i in 0..3, j in 0..2.
        let var = |i: usize, j: usize| i * 2 + j;
        let mut solver = SatSolver::new(6);
        // Every pigeon is in some hole.
        for i in 0..3 {
            solver.add_clause(vec![lit(var(i, 0), true), lit(var(i, 1), true)]);
        }
        // No two pigeons share a hole.
        for j in 0..2 {
            for i1 in 0..3 {
                for i2 in (i1 + 1)..3 {
                    solver.add_clause(vec![lit(var(i1, j), false), lit(var(i2, j), false)]);
                }
            }
        }
        assert!(!solver.solve());
    }

    #[test]
    fn tautological_clause_is_ignored() {
        let mut solver = SatSolver::new(1);
        assert_eq!(
            solver.add_clause(vec![lit(0, true), lit(0, false)]),
            AddClauseResult::Ok
        );
        assert!(solver.solve());
    }

    #[test]
    fn duplicate_literals_are_merged() {
        let mut solver = SatSolver::new(2);
        solver.add_clause(vec![lit(0, true), lit(0, true), lit(1, false)]);
        assert!(solver.solve());
    }

    #[test]
    fn externally_learned_clause_is_respected() {
        let mut solver = SatSolver::new(2);
        solver.add_clause(vec![lit(0, true), lit(1, true)]);
        assert!(solver.solve());
        // Forbid the found model repeatedly; the instance stays satisfiable
        // until all three satisfying assignments are excluded.
        let mut excluded = 0;
        loop {
            let model: Vec<Lit> = (0..2)
                .map(|v| Lit::new(v, solver.var_value(v).unwrap_or(false)))
                .collect();
            let blocking: Vec<Lit> = model.iter().map(|l| l.negated()).collect();
            if !solver.add_learned_clause(blocking) {
                break;
            }
            if !solver.solve() {
                break;
            }
            excluded += 1;
            assert!(excluded <= 3, "more models than possible");
        }
        assert_eq!(excluded, 2, "three satisfying assignments expected");
    }

    #[test]
    fn statistics_are_tracked() {
        let mut solver = SatSolver::new(3);
        solver.add_clause(vec![lit(0, true), lit(1, true), lit(2, true)]);
        solver.add_clause(vec![lit(0, false), lit(1, false)]);
        assert!(solver.solve());
        assert!(solver.decisions() > 0);
        assert!(solver.propagations() > 0);
    }

    #[test]
    fn luby_sequence_matches_reference_prefix() {
        let expected = [1u64, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8, 1];
        let got: Vec<u64> = (0..expected.len() as u64).map(luby).collect();
        assert_eq!(got, expected);
    }

    /// Pigeonhole with an aggressive restart schedule and a zero clause cap:
    /// the verdict must survive any number of restarts and reductions.
    fn pigeonhole(pigeons: usize, holes: usize) -> SatSolver {
        let var = |i: usize, j: usize| i * holes + j;
        let mut solver = SatSolver::new(pigeons * holes);
        for i in 0..pigeons {
            solver.add_clause((0..holes).map(|j| lit(var(i, j), true)).collect());
        }
        for j in 0..holes {
            for i1 in 0..pigeons {
                for i2 in (i1 + 1)..pigeons {
                    solver.add_clause(vec![lit(var(i1, j), false), lit(var(i2, j), false)]);
                }
            }
        }
        solver
    }

    #[test]
    fn restarts_and_reduction_preserve_unsat_verdict() {
        let mut solver = pigeonhole(6, 5);
        solver.enable_scale_out(true, true);
        solver.set_restart_unit(1);
        solver.set_learned_cap(0);
        assert!(!solver.solve());
        assert!(solver.restarts() > 0, "tiny unit must force restarts");
        assert!(
            solver.clauses_deleted() > 0,
            "zero cap must force deletions"
        );
    }

    #[test]
    fn restarts_and_reduction_preserve_sat_verdict() {
        // Same 3-SAT instance as `satisfiable_three_sat_instance`, but under
        // the most aggressive scale-out schedule.
        let mut solver = SatSolver::new(4);
        solver.add_clause(vec![lit(0, true), lit(1, true), lit(2, false)]);
        solver.add_clause(vec![lit(1, false), lit(2, true), lit(3, true)]);
        solver.add_clause(vec![lit(0, false), lit(3, false), lit(2, true)]);
        solver.add_clause(vec![lit(0, false), lit(1, false), lit(3, true)]);
        solver.enable_scale_out(true, true);
        solver.set_restart_unit(1);
        solver.set_learned_cap(0);
        assert!(solver.solve());
        for clause in &solver.clauses {
            assert!(clause
                .lits
                .iter()
                .any(|l| solver.value(*l) == LitValue::True));
        }
    }

    #[test]
    fn scale_out_disabled_means_no_restarts_or_deletions() {
        let mut solver = pigeonhole(5, 4);
        assert!(!solver.solve());
        assert_eq!(solver.restarts(), 0);
        assert_eq!(solver.clauses_deleted(), 0);
    }

    #[test]
    fn reduction_exempts_problem_clauses() {
        let mut solver = pigeonhole(6, 5);
        let problem_clauses = solver.num_clauses();
        solver.enable_scale_out(true, true);
        solver.set_restart_unit(1);
        solver.set_learned_cap(0);
        assert!(!solver.solve());
        assert!(
            solver.num_clauses() >= problem_clauses,
            "problem clauses must never be deleted"
        );
    }

    #[test]
    fn backtrack_restores_unassigned_state() {
        let mut solver = SatSolver::new(2);
        solver.add_clause(vec![lit(0, true), lit(1, true)]);
        solver.decide(lit(0, false));
        assert!(solver.propagate().is_none());
        assert_eq!(solver.var_value(1), Some(true));
        solver.backtrack(0);
        assert_eq!(solver.var_value(0), None);
        assert_eq!(solver.var_value(1), None);
    }
}
