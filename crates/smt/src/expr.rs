use std::collections::BTreeMap;
use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

use crate::{Constraint, RelOp};

/// Identifier of a real-valued SMT variable.
///
/// Variables are allocated by a [`VarPool`]; the numeric id indexes the
/// model produced by the solver.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct VarId(pub(crate) u32);

impl VarId {
    /// Raw index of the variable (dense, starting at zero).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Allocator and name registry for real-valued variables.
///
/// # Example
///
/// ```
/// use cps_smt::VarPool;
///
/// let mut pool = VarPool::new();
/// let a = pool.fresh("attack_0");
/// assert_eq!(pool.name(a), "attack_0");
/// assert_eq!(pool.len(), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct VarPool {
    names: Vec<String>,
}

impl VarPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates a fresh variable with the given (purely informational) name.
    pub fn fresh(&mut self, name: impl Into<String>) -> VarId {
        let id = VarId(self.names.len() as u32);
        self.names.push(name.into());
        id
    }

    /// Allocates `count` fresh variables named `prefix_0 .. prefix_{count-1}`.
    pub fn fresh_block(&mut self, prefix: &str, count: usize) -> Vec<VarId> {
        (0..count)
            .map(|i| self.fresh(format!("{prefix}_{i}")))
            .collect()
    }

    /// Number of variables allocated so far.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Returns `true` when no variable has been allocated.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Name of a variable.
    ///
    /// # Panics
    ///
    /// Panics if the variable does not belong to this pool.
    pub fn name(&self, var: VarId) -> &str {
        &self.names[var.index()]
    }

    /// Iterator over all allocated variables.
    pub fn iter(&self) -> impl Iterator<Item = VarId> + '_ {
        (0..self.names.len()).map(|i| VarId(i as u32))
    }
}

/// A linear expression `Σ cᵢ·xᵢ + constant` over real variables.
///
/// `LinExpr` supports the usual arithmetic operators and is the building
/// block of [`Constraint`]s. Coefficients with magnitude below `1e-12` are
/// dropped on construction to keep expressions canonical.
///
/// # Example
///
/// ```
/// use cps_smt::{LinExpr, VarPool};
///
/// let mut pool = VarPool::new();
/// let x = pool.fresh("x");
/// let y = pool.fresh("y");
/// let e = LinExpr::var(x) * 2.0 + LinExpr::var(y) - LinExpr::constant(1.0);
/// assert_eq!(e.coefficient(x), 2.0);
/// assert_eq!(e.constant_term(), -1.0);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct LinExpr {
    /// Map from variable to coefficient; zero coefficients are never stored.
    coeffs: BTreeMap<VarId, f64>,
    constant: f64,
}

/// Coefficients below this magnitude are treated as zero.
const COEFF_EPS: f64 = 1e-12;

impl LinExpr {
    /// The zero expression.
    pub fn zero() -> Self {
        Self::default()
    }

    /// A constant expression.
    pub fn constant(value: f64) -> Self {
        Self {
            coeffs: BTreeMap::new(),
            constant: value,
        }
    }

    /// The expression consisting of a single variable with coefficient one.
    pub fn var(var: VarId) -> Self {
        Self::term(var, 1.0)
    }

    /// The expression `coeff · var`.
    pub fn term(var: VarId, coeff: f64) -> Self {
        let mut coeffs = BTreeMap::new();
        if coeff.abs() > COEFF_EPS {
            coeffs.insert(var, coeff);
        }
        Self {
            coeffs,
            constant: 0.0,
        }
    }

    /// Builds an expression from `(variable, coefficient)` pairs plus a constant.
    pub fn from_terms(terms: impl IntoIterator<Item = (VarId, f64)>, constant: f64) -> Self {
        let mut expr = LinExpr::constant(constant);
        for (var, coeff) in terms {
            expr.add_term(var, coeff);
        }
        expr
    }

    /// Adds `coeff · var` to the expression in place.
    pub fn add_term(&mut self, var: VarId, coeff: f64) {
        if coeff.abs() <= COEFF_EPS {
            return;
        }
        let entry = self.coeffs.entry(var).or_insert(0.0);
        *entry += coeff;
        if entry.abs() <= COEFF_EPS {
            self.coeffs.remove(&var);
        }
    }

    /// Adds a constant to the expression in place.
    pub fn add_constant(&mut self, value: f64) {
        self.constant += value;
    }

    /// Coefficient of `var` (zero if absent).
    pub fn coefficient(&self, var: VarId) -> f64 {
        self.coeffs.get(&var).copied().unwrap_or(0.0)
    }

    /// The constant term.
    pub fn constant_term(&self) -> f64 {
        self.constant
    }

    /// Iterator over `(variable, coefficient)` pairs with non-zero coefficient.
    pub fn terms(&self) -> impl Iterator<Item = (VarId, f64)> + '_ {
        self.coeffs.iter().map(|(v, c)| (*v, *c))
    }

    /// Number of variables with non-zero coefficient.
    pub fn num_terms(&self) -> usize {
        self.coeffs.len()
    }

    /// Returns `true` when the expression contains no variables.
    pub fn is_constant(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// Returns `true` when every coefficient and the constant term are
    /// finite. NaN and ±inf can enter through arithmetic on caller-supplied
    /// data (note that NaN slips past the tiny-coefficient drop, whose
    /// comparison it fails); the solver uses this check to reject non-finite
    /// assertions at its API boundary instead of feeding them to the tableau.
    pub fn is_finite(&self) -> bool {
        self.constant.is_finite() && self.coeffs.values().all(|c| c.is_finite())
    }

    /// Evaluates the expression under the given dense assignment
    /// (`assignment[i]` is the value of variable `i`).
    ///
    /// # Panics
    ///
    /// Panics if the assignment is shorter than the largest variable index
    /// used in the expression.
    pub fn evaluate(&self, assignment: &[f64]) -> f64 {
        self.constant
            + self
                .coeffs
                .iter()
                .map(|(v, c)| c * assignment[v.index()])
                .sum::<f64>()
    }

    /// Multiplies the expression by a scalar.
    pub fn scale(&self, factor: f64) -> LinExpr {
        let mut out = LinExpr::constant(self.constant * factor);
        for (v, c) in &self.coeffs {
            out.add_term(*v, c * factor);
        }
        out
    }

    /// Builds the constraint `self <= bound`.
    pub fn le(self, bound: f64) -> Constraint {
        Constraint::new(self, RelOp::Le, bound)
    }

    /// Builds the constraint `self < bound`.
    pub fn lt(self, bound: f64) -> Constraint {
        Constraint::new(self, RelOp::Lt, bound)
    }

    /// Builds the constraint `self >= bound`.
    pub fn ge(self, bound: f64) -> Constraint {
        Constraint::new(self, RelOp::Ge, bound)
    }

    /// Builds the constraint `self > bound`.
    pub fn gt(self, bound: f64) -> Constraint {
        Constraint::new(self, RelOp::Gt, bound)
    }

    /// Builds the constraint `self = bound`.
    pub fn eq_to(self, bound: f64) -> Constraint {
        Constraint::new(self, RelOp::Eq, bound)
    }
}

impl fmt::Display for LinExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (v, c) in &self.coeffs {
            if first {
                write!(f, "{c:.4}*{v}")?;
                first = false;
            } else if *c >= 0.0 {
                write!(f, " + {c:.4}*{v}")?;
            } else {
                write!(f, " - {:.4}*{v}", -c)?;
            }
        }
        if first {
            write!(f, "{:.4}", self.constant)?;
        } else if self.constant != 0.0 {
            if self.constant >= 0.0 {
                write!(f, " + {:.4}", self.constant)?;
            } else {
                write!(f, " - {:.4}", -self.constant)?;
            }
        }
        Ok(())
    }
}

impl Add for LinExpr {
    type Output = LinExpr;

    fn add(self, rhs: LinExpr) -> LinExpr {
        let mut out = self;
        out.constant += rhs.constant;
        for (v, c) in rhs.coeffs {
            out.add_term(v, c);
        }
        out
    }
}

impl Sub for LinExpr {
    type Output = LinExpr;

    fn sub(self, rhs: LinExpr) -> LinExpr {
        self + rhs.neg()
    }
}

impl Mul<f64> for LinExpr {
    type Output = LinExpr;

    fn mul(self, rhs: f64) -> LinExpr {
        self.scale(rhs)
    }
}

impl Neg for LinExpr {
    type Output = LinExpr;

    fn neg(self) -> LinExpr {
        self.scale(-1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn var_pool_allocates_sequentially() {
        let mut pool = VarPool::new();
        let a = pool.fresh("a");
        let b = pool.fresh("b");
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        assert_eq!(pool.name(b), "b");
        assert_eq!(pool.len(), 2);
        assert!(!pool.is_empty());
        assert_eq!(pool.iter().count(), 2);
    }

    #[test]
    fn fresh_block_names_are_indexed() {
        let mut pool = VarPool::new();
        let block = pool.fresh_block("a", 3);
        assert_eq!(block.len(), 3);
        assert_eq!(pool.name(block[2]), "a_2");
    }

    #[test]
    fn expression_arithmetic_and_canonical_form() {
        let mut pool = VarPool::new();
        let x = pool.fresh("x");
        let y = pool.fresh("y");
        let e = LinExpr::var(x) * 2.0 + LinExpr::term(y, -1.0) + LinExpr::constant(3.0);
        assert_eq!(e.coefficient(x), 2.0);
        assert_eq!(e.coefficient(y), -1.0);
        assert_eq!(e.constant_term(), 3.0);
        assert_eq!(e.num_terms(), 2);

        // Cancelling a coefficient removes the term entirely.
        let cancelled = e.clone() + LinExpr::term(y, 1.0);
        assert_eq!(cancelled.coefficient(y), 0.0);
        assert_eq!(cancelled.num_terms(), 1);
    }

    #[test]
    fn evaluate_under_assignment() {
        let mut pool = VarPool::new();
        let x = pool.fresh("x");
        let y = pool.fresh("y");
        let e = LinExpr::var(x) * 3.0 - LinExpr::var(y) + LinExpr::constant(0.5);
        assert!((e.evaluate(&[2.0, 1.0]) - 5.5).abs() < 1e-12);
    }

    #[test]
    fn subtraction_and_negation() {
        let mut pool = VarPool::new();
        let x = pool.fresh("x");
        let e = LinExpr::var(x) - LinExpr::var(x);
        assert!(e.is_constant());
        let n = -LinExpr::from_terms([(x, 2.0)], 1.0);
        assert_eq!(n.coefficient(x), -2.0);
        assert_eq!(n.constant_term(), -1.0);
    }

    #[test]
    fn tiny_coefficients_are_dropped() {
        let mut pool = VarPool::new();
        let x = pool.fresh("x");
        let e = LinExpr::term(x, 1e-15);
        assert!(e.is_constant());
    }

    #[test]
    fn display_is_humane() {
        let mut pool = VarPool::new();
        let x = pool.fresh("x");
        let e = LinExpr::var(x) * 2.0 + LinExpr::constant(-1.0);
        let s = format!("{e}");
        assert!(s.contains("2.0000*v0"));
        assert!(s.contains("- 1.0000"));
        assert_eq!(format!("{}", LinExpr::constant(4.0)), "4.0000");
    }
}
