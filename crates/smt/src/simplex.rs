//! General simplex theory solver for conjunctions of linear constraints.
//!
//! This module implements the *general simplex* algorithm of Dutertre and
//! de Moura ("A Fast Linear-Arithmetic Solver for DPLL(T)", CAV 2006) in the
//! non-incremental form used by the lazy DPLL(T) loop in
//! [`SmtSolver`](crate::SmtSolver): a fresh tableau is built per theory check
//! from the currently asserted atoms. Strict inequalities are handled with
//! symbolic infinitesimals ([`Delta`]), and infeasibility produces an
//! *explanation* — the subset of asserted constraints participating in the
//! conflicting bound configuration — which becomes a learned clause.

use std::cmp::Ordering;
use std::fmt;

use crate::{Constraint, LinExpr, RelOp};

/// Comparison tolerance on the real part of a [`Delta`] value.
const REAL_EPS: f64 = 1e-11;

/// A value of the form `real + delta·ε` where `ε` is an arbitrarily small
/// positive infinitesimal, used to represent strict bounds exactly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Delta {
    /// Real part.
    pub real: f64,
    /// Coefficient of the infinitesimal ε.
    pub delta: f64,
}

impl Delta {
    /// A purely real value.
    pub fn real(value: f64) -> Self {
        Self {
            real: value,
            delta: 0.0,
        }
    }

    /// A value with an explicit infinitesimal component.
    pub fn with_delta(real: f64, delta: f64) -> Self {
        Self { real, delta }
    }

    /// Addition.
    pub fn add(self, other: Delta) -> Delta {
        Delta {
            real: self.real + other.real,
            delta: self.delta + other.delta,
        }
    }

    /// Subtraction.
    pub fn sub(self, other: Delta) -> Delta {
        Delta {
            real: self.real - other.real,
            delta: self.delta - other.delta,
        }
    }

    /// Multiplication by a real scalar.
    pub fn scale(self, factor: f64) -> Delta {
        Delta {
            real: self.real * factor,
            delta: self.delta * factor,
        }
    }

    /// Lexicographic comparison (real part first, then infinitesimal part),
    /// with a small tolerance on the real part.
    pub fn cmp_delta(&self, other: &Delta) -> Ordering {
        if (self.real - other.real).abs() <= REAL_EPS {
            if (self.delta - other.delta).abs() <= REAL_EPS {
                Ordering::Equal
            } else if self.delta < other.delta {
                Ordering::Less
            } else {
                Ordering::Greater
            }
        } else if self.real < other.real {
            Ordering::Less
        } else {
            Ordering::Greater
        }
    }

    /// `self < other` in the δ-ordering.
    pub fn lt(&self, other: &Delta) -> bool {
        self.cmp_delta(other) == Ordering::Less
    }

    /// `self > other` in the δ-ordering.
    pub fn gt(&self, other: &Delta) -> bool {
        self.cmp_delta(other) == Ordering::Greater
    }

    /// Concretises the value by substituting `epsilon` for ε.
    pub fn concretize(&self, epsilon: f64) -> f64 {
        self.real + self.delta * epsilon
    }
}

impl fmt::Display for Delta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.delta == 0.0 {
            write!(f, "{}", self.real)
        } else {
            write!(f, "{} + {}ε", self.real, self.delta)
        }
    }
}

/// Result of a feasibility check.
#[derive(Debug, Clone, PartialEq)]
pub enum SimplexResult {
    /// The conjunction is satisfiable; the payload is a satisfying assignment
    /// for the *original* problem variables (concretised to `f64`).
    Feasible(Vec<f64>),
    /// The conjunction is unsatisfiable; the payload lists the tags of the
    /// constraints forming the conflicting configuration.
    Infeasible(Vec<usize>),
}

impl SimplexResult {
    /// Returns `true` for [`SimplexResult::Feasible`].
    pub fn is_feasible(&self) -> bool {
        matches!(self, SimplexResult::Feasible(_))
    }
}

/// Outcome of an optimisation run on a feasible tableau.
#[derive(Debug, Clone, PartialEq)]
pub enum ObjectiveOutcome {
    /// Optimum attained; payload is `(optimal value, assignment)`.
    Optimal(f64, Vec<f64>),
    /// The objective is unbounded in the direction of optimisation.
    Unbounded,
}

#[derive(Debug, Clone, Copy)]
struct Bound {
    value: Delta,
    /// Tag of the constraint that installed this bound.
    reason: usize,
}

/// Feasibility and optimisation engine for conjunctions of linear constraints.
///
/// # Example
///
/// ```
/// use cps_smt::simplex::Simplex;
/// use cps_smt::{LinExpr, VarPool};
///
/// let mut pool = VarPool::new();
/// let x = pool.fresh("x");
/// let y = pool.fresh("y");
/// let constraints = vec![
///     ((LinExpr::var(x) + LinExpr::var(y)).le(2.0), 0),
///     (LinExpr::var(x).ge(1.5), 1),
///     (LinExpr::var(y).ge(1.0), 2),
/// ];
/// let result = Simplex::check(pool.len(), &constraints);
/// assert!(!result.is_feasible()); // 1.5 + 1.0 > 2
/// ```
#[derive(Debug)]
pub struct Simplex {
    /// Total number of variables (problem variables first, then slacks).
    num_vars: usize,
    /// Number of original problem variables.
    num_problem_vars: usize,
    /// `rows[r]` is the tableau row of the basic variable `row_owner[r]`,
    /// expressing it as a linear combination of all variables (only nonbasic
    /// entries are meaningful).
    rows: Vec<Vec<f64>>,
    row_owner: Vec<usize>,
    /// `basic_row[v] = Some(r)` iff variable `v` is basic and owns row `r`.
    basic_row: Vec<Option<usize>>,
    lower: Vec<Option<Bound>>,
    upper: Vec<Option<Bound>>,
    assignment: Vec<Delta>,
}

impl Simplex {
    /// Checks satisfiability of the conjunction of `constraints` over
    /// `num_problem_vars` problem variables. Each constraint carries an opaque
    /// `tag` that is echoed back in infeasibility explanations.
    pub fn check(num_problem_vars: usize, constraints: &[(Constraint, usize)]) -> SimplexResult {
        let mut simplex = Simplex::build(num_problem_vars, constraints);
        match simplex.assert_all(constraints) {
            Err(explanation) => SimplexResult::Infeasible(explanation),
            Ok(()) => match simplex.solve() {
                Err(explanation) => SimplexResult::Infeasible(explanation),
                Ok(()) => SimplexResult::Feasible(simplex.concrete_assignment()),
            },
        }
    }

    /// Checks satisfiability and, if feasible, maximises `objective` over the
    /// constraint set. Minimisation can be obtained by negating the objective.
    pub fn check_and_maximize(
        num_problem_vars: usize,
        constraints: &[(Constraint, usize)],
        objective: &LinExpr,
    ) -> Result<ObjectiveOutcome, Vec<usize>> {
        let mut simplex = Simplex::build(num_problem_vars, constraints);
        simplex.assert_all(constraints)?;
        simplex.solve()?;
        Ok(simplex.maximize(objective))
    }

    fn build(num_problem_vars: usize, constraints: &[(Constraint, usize)]) -> Simplex {
        // One slack variable per constraint whose expression is not a single
        // problem variable; multi-occurrences of the same expression could be
        // shared but the extra slacks are harmless for correctness.
        let mut num_vars = num_problem_vars;
        let mut rows = Vec::new();
        let mut row_owner = Vec::new();
        for (constraint, _) in constraints {
            if Self::single_var(constraint.expr()).is_none() {
                let slack = num_vars;
                num_vars += 1;
                row_owner.push(slack);
                rows.push(Vec::new());
            }
        }
        // Materialise dense rows now that the total variable count is known.
        let mut row_idx = 0;
        for (constraint, _) in constraints {
            if Self::single_var(constraint.expr()).is_none() {
                let mut row = vec![0.0; num_vars];
                for (var, coeff) in constraint.expr().terms() {
                    row[var.index()] = coeff;
                }
                rows[row_idx] = row;
                row_idx += 1;
            }
        }
        let mut basic_row = vec![None; num_vars];
        for (r, owner) in row_owner.iter().enumerate() {
            basic_row[*owner] = Some(r);
        }
        Simplex {
            num_vars,
            num_problem_vars,
            rows,
            row_owner,
            basic_row,
            lower: vec![None; num_vars],
            upper: vec![None; num_vars],
            assignment: vec![Delta::real(0.0); num_vars],
        }
    }

    /// If the expression is exactly `c · x` for a single variable, returns
    /// `(x, c)`.
    fn single_var(expr: &LinExpr) -> Option<(usize, f64)> {
        if expr.num_terms() == 1 {
            let (var, coeff) = expr.terms().next().expect("one term present");
            Some((var.index(), coeff))
        } else {
            None
        }
    }

    fn assert_all(&mut self, constraints: &[(Constraint, usize)]) -> Result<(), Vec<usize>> {
        let mut slack_idx = 0;
        let mut slack_of_constraint = Vec::with_capacity(constraints.len());
        for (constraint, _) in constraints {
            if Self::single_var(constraint.expr()).is_none() {
                slack_of_constraint.push(Some(self.row_owner[slack_idx]));
                slack_idx += 1;
            } else {
                slack_of_constraint.push(None);
            }
        }
        // Initialise slack assignments from the (all-zero) problem variables.
        for r in 0..self.rows.len() {
            let owner = self.row_owner[r];
            self.assignment[owner] = self.row_value(r);
        }
        for (i, (constraint, tag)) in constraints.iter().enumerate() {
            let (var, scale) = match slack_of_constraint[i] {
                Some(slack) => (slack, 1.0),
                None => Self::single_var(constraint.expr()).expect("single variable constraint"),
            };
            // `scale · var ⋈ bound` — dividing by a negative coefficient flips
            // the comparison direction.
            let bound = constraint.bound() / scale;
            let flip = scale < 0.0;
            let op = constraint.op();
            let (is_upper, value) = match (op, flip) {
                (RelOp::Le, false) | (RelOp::Ge, true) => (true, Delta::real(bound)),
                (RelOp::Lt, false) | (RelOp::Gt, true) => (true, Delta::with_delta(bound, -1.0)),
                (RelOp::Ge, false) | (RelOp::Le, true) => (false, Delta::real(bound)),
                (RelOp::Gt, false) | (RelOp::Lt, true) => (false, Delta::with_delta(bound, 1.0)),
                (RelOp::Eq, _) => {
                    self.assert_upper(var, Delta::real(bound), *tag)?;
                    self.assert_lower(var, Delta::real(bound), *tag)?;
                    continue;
                }
            };
            if is_upper {
                self.assert_upper(var, value, *tag)?;
            } else {
                self.assert_lower(var, value, *tag)?;
            }
        }
        Ok(())
    }

    fn row_value(&self, row: usize) -> Delta {
        let mut value = Delta::real(0.0);
        for (v, coeff) in self.rows[row].iter().enumerate() {
            if *coeff != 0.0 && self.basic_row[v].is_none() {
                value = value.add(self.assignment[v].scale(*coeff));
            }
        }
        value
    }

    fn assert_upper(&mut self, var: usize, value: Delta, reason: usize) -> Result<(), Vec<usize>> {
        if let Some(lower) = self.lower[var] {
            if value.lt(&lower.value) {
                return Err(vec![reason, lower.reason]);
            }
        }
        let tighter = match self.upper[var] {
            Some(existing) => value.lt(&existing.value),
            None => true,
        };
        if tighter {
            self.upper[var] = Some(Bound { value, reason });
            if self.basic_row[var].is_none() && self.assignment[var].gt(&value) {
                self.update_nonbasic(var, value);
            }
        }
        Ok(())
    }

    fn assert_lower(&mut self, var: usize, value: Delta, reason: usize) -> Result<(), Vec<usize>> {
        if let Some(upper) = self.upper[var] {
            if value.gt(&upper.value) {
                return Err(vec![reason, upper.reason]);
            }
        }
        let tighter = match self.lower[var] {
            Some(existing) => value.gt(&existing.value),
            None => true,
        };
        if tighter {
            self.lower[var] = Some(Bound { value, reason });
            if self.basic_row[var].is_none() && self.assignment[var].lt(&value) {
                self.update_nonbasic(var, value);
            }
        }
        Ok(())
    }

    /// Sets a nonbasic variable to `value` and propagates the change to the
    /// basic variables.
    fn update_nonbasic(&mut self, var: usize, value: Delta) {
        let diff = value.sub(self.assignment[var]);
        for r in 0..self.rows.len() {
            let coeff = self.rows[r][var];
            if coeff != 0.0 {
                let owner = self.row_owner[r];
                self.assignment[owner] = self.assignment[owner].add(diff.scale(coeff));
            }
        }
        self.assignment[var] = value;
    }

    /// Main simplex loop: repair basic variables that violate their bounds.
    ///
    /// Pivot selection uses a largest-violation heuristic for speed and falls
    /// back to Bland's rule (smallest index) after a fixed number of pivots to
    /// guarantee termination despite degeneracy.
    fn solve(&mut self) -> Result<(), Vec<usize>> {
        let bland_switch = 50 * (self.num_vars + 1);
        let mut pivots = 0usize;
        loop {
            let use_bland = pivots >= bland_switch;
            pivots += 1;
            let mut violating: Option<(usize, bool, f64)> = None;
            for var in 0..self.num_vars {
                if self.basic_row[var].is_none() {
                    continue;
                }
                let mut candidate: Option<(bool, f64)> = None;
                if let Some(lower) = self.lower[var] {
                    if self.assignment[var].lt(&lower.value) {
                        candidate = Some((true, lower.value.sub(self.assignment[var]).real.abs()));
                    }
                }
                if candidate.is_none() {
                    if let Some(upper) = self.upper[var] {
                        if self.assignment[var].gt(&upper.value) {
                            candidate =
                                Some((false, self.assignment[var].sub(upper.value).real.abs()));
                        }
                    }
                }
                if let Some((increase, magnitude)) = candidate {
                    if use_bland {
                        violating = Some((var, increase, magnitude));
                        break;
                    }
                    let better = match violating {
                        Some((_, _, best)) => magnitude > best,
                        None => true,
                    };
                    if better {
                        violating = Some((var, increase, magnitude));
                    }
                }
            }
            let Some((basic, needs_increase, _)) = violating else {
                return Ok(());
            };
            let row = self.basic_row[basic].expect("violating variable is basic");
            let target = if needs_increase {
                self.lower[basic].expect("lower bound violated").value
            } else {
                self.upper[basic].expect("upper bound violated").value
            };

            // Find a nonbasic variable that can absorb the change (Bland's rule).
            let mut pivot: Option<usize> = None;
            for var in 0..self.num_vars {
                if self.basic_row[var].is_some() {
                    continue;
                }
                let coeff = self.rows[row][var];
                if coeff == 0.0 {
                    continue;
                }
                let can_help = if needs_increase {
                    (coeff > 0.0 && self.can_increase(var))
                        || (coeff < 0.0 && self.can_decrease(var))
                } else {
                    (coeff > 0.0 && self.can_decrease(var))
                        || (coeff < 0.0 && self.can_increase(var))
                };
                if can_help {
                    pivot = Some(var);
                    break;
                }
            }
            let Some(entering) = pivot else {
                // No variable can move: the row is a certificate of infeasibility.
                let mut explanation = Vec::new();
                if needs_increase {
                    explanation.push(self.lower[basic].expect("bound present").reason);
                } else {
                    explanation.push(self.upper[basic].expect("bound present").reason);
                }
                for var in 0..self.num_vars {
                    if self.basic_row[var].is_some() {
                        continue;
                    }
                    let coeff = self.rows[row][var];
                    if coeff == 0.0 {
                        continue;
                    }
                    let blocking = if needs_increase {
                        if coeff > 0.0 {
                            self.upper[var]
                        } else {
                            self.lower[var]
                        }
                    } else if coeff > 0.0 {
                        self.lower[var]
                    } else {
                        self.upper[var]
                    };
                    if let Some(bound) = blocking {
                        explanation.push(bound.reason);
                    }
                }
                explanation.sort_unstable();
                explanation.dedup();
                return Err(explanation);
            };
            self.pivot_and_update(basic, entering, target);
        }
    }

    fn can_increase(&self, var: usize) -> bool {
        match self.upper[var] {
            Some(bound) => self.assignment[var].lt(&bound.value),
            None => true,
        }
    }

    fn can_decrease(&self, var: usize) -> bool {
        match self.lower[var] {
            Some(bound) => self.assignment[var].gt(&bound.value),
            None => true,
        }
    }

    /// Pivots `basic` (leaving) with `entering` (nonbasic) and sets the
    /// leaving variable's assignment to `target` (the bound it violated).
    fn pivot_and_update(&mut self, basic: usize, entering: usize, target: Delta) {
        let row = self.basic_row[basic].expect("leaving variable is basic");
        let coeff = self.rows[row][entering];
        debug_assert!(coeff != 0.0, "pivot coefficient must be non-zero");

        // Assignment update (using the *old* tableau rows): move the entering
        // variable by θ so that the leaving variable lands exactly on `target`,
        // and propagate the move to every other basic variable.
        let theta = target.sub(self.assignment[basic]).scale(1.0 / coeff);
        self.assignment[basic] = target;
        self.assignment[entering] = self.assignment[entering].add(theta);
        for r in 0..self.rows.len() {
            if r == row {
                continue;
            }
            let c = self.rows[r][entering];
            if c != 0.0 {
                let owner = self.row_owner[r];
                self.assignment[owner] = self.assignment[owner].add(theta.scale(c));
            }
        }

        // Rewrite the pivot row to express `entering` in terms of the others:
        // basic = Σ a_j x_j  ⇒  entering = (basic − Σ_{j≠entering} a_j x_j) / a_entering.
        let mut new_row = vec![0.0; self.num_vars];
        for (v, value) in self.rows[row].iter().enumerate() {
            if v == entering {
                continue;
            }
            new_row[v] = -value / coeff;
        }
        new_row[basic] = 1.0 / coeff;
        self.rows[row] = new_row;
        self.row_owner[row] = entering;
        self.basic_row[entering] = Some(row);
        self.basic_row[basic] = None;

        // Substitute the new definition of `entering` into the other rows.
        for r in 0..self.rows.len() {
            if r == row {
                continue;
            }
            let factor = self.rows[r][entering];
            if factor == 0.0 {
                continue;
            }
            let pivot_row = self.rows[row].clone();
            let current = &mut self.rows[r];
            current[entering] = 0.0;
            for (v, value) in pivot_row.iter().enumerate() {
                if *value != 0.0 {
                    current[v] += factor * value;
                }
            }
        }
    }

    /// Maximises `objective` starting from the current feasible assignment.
    fn maximize(&mut self, objective: &LinExpr) -> ObjectiveOutcome {
        // Guard against cycling with a generous pivot budget; Bland's rule is
        // not applied to the optimisation phase, so we stop at the budget and
        // report the best point found (still feasible, possibly sub-optimal).
        let max_pivots = 200 * (self.num_vars + 1);
        for _ in 0..max_pivots {
            // Express the objective gradient over nonbasic variables.
            let mut gradient = vec![0.0; self.num_vars];
            for (var, coeff) in objective.terms() {
                let v = var.index();
                match self.basic_row[v] {
                    None => gradient[v] += coeff,
                    Some(row) => {
                        for (w, row_coeff) in self.rows[row].iter().enumerate() {
                            if *row_coeff != 0.0 && self.basic_row[w].is_none() {
                                gradient[w] += coeff * row_coeff;
                            }
                        }
                    }
                }
            }

            // Find an improving nonbasic direction (Bland's rule on index).
            let mut entering: Option<(usize, bool)> = None;
            for var in 0..self.num_vars {
                if self.basic_row[var].is_some() {
                    continue;
                }
                let g = gradient[var];
                if g > 1e-12 && self.can_increase(var) {
                    entering = Some((var, true));
                    break;
                }
                if g < -1e-12 && self.can_decrease(var) {
                    entering = Some((var, false));
                    break;
                }
            }
            let Some((entering, increase)) = entering else {
                let assignment = self.concrete_assignment();
                let value = objective.evaluate(&assignment);
                return ObjectiveOutcome::Optimal(value, assignment);
            };

            // Ratio test: how far can the entering variable move before it or
            // a basic variable hits a bound?
            let mut limit: Option<(Delta, Option<usize>)> = None; // (max |step|, blocking basic)
            let own_bound = if increase {
                self.upper[entering].map(|b| b.value.sub(self.assignment[entering]))
            } else {
                self.lower[entering].map(|b| self.assignment[entering].sub(b.value))
            };
            if let Some(step) = own_bound {
                limit = Some((step, None));
            }
            for r in 0..self.rows.len() {
                let coeff = self.rows[r][entering];
                if coeff == 0.0 {
                    continue;
                }
                let owner = self.row_owner[r];
                // The owner's value changes by coeff · step · direction.
                let delta_per_step = if increase { coeff } else { -coeff };
                let bound = if delta_per_step > 0.0 {
                    self.upper[owner].map(|b| b.value.sub(self.assignment[owner]))
                } else {
                    self.lower[owner].map(|b| self.assignment[owner].sub(b.value))
                };
                if let Some(room) = bound {
                    let step = room.scale(1.0 / delta_per_step.abs());
                    let tighter = match &limit {
                        Some((best, _)) => step.lt(best),
                        None => true,
                    };
                    if tighter {
                        limit = Some((step, Some(owner)));
                    }
                }
            }

            match limit {
                None => return ObjectiveOutcome::Unbounded,
                Some((step, blocking)) => {
                    let signed_step = if increase { step } else { step.scale(-1.0) };
                    let new_value = self.assignment[entering].add(signed_step);
                    self.update_nonbasic(entering, new_value);
                    if let Some(blocking_var) = blocking {
                        // Pivot so the blocking basic variable leaves the basis;
                        // its assignment is already exactly on the bound.
                        let target = self.assignment[blocking_var];
                        self.pivot_and_update(blocking_var, entering, target);
                    }
                }
            }
        }
        let assignment = self.concrete_assignment();
        let value = objective.evaluate(&assignment);
        ObjectiveOutcome::Optimal(value, assignment)
    }

    /// Concretises the δ-assignment of the problem variables into plain `f64`
    /// values by substituting a positive ε small enough to preserve every
    /// strict bound.
    fn concrete_assignment(&self) -> Vec<f64> {
        let mut epsilon: f64 = 1e-6;
        for var in 0..self.num_vars {
            let value = self.assignment[var];
            if let Some(lower) = self.lower[var] {
                // value ≥ lower in δ-arithmetic; find ε keeping that true in ℝ.
                let dr = value.real - lower.value.real;
                let dd = lower.value.delta - value.delta;
                if dd > 0.0 && dr > 0.0 {
                    epsilon = epsilon.min(dr / dd);
                }
            }
            if let Some(upper) = self.upper[var] {
                let dr = upper.value.real - value.real;
                let dd = value.delta - upper.value.delta;
                if dd > 0.0 && dr > 0.0 {
                    epsilon = epsilon.min(dr / dd);
                }
            }
        }
        (0..self.num_problem_vars)
            .map(|v| self.assignment[v].concretize(epsilon))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::VarPool;

    fn vars(n: usize) -> (VarPool, Vec<crate::VarId>) {
        let mut pool = VarPool::new();
        let ids = pool.fresh_block("x", n);
        (pool, ids)
    }

    #[test]
    fn delta_arithmetic_and_ordering() {
        let a = Delta::real(1.0);
        let b = Delta::with_delta(1.0, -1.0);
        assert!(b.lt(&a));
        assert!(a.gt(&b));
        assert_eq!(a.add(b), Delta::with_delta(2.0, -1.0));
        assert_eq!(a.sub(b), Delta::with_delta(0.0, 1.0));
        assert_eq!(b.scale(2.0), Delta::with_delta(2.0, -2.0));
        assert!((b.concretize(0.001) - 0.999).abs() < 1e-12);
    }

    #[test]
    fn feasible_single_variable_bounds() {
        let (pool, v) = vars(1);
        let constraints = vec![
            (LinExpr::var(v[0]).ge(1.0), 0),
            (LinExpr::var(v[0]).le(2.0), 1),
        ];
        match Simplex::check(pool.len(), &constraints) {
            SimplexResult::Feasible(model) => {
                assert!(model[0] >= 1.0 - 1e-9 && model[0] <= 2.0 + 1e-9);
            }
            other => panic!("expected feasible, got {other:?}"),
        }
    }

    #[test]
    fn infeasible_single_variable_bounds_explained() {
        let (pool, v) = vars(1);
        let constraints = vec![
            (LinExpr::var(v[0]).ge(3.0), 7),
            (LinExpr::var(v[0]).le(2.0), 9),
        ];
        match Simplex::check(pool.len(), &constraints) {
            SimplexResult::Infeasible(mut tags) => {
                tags.sort_unstable();
                assert_eq!(tags, vec![7, 9]);
            }
            other => panic!("expected infeasible, got {other:?}"),
        }
    }

    #[test]
    fn feasible_system_with_rows() {
        let (pool, v) = vars(2);
        let constraints = vec![
            ((LinExpr::var(v[0]) + LinExpr::var(v[1])).le(4.0), 0),
            ((LinExpr::var(v[0]) - LinExpr::var(v[1])).ge(-1.0), 1),
            (LinExpr::var(v[0]).ge(0.5), 2),
            (LinExpr::var(v[1]).ge(1.0), 3),
        ];
        match Simplex::check(pool.len(), &constraints) {
            SimplexResult::Feasible(model) => {
                for (c, _) in &constraints {
                    assert!(c.holds(&model), "violated: {c} by {model:?}");
                }
            }
            other => panic!("expected feasible, got {other:?}"),
        }
    }

    #[test]
    fn infeasible_system_with_rows_has_small_explanation() {
        let (pool, v) = vars(2);
        let constraints = vec![
            ((LinExpr::var(v[0]) + LinExpr::var(v[1])).le(2.0), 0),
            (LinExpr::var(v[0]).ge(1.5), 1),
            (LinExpr::var(v[1]).ge(1.0), 2),
            (LinExpr::var(v[0]).le(100.0), 3), // irrelevant
        ];
        match Simplex::check(pool.len(), &constraints) {
            SimplexResult::Infeasible(tags) => {
                assert!(tags.contains(&0));
                assert!(!tags.contains(&3), "irrelevant constraint in explanation");
            }
            other => panic!("expected infeasible, got {other:?}"),
        }
    }

    #[test]
    fn strict_inequalities_are_respected() {
        let (pool, v) = vars(1);
        // x < 1 ∧ x > 0.999999: feasible only strictly between the bounds.
        let constraints = vec![
            (LinExpr::var(v[0]).lt(1.0), 0),
            (LinExpr::var(v[0]).gt(0.999_999), 1),
        ];
        match Simplex::check(pool.len(), &constraints) {
            SimplexResult::Feasible(model) => {
                assert!(model[0] < 1.0);
                assert!(model[0] > 0.999_999);
            }
            other => panic!("expected feasible, got {other:?}"),
        }
    }

    #[test]
    fn contradictory_strict_inequalities_are_infeasible() {
        let (pool, v) = vars(1);
        let constraints = vec![
            (LinExpr::var(v[0]).lt(1.0), 0),
            (LinExpr::var(v[0]).gt(1.0), 1),
        ];
        assert!(!Simplex::check(pool.len(), &constraints).is_feasible());
        // x <= 1 && x >= 1 is feasible (x = 1).
        let weak = vec![
            (LinExpr::var(v[0]).le(1.0), 0),
            (LinExpr::var(v[0]).ge(1.0), 1),
        ];
        assert!(Simplex::check(pool.len(), &weak).is_feasible());
    }

    #[test]
    fn equality_constraints() {
        let (pool, v) = vars(2);
        let constraints = vec![
            ((LinExpr::var(v[0]) + LinExpr::var(v[1])).eq_to(3.0), 0),
            ((LinExpr::var(v[0]) - LinExpr::var(v[1])).eq_to(1.0), 1),
        ];
        match Simplex::check(pool.len(), &constraints) {
            SimplexResult::Feasible(model) => {
                assert!((model[0] - 2.0).abs() < 1e-6);
                assert!((model[1] - 1.0).abs() < 1e-6);
            }
            other => panic!("expected feasible, got {other:?}"),
        }
    }

    #[test]
    fn negative_coefficient_single_variable_constraint() {
        let (pool, v) = vars(1);
        // -2x <= -4  ⇔  x >= 2.
        let constraints = vec![
            (LinExpr::term(v[0], -2.0).le(-4.0), 0),
            (LinExpr::var(v[0]).le(5.0), 1),
        ];
        match Simplex::check(pool.len(), &constraints) {
            SimplexResult::Feasible(model) => assert!(model[0] >= 2.0 - 1e-9),
            other => panic!("expected feasible, got {other:?}"),
        }
    }

    #[test]
    fn maximize_bounded_objective() {
        let (pool, v) = vars(2);
        let constraints = vec![
            ((LinExpr::var(v[0]) + LinExpr::var(v[1])).le(4.0), 0),
            (LinExpr::var(v[0]).ge(0.0), 1),
            (LinExpr::var(v[1]).ge(0.0), 2),
            (LinExpr::var(v[0]).le(3.0), 3),
        ];
        let objective = LinExpr::var(v[0]) * 2.0 + LinExpr::var(v[1]);
        match Simplex::check_and_maximize(pool.len(), &constraints, &objective).unwrap() {
            ObjectiveOutcome::Optimal(value, model) => {
                // Optimum at x0 = 3, x1 = 1 → objective 7.
                assert!((value - 7.0).abs() < 1e-6, "value {value}, model {model:?}");
            }
            ObjectiveOutcome::Unbounded => panic!("objective should be bounded"),
        }
    }

    #[test]
    fn maximize_detects_unbounded_objective() {
        let (pool, v) = vars(1);
        let constraints = vec![(LinExpr::var(v[0]).ge(0.0), 0)];
        let objective = LinExpr::var(v[0]);
        match Simplex::check_and_maximize(pool.len(), &constraints, &objective).unwrap() {
            ObjectiveOutcome::Unbounded => {}
            other => panic!("expected unbounded, got {other:?}"),
        }
    }

    #[test]
    fn maximize_reports_infeasible_constraints() {
        let (pool, v) = vars(1);
        let constraints = vec![
            (LinExpr::var(v[0]).ge(2.0), 0),
            (LinExpr::var(v[0]).le(1.0), 1),
        ];
        let objective = LinExpr::var(v[0]);
        assert!(Simplex::check_and_maximize(pool.len(), &constraints, &objective).is_err());
    }

    #[test]
    fn larger_chain_of_constraints_is_feasible() {
        // x_{k+1} = 0.9 x_k + u_k encoded as equalities, with bounded u and a
        // reachability-style requirement on the final state.
        let mut pool = VarPool::new();
        let xs = pool.fresh_block("x", 6);
        let us = pool.fresh_block("u", 5);
        let mut constraints = Vec::new();
        let mut tag = 0;
        constraints.push((LinExpr::var(xs[0]).eq_to(0.0), tag));
        for k in 0..5 {
            tag += 1;
            let expr = LinExpr::var(xs[k + 1]) - LinExpr::term(xs[k], 0.9) - LinExpr::var(us[k]);
            constraints.push((expr.eq_to(0.0), tag));
            tag += 1;
            constraints.push((LinExpr::var(us[k]).le(1.0), tag));
            tag += 1;
            constraints.push((LinExpr::var(us[k]).ge(-1.0), tag));
        }
        tag += 1;
        constraints.push((LinExpr::var(xs[5]).ge(3.0), tag));
        match Simplex::check(pool.len(), &constraints) {
            SimplexResult::Feasible(model) => {
                for (c, _) in &constraints {
                    assert!(c.holds(&model), "violated {c}");
                }
            }
            other => panic!("expected feasible, got {other:?}"),
        }
        // Requiring the final state to exceed the reachable maximum (≈ 4.1)
        // makes the system infeasible.
        let mut impossible = constraints.clone();
        impossible.push((LinExpr::var(xs[5]).ge(10.0), tag + 1));
        assert!(!Simplex::check(pool.len(), &impossible).is_feasible());
    }
}
