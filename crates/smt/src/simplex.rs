//! General simplex theory solver for conjunctions of linear constraints.
//!
//! This module implements the *general simplex* algorithm of Dutertre and
//! de Moura ("A Fast Linear-Arithmetic Solver for DPLL(T)", CAV 2006) in its
//! **incremental** form: a [`Simplex`] instance owns a persistent sparse
//! tableau whose rows are built once per constraint expression
//! ([`Simplex::define`]) and never rebuilt. Asserting a constraint only
//! installs a variable bound ([`Simplex::assert_bound`]); retracting is a
//! constant-time pop of a bound trail ([`Simplex::mark`] /
//! [`Simplex::pop_to`]) that leaves the basis and the current assignment in
//! place — exactly the backtracking discipline the lazy DPLL(T) loop in
//! [`SmtSolver`](crate::SmtSolver) needs to stay in lock-step with the SAT
//! trail.
//!
//! Tableau rows are stored sparsely (sorted index/value pairs with
//! merge-based pivoting) because the unrolled CPS encodings this workspace
//! produces are overwhelmingly sparse; a lazily-compacted column index maps
//! each variable to the rows that mention it so pivots and assignment
//! updates touch only the affected rows.
//!
//! Strict inequalities are handled with symbolic infinitesimals ([`Delta`]),
//! and infeasibility produces an *explanation* — the tags of the asserted
//! constraints participating in the conflicting bound configuration — which
//! becomes a learned clause in the DPLL(T) loop.
//!
//! The non-incremental entry points of the original implementation,
//! [`Simplex::check`] and [`Simplex::check_and_maximize`], are kept as thin
//! wrappers (build + assert + solve) for one-shot feasibility and LP queries.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap};
use std::fmt;
use std::rc::Rc;
use std::sync::Arc;

use crate::budget::Governor;
use crate::{Constraint, LinExpr, RelOp};

/// Comparison tolerance on the real part of a [`Delta`] value.
const REAL_EPS: f64 = 1e-11;

/// Row entries with magnitude at or below this threshold are treated as the
/// cancellation residue of pivot arithmetic and dropped. Trade-off: sitting
/// 10× above [`LinExpr`]'s 1e-12 construction floor filters residue
/// reliably, but a *genuine* merged coefficient landing in (1e-12, 1e-11]
/// is dropped too, perturbing that row by up to ~1e-11·‖x‖ — inside the
/// solver's feasibility tolerances, and the DPLL(T) layer additionally
/// validates models and conflict explanations against the original
/// constraints.
const DROP_EPS: f64 = 1e-11;

/// Minimum magnitude of a pivot element. Pivoting on a smaller coefficient
/// multiplies the row by more than 1e7, amplifying accumulated float error
/// past the feasibility tolerances; such entries are treated as zero when
/// selecting an entering variable.
const PIVOT_EPS: f64 = 1e-7;

/// Minimum real-part improvement a derived bound must make over the
/// installed one before it is worth recording. Without a floor, cascades of
/// marginally-tighter re-derivations (each legal under the 1e-11 comparison
/// tolerance) dominate propagation time while contributing nothing the
/// literal-fixing clearance (1e-9) can use.
const PROP_IMPROVE: f64 = 1e-7;

/// Maximum implication-chain depth per propagation call: bounds derived at
/// this depth still install (and can fix literals) but do not seed further
/// derivations. Depth 0 is an asserted bound; the payoff chain
/// `asserted atom → shared problem vars → implied atoms at other instants`
/// completes at depth 2, and deeper refinement cones grow combinatorially
/// for marginal tightening.
const PROP_MAX_DEPTH: u8 = 3;

/// Outward padding applied to bounds derived by theory propagation
/// ([`Simplex::propagate_bounds`]): a derived upper bound is raised and a
/// derived lower bound lowered by this amount. The interval sums behind a
/// derived bound are computed in `f64`, so without slack a bound could end up
/// infinitesimally tighter than the exact implication and fabricate a
/// conflict; the padding dwarfs the round-off of the short sums involved
/// while staying far below the 1e-6 robustness margins of the CPS encodings.
const PROP_PAD: f64 = 1e-9;

/// Pivots between governor polls in [`Simplex::solve_bounded`]. One poll is
/// two relaxed atomic loads (plus an `Instant::now()` when a deadline is
/// set); batching 64 pivots between polls keeps the measured overhead on the
/// pivot path well under 1% while still bounding the cancellation latency to
/// a few microseconds of pivot work.
const PIVOT_CHECK_BATCH: u64 = 64;

/// A value of the form `real + delta·ε` where `ε` is an arbitrarily small
/// positive infinitesimal, used to represent strict bounds exactly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Delta {
    /// Real part.
    pub real: f64,
    /// Coefficient of the infinitesimal ε.
    pub delta: f64,
}

impl Delta {
    /// A purely real value.
    pub fn real(value: f64) -> Self {
        Self {
            real: value,
            delta: 0.0,
        }
    }

    /// A value with an explicit infinitesimal component.
    pub fn with_delta(real: f64, delta: f64) -> Self {
        Self { real, delta }
    }

    /// Addition.
    pub fn add(self, other: Delta) -> Delta {
        Delta {
            real: self.real + other.real,
            delta: self.delta + other.delta,
        }
    }

    /// Subtraction.
    pub fn sub(self, other: Delta) -> Delta {
        Delta {
            real: self.real - other.real,
            delta: self.delta - other.delta,
        }
    }

    /// Multiplication by a real scalar.
    pub fn scale(self, factor: f64) -> Delta {
        Delta {
            real: self.real * factor,
            delta: self.delta * factor,
        }
    }

    /// Lexicographic comparison (real part first, then infinitesimal part),
    /// with a small tolerance on the real part.
    pub fn cmp_delta(&self, other: &Delta) -> Ordering {
        if (self.real - other.real).abs() <= REAL_EPS {
            if (self.delta - other.delta).abs() <= REAL_EPS {
                Ordering::Equal
            } else if self.delta < other.delta {
                Ordering::Less
            } else {
                Ordering::Greater
            }
        } else if self.real < other.real {
            Ordering::Less
        } else {
            Ordering::Greater
        }
    }

    /// `self < other` in the δ-ordering.
    pub fn lt(&self, other: &Delta) -> bool {
        self.cmp_delta(other) == Ordering::Less
    }

    /// `self > other` in the δ-ordering.
    pub fn gt(&self, other: &Delta) -> bool {
        self.cmp_delta(other) == Ordering::Greater
    }

    /// Concretises the value by substituting `epsilon` for ε.
    pub fn concretize(&self, epsilon: f64) -> f64 {
        self.real + self.delta * epsilon
    }
}

impl fmt::Display for Delta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.delta == 0.0 {
            write!(f, "{}", self.real)
        } else {
            write!(f, "{} + {}ε", self.real, self.delta)
        }
    }
}

/// Result of a feasibility check.
#[derive(Debug, Clone, PartialEq)]
pub enum SimplexResult {
    /// The conjunction is satisfiable; the payload is a satisfying assignment
    /// for the *original* problem variables (concretised to `f64`).
    Feasible(Vec<f64>),
    /// The conjunction is unsatisfiable; the payload lists the tags of the
    /// constraints forming the conflicting configuration.
    Infeasible(Vec<usize>),
}

impl SimplexResult {
    /// Returns `true` for [`SimplexResult::Feasible`].
    pub fn is_feasible(&self) -> bool {
        matches!(self, SimplexResult::Feasible(_))
    }
}

/// Outcome of an optimisation run on a feasible tableau.
#[derive(Debug, Clone, PartialEq)]
pub enum ObjectiveOutcome {
    /// Optimum attained; payload is `(optimal value, assignment)`.
    Optimal(f64, Vec<f64>),
    /// The objective is unbounded in the direction of optimisation.
    Unbounded,
}

/// Why a bound is installed: asserted by the caller (a single explanation
/// tag) or derived by theory propagation. A derived bound stores the
/// *asserted* tags it was ultimately deduced from — the frontier of its node
/// in the bound implication graph, pre-flattened so that expanding an
/// explanation never walks the graph at conflict time.
#[derive(Debug, Clone)]
enum BoundReason {
    /// Installed by [`Simplex::assert_bound`] with this explanation tag.
    Asserted(usize),
    /// Derived by [`Simplex::propagate_bounds`] from these asserted tags.
    Derived(Rc<[usize]>),
}

impl BoundReason {
    /// Appends the asserted tags behind this reason to `out`.
    fn push_tags(&self, out: &mut Vec<usize>) {
        match self {
            BoundReason::Asserted(tag) => out.push(*tag),
            BoundReason::Derived(tags) => out.extend_from_slice(tags),
        }
    }
}

#[derive(Debug, Clone)]
struct Bound {
    value: Delta,
    /// Provenance of this bound (see [`BoundReason`]).
    reason: BoundReason,
}

/// A variable bound derived by theory-level bound propagation
/// ([`Simplex::propagate_bounds`]).
#[derive(Debug, Clone)]
pub struct ImpliedBound {
    /// Tableau variable the bound applies to.
    pub var: usize,
    /// `true` for an upper bound, `false` for a lower bound.
    pub is_upper: bool,
    /// The derived bound value (already padded outward by the propagation
    /// safety margin, so it is a sound consequence despite float round-off).
    pub value: Delta,
    /// Tags of the asserted bounds this bound was deduced from — the cut
    /// through the bound implication graph that explains it.
    pub explanation: Rc<[usize]>,
}

/// Max-heap entry of the violation priority queue: basic variables outside
/// their bounds, keyed by infeasibility magnitude (largest first; ties break
/// towards the smaller variable index for determinism). Entries are lazily
/// deleted — staleness is detected on pop by re-checking the violation.
#[derive(Debug, PartialEq)]
struct Violation {
    magnitude: f64,
    var: u32,
}

impl Eq for Violation {}

impl PartialOrd for Violation {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Violation {
    fn cmp(&self, other: &Self) -> Ordering {
        self.magnitude
            .total_cmp(&other.magnitude)
            .then_with(|| other.var.cmp(&self.var))
    }
}

/// A tableau row stored as `(variable, coefficient)` pairs sorted by
/// variable index; exact zeros are never stored.
#[derive(Debug, Clone, Default)]
struct SparseRow {
    entries: Vec<(u32, f64)>,
}

impl SparseRow {
    fn coeff(&self, var: usize) -> f64 {
        match self
            .entries
            .binary_search_by_key(&(var as u32), |&(v, _)| v)
        {
            Ok(i) => self.entries[i].1,
            Err(_) => 0.0,
        }
    }

    fn iter(&self) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.entries.iter().map(|&(v, c)| (v as usize, c))
    }
}

/// One retractable bound update; popping restores the previous bound slot.
#[derive(Debug, Clone)]
struct TrailEntry {
    var: u32,
    is_upper: bool,
    previous: Option<Bound>,
}

/// Hashable bit-exact key of a constraint expression, used to share one
/// slack variable (and tableau row) between all constraints over the same
/// left-hand side.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct ExprKey(Vec<(u32, u64)>);

impl ExprKey {
    fn new(expr: &LinExpr) -> Self {
        ExprKey(
            expr.terms()
                .map(|(v, c)| (v.index() as u32, c.to_bits()))
                .collect(),
        )
    }
}

/// Incremental feasibility and optimisation engine for conjunctions of
/// linear constraints.
///
/// # One-shot example
///
/// ```
/// use cps_smt::simplex::Simplex;
/// use cps_smt::{LinExpr, VarPool};
///
/// let mut pool = VarPool::new();
/// let x = pool.fresh("x");
/// let y = pool.fresh("y");
/// let constraints = vec![
///     ((LinExpr::var(x) + LinExpr::var(y)).le(2.0), 0),
///     (LinExpr::var(x).ge(1.5), 1),
///     (LinExpr::var(y).ge(1.0), 2),
/// ];
/// let result = Simplex::check(pool.len(), &constraints);
/// assert!(!result.is_feasible()); // 1.5 + 1.0 > 2
/// ```
///
/// # Incremental example
///
/// ```
/// use cps_smt::simplex::Simplex;
/// use cps_smt::{LinExpr, VarPool};
///
/// let mut pool = VarPool::new();
/// let x = pool.fresh("x");
/// let mut simplex = Simplex::new(pool.len());
/// simplex.assert_atom(&LinExpr::var(x).ge(1.0), 0).unwrap();
/// assert!(simplex.solve().is_ok());
/// let mark = simplex.mark();
/// simplex.assert_atom(&LinExpr::var(x).le(0.5), 1).unwrap_err();
/// simplex.pop_to(mark); // retract, x >= 1 alone is feasible again
/// assert!(simplex.solve().is_ok());
/// ```
#[derive(Debug)]
pub struct Simplex {
    /// Total number of variables (problem variables first, then slacks).
    num_vars: usize,
    /// Number of original problem variables.
    num_problem_vars: usize,
    /// `rows[r]` is the tableau row of the basic variable `row_owner[r]`,
    /// expressing it as a linear combination of the nonbasic variables.
    rows: Vec<SparseRow>,
    row_owner: Vec<usize>,
    /// `basic_row[v] = Some(r)` iff variable `v` is basic and owns row `r`.
    basic_row: Vec<Option<usize>>,
    /// Candidate rows mentioning each variable: a lazily-compacted superset
    /// (pivoting may leave stale indices, removed on the next compaction).
    cols: Vec<Vec<u32>>,
    lower: Vec<Option<Bound>>,
    upper: Vec<Option<Bound>>,
    assignment: Vec<Delta>,
    /// Retraction trail of bound updates ([`Simplex::mark`] /
    /// [`Simplex::pop_to`]).
    trail: Vec<TrailEntry>,
    /// Shared slack variable per distinct constraint expression.
    expr_slack: HashMap<ExprKey, usize>,
    /// Total pivots performed over the instance's lifetime.
    pivots: u64,
    /// Priority queue of bound-violating basic variables, keyed by violation
    /// magnitude. Every event that can create a violation (bound install,
    /// assignment update, basis change) pushes an entry; stale entries are
    /// discarded lazily on pop, so the solve loop never rescans all rows.
    violations: BinaryHeap<Violation>,
    /// Total violation-queue pops over the instance's lifetime.
    queue_pops: u64,
    /// Variables whose bounds tightened since the last
    /// [`Simplex::propagate_bounds`] call — the propagation worklist.
    /// Propagation drains it in breadth-first waves, so installs made while
    /// processing one wave form the next (deeper) wave.
    dirty: Vec<u32>,
    /// Whether bound installs feed the worklist (see
    /// [`Simplex::set_bound_tracking`]).
    track_implied: bool,
    /// Budget/cancellation governor installed by the DPLL(T) driver. Polled
    /// every [`PIVOT_CHECK_BATCH`] pivots inside the solve loop; `None` (the
    /// default, and always the case for [`Simplex::check`] and the
    /// [`optimize`](crate::optimize) entry points) costs one branch per
    /// batch boundary.
    governor: Option<Arc<Governor>>,
}

impl Simplex {
    /// Creates an empty engine over `num_problem_vars` problem variables with
    /// no bounds asserted.
    pub fn new(num_problem_vars: usize) -> Self {
        Simplex {
            num_vars: num_problem_vars,
            num_problem_vars,
            rows: Vec::new(),
            row_owner: Vec::new(),
            basic_row: vec![None; num_problem_vars],
            cols: vec![Vec::new(); num_problem_vars],
            lower: vec![None; num_problem_vars],
            upper: vec![None; num_problem_vars],
            assignment: vec![Delta::real(0.0); num_problem_vars],
            trail: Vec::new(),
            expr_slack: HashMap::new(),
            pivots: 0,
            violations: BinaryHeap::new(),
            queue_pops: 0,
            dirty: Vec::new(),
            track_implied: false,
            governor: None,
        }
    }

    /// Installs the budget/cancellation governor polled during the solve
    /// loop. Pivot counts are reported to it in amortised batches.
    pub(crate) fn set_governor(&mut self, governor: Arc<Governor>) {
        self.governor = Some(governor);
    }

    /// Enables or disables the propagation worklist (disabled by default —
    /// only callers that actually drain it via [`Simplex::propagate_bounds`]
    /// should enable it, otherwise every tighter bound install appends a
    /// worklist entry that nothing drains).
    pub fn set_bound_tracking(&mut self, enabled: bool) {
        self.track_implied = enabled;
        if !enabled {
            self.dirty.clear();
        }
    }

    /// Checks satisfiability of the conjunction of `constraints` over
    /// `num_problem_vars` problem variables. Each constraint carries an opaque
    /// `tag` that is echoed back in infeasibility explanations.
    ///
    /// One-shot convenience wrapper over the incremental engine.
    pub fn check(num_problem_vars: usize, constraints: &[(Constraint, usize)]) -> SimplexResult {
        let mut simplex = Simplex::new(num_problem_vars);
        for (constraint, tag) in constraints {
            if let Err(explanation) = simplex.assert_atom(constraint, *tag) {
                return SimplexResult::Infeasible(explanation);
            }
        }
        match simplex.solve() {
            Err(explanation) => SimplexResult::Infeasible(explanation),
            Ok(()) => SimplexResult::Feasible(simplex.concrete_assignment()),
        }
    }

    /// Checks satisfiability and, if feasible, maximises `objective` over the
    /// constraint set. Minimisation can be obtained by negating the objective.
    pub fn check_and_maximize(
        num_problem_vars: usize,
        constraints: &[(Constraint, usize)],
        objective: &LinExpr,
    ) -> Result<ObjectiveOutcome, Vec<usize>> {
        let mut simplex = Simplex::new(num_problem_vars);
        for (constraint, tag) in constraints {
            simplex.assert_atom(constraint, *tag)?;
        }
        simplex.solve()?;
        Ok(simplex.maximize(objective))
    }

    /// Total pivots performed since construction.
    pub fn pivots(&self) -> u64 {
        self.pivots
    }

    /// Total violation-priority-queue pops performed since construction.
    pub fn queue_pops(&self) -> u64 {
        self.queue_pops
    }

    /// Registers the left-hand side of a constraint and returns the tableau
    /// variable (and the scale to apply to bounds) representing it.
    ///
    /// Single-variable expressions `c·x` map directly to `(x, c)`; every
    /// other expression gets a shared slack variable `s = expr` backed by a
    /// tableau row (one row per *distinct* expression, no matter how many
    /// constraints mention it).
    pub fn define(&mut self, expr: &LinExpr) -> (usize, f64) {
        if let Some((var, coeff)) = Self::single_var(expr) {
            return (var, coeff);
        }
        let key = ExprKey::new(expr);
        if let Some(&slack) = self.expr_slack.get(&key) {
            return (slack, 1.0);
        }
        // Express the new row over *nonbasic* variables: substitute the
        // definition of any variable that has already become basic.
        let row_idx = self.rows.len();
        let mut entries: Vec<(u32, f64)> = Vec::with_capacity(expr.num_terms());
        if expr
            .terms()
            .all(|(v, _)| self.basic_row[v.index()].is_none())
        {
            // Fast path (typical: all rows are defined before any pivoting).
            entries.extend(expr.terms().map(|(v, c)| (v.index() as u32, c)));
        } else {
            let mut dense = vec![0.0; self.num_vars];
            for (v, c) in expr.terms() {
                match self.basic_row[v.index()] {
                    None => dense[v.index()] += c,
                    Some(r) => {
                        for (w, rc) in self.rows[r].iter() {
                            dense[w] += c * rc;
                        }
                    }
                }
            }
            entries.extend(
                dense
                    .iter()
                    .enumerate()
                    .filter(|&(_, c)| *c != 0.0)
                    .map(|(v, c)| (v as u32, *c)),
            );
        }
        let slack = self.num_vars;
        self.num_vars += 1;
        for &(v, _) in &entries {
            self.cols[v as usize].push(row_idx as u32);
        }
        self.rows.push(SparseRow { entries });
        self.row_owner.push(slack);
        self.basic_row.push(Some(row_idx));
        self.cols.push(Vec::new());
        self.lower.push(None);
        self.upper.push(None);
        self.assignment.push(Delta::real(0.0));
        self.assignment[slack] = self.row_value(row_idx);
        self.expr_slack.insert(key, slack);
        (slack, 1.0)
    }

    /// Asserts an atomic constraint: registers its expression (if new) and
    /// installs the corresponding bound. `tag` is echoed back in
    /// infeasibility explanations.
    ///
    /// # Errors
    ///
    /// Returns the conflicting tags when the bound immediately contradicts an
    /// asserted bound of the opposite kind. An `Eq` constraint installs two
    /// bounds; on conflict the first may remain installed — callers that need
    /// atomic retraction should [`Simplex::mark`] first and
    /// [`Simplex::pop_to`] on error.
    pub fn assert_atom(&mut self, constraint: &Constraint, tag: usize) -> Result<(), Vec<usize>> {
        let (var, scale) = self.define(constraint.expr());
        self.assert_bound(var, scale, constraint.op(), constraint.bound(), tag)
    }

    /// Installs the bound `scale · var ⋈ bound` (as produced by
    /// [`Simplex::define`]) with the given explanation tag.
    ///
    /// # Errors
    ///
    /// Returns the pair of conflicting tags when the new bound contradicts the
    /// currently asserted opposite bound of `var`.
    pub fn assert_bound(
        &mut self,
        var: usize,
        scale: f64,
        op: RelOp,
        bound: f64,
        tag: usize,
    ) -> Result<(), Vec<usize>> {
        // `scale · var ⋈ bound` — dividing by a negative coefficient flips
        // the comparison direction.
        let value = bound / scale;
        let flip = scale < 0.0;
        let (is_upper, value) = match (op, flip) {
            (RelOp::Le, false) | (RelOp::Ge, true) => (true, Delta::real(value)),
            (RelOp::Lt, false) | (RelOp::Gt, true) => (true, Delta::with_delta(value, -1.0)),
            (RelOp::Ge, false) | (RelOp::Le, true) => (false, Delta::real(value)),
            (RelOp::Gt, false) | (RelOp::Lt, true) => (false, Delta::with_delta(value, 1.0)),
            (RelOp::Eq, _) => {
                self.assert_upper(var, Delta::real(value), tag)?;
                return self.assert_lower(var, Delta::real(value), tag);
            }
        };
        if is_upper {
            self.assert_upper(var, value, tag)
        } else {
            self.assert_lower(var, value, tag)
        }
    }

    /// Current length of the retraction trail; pass to [`Simplex::pop_to`] to
    /// retract every bound asserted after this point.
    pub fn mark(&self) -> usize {
        self.trail.len()
    }

    /// Retracts all bounds asserted after `mark`, restoring the previous
    /// bound records. The basis and the current assignment are left in place:
    /// retracting only *loosens* bounds, so every nonbasic variable still
    /// satisfies its bounds and the next [`Simplex::solve`] call starts from
    /// a warm, near-feasible state.
    pub fn pop_to(&mut self, mark: usize) {
        while self.trail.len() > mark {
            let entry = self.trail.pop().expect("trail length checked");
            let var = entry.var as usize;
            if entry.is_upper {
                self.upper[var] = entry.previous;
            } else {
                self.lower[var] = entry.previous;
            }
        }
    }

    /// If the expression is exactly `c · x` for a single variable, returns
    /// `(x, c)`.
    fn single_var(expr: &LinExpr) -> Option<(usize, f64)> {
        if expr.num_terms() == 1 {
            let (var, coeff) = expr.terms().next().expect("one term present");
            Some((var.index(), coeff))
        } else {
            None
        }
    }

    fn row_value(&self, row: usize) -> Delta {
        let mut value = Delta::real(0.0);
        for (v, coeff) in self.rows[row].iter() {
            if self.basic_row[v].is_none() {
                value = value.add(self.assignment[v].scale(coeff));
            }
        }
        value
    }

    /// Drops stale and duplicate entries from the column index of `var` so
    /// that it lists exactly the rows whose sparse row currently mentions
    /// `var`, each once. (Duplicates arise when an entry cancels to zero in a
    /// pivot — leaving a stale column record — and a later pivot re-creates
    /// it, pushing a second record.)
    fn compact_col(&mut self, var: usize) {
        let mut col = std::mem::take(&mut self.cols[var]);
        col.sort_unstable();
        col.dedup();
        col.retain(|&r| self.rows[r as usize].coeff(var) != 0.0);
        self.cols[var] = col;
    }

    fn assert_upper(&mut self, var: usize, value: Delta, reason: usize) -> Result<(), Vec<usize>> {
        self.set_upper(var, value, BoundReason::Asserted(reason))
            .map(|_| ())
    }

    fn assert_lower(&mut self, var: usize, value: Delta, reason: usize) -> Result<(), Vec<usize>> {
        self.set_lower(var, value, BoundReason::Asserted(reason))
            .map(|_| ())
    }

    /// Installs an upper bound with an explicit provenance. Returns whether
    /// the bound was actually tighter than the existing one (and therefore
    /// installed).
    ///
    /// # Errors
    ///
    /// Returns the asserted tags of the conflicting bound pair when the new
    /// bound contradicts the currently installed lower bound.
    fn set_upper(
        &mut self,
        var: usize,
        value: Delta,
        reason: BoundReason,
    ) -> Result<bool, Vec<usize>> {
        if let Some(lower) = &self.lower[var] {
            if value.lt(&lower.value) {
                let mut explanation = Vec::new();
                reason.push_tags(&mut explanation);
                lower.reason.push_tags(&mut explanation);
                explanation.sort_unstable();
                explanation.dedup();
                return Err(explanation);
            }
        }
        let tighter = match &self.upper[var] {
            Some(existing) => value.lt(&existing.value),
            None => true,
        };
        if tighter {
            self.trail.push(TrailEntry {
                var: var as u32,
                is_upper: true,
                previous: self.upper[var].take(),
            });
            self.upper[var] = Some(Bound { value, reason });
            if self.track_implied {
                self.dirty.push(var as u32);
            }
            if self.basic_row[var].is_none() {
                if self.assignment[var].gt(&value) {
                    self.update_nonbasic(var, value);
                }
            } else {
                self.enqueue_if_violating(var);
            }
        }
        Ok(tighter)
    }

    /// Lower-bound counterpart of [`Simplex::set_upper`].
    fn set_lower(
        &mut self,
        var: usize,
        value: Delta,
        reason: BoundReason,
    ) -> Result<bool, Vec<usize>> {
        if let Some(upper) = &self.upper[var] {
            if value.gt(&upper.value) {
                let mut explanation = Vec::new();
                reason.push_tags(&mut explanation);
                upper.reason.push_tags(&mut explanation);
                explanation.sort_unstable();
                explanation.dedup();
                return Err(explanation);
            }
        }
        let tighter = match &self.lower[var] {
            Some(existing) => value.gt(&existing.value),
            None => true,
        };
        if tighter {
            self.trail.push(TrailEntry {
                var: var as u32,
                is_upper: false,
                previous: self.lower[var].take(),
            });
            self.lower[var] = Some(Bound { value, reason });
            if self.track_implied {
                self.dirty.push(var as u32);
            }
            if self.basic_row[var].is_none() {
                if self.assignment[var].lt(&value) {
                    self.update_nonbasic(var, value);
                }
            } else {
                self.enqueue_if_violating(var);
            }
        }
        Ok(tighter)
    }

    /// The bound violation of `var` under the current assignment, if any:
    /// `(needs_increase, magnitude)`.
    fn violation_of(&self, var: usize) -> Option<(bool, f64)> {
        if let Some(lower) = &self.lower[var] {
            if self.assignment[var].lt(&lower.value) {
                return Some((true, lower.value.sub(self.assignment[var]).real.abs()));
            }
        }
        if let Some(upper) = &self.upper[var] {
            if self.assignment[var].gt(&upper.value) {
                return Some((false, self.assignment[var].sub(upper.value).real.abs()));
            }
        }
        None
    }

    /// Pushes a violation-queue entry for `var` when it is basic and
    /// currently outside its bounds.
    fn enqueue_if_violating(&mut self, var: usize) {
        if self.basic_row[var].is_some() {
            if let Some((_, magnitude)) = self.violation_of(var) {
                self.violations.push(Violation {
                    magnitude,
                    var: var as u32,
                });
            }
        }
    }

    /// Sets a nonbasic variable to `value` and propagates the change to the
    /// basic variables (only rows mentioning `var` are touched). Basic
    /// variables pushed outside their bounds by the move are recorded in the
    /// violation queue.
    fn update_nonbasic(&mut self, var: usize, value: Delta) {
        let diff = value.sub(self.assignment[var]);
        self.compact_col(var);
        for i in 0..self.cols[var].len() {
            let r = self.cols[var][i] as usize;
            let coeff = self.rows[r].coeff(var);
            let owner = self.row_owner[r];
            self.assignment[owner] = self.assignment[owner].add(diff.scale(coeff));
            self.enqueue_if_violating(owner);
        }
        self.assignment[var] = value;
    }

    /// Main simplex loop: repair basic variables that violate their bounds.
    ///
    /// Pivot selection pops the violation priority queue (largest
    /// infeasibility first, maintained incrementally by bound installs,
    /// assignment updates and pivots — no per-pivot row rescan) and falls
    /// back to Bland's rule (smallest index, full scan) after a fixed number
    /// of pivots to guarantee termination despite degeneracy.
    ///
    /// Succeeds (possibly after pivoting) or returns an infeasibility
    /// explanation; in both cases the engine remains usable — further bounds
    /// can be asserted or retracted and `solve` called again.
    ///
    /// # Errors
    ///
    /// Returns the tags of a conflicting bound configuration when the
    /// asserted conjunction is infeasible.
    /// # Panics
    ///
    /// Panics if a governor installed via `set_governor` trips mid-solve;
    /// governed callers use `solve_interruptible` instead. Ungoverned callers
    /// ([`Simplex::check`], the [`optimize`](crate::optimize) entry points)
    /// can never hit this.
    pub fn solve(&mut self) -> Result<(), Vec<usize>> {
        self.solve_interruptible()
            .expect("unbounded solve completes unless a governor trips")
    }

    /// [`Simplex::solve`] for governed callers: identical to the unbounded
    /// solve (tiny pivots are permitted, so numerical degradation is never
    /// reported), except that a governor trip — deadline, cancellation or
    /// pivot budget — surfaces as `None` instead of a panic. The engine
    /// remains usable after an interruption: the pending violation stays
    /// queued and a later solve resumes the repair.
    pub(crate) fn solve_interruptible(&mut self) -> Option<Result<(), Vec<usize>>> {
        self.solve_bounded(u64::MAX)
    }

    /// [`Simplex::solve`] with a pivot budget: returns `None` when the budget
    /// is exhausted — or when the only pivots that could make progress are
    /// numerically degenerate (below `PIVOT_EPS`) — before feasibility is
    /// decided.
    ///
    /// A warm re-solve after an incremental bound change normally takes a
    /// handful of pivots; a budget blow-up or a degenerate-pivot dead end
    /// signals numerical degradation of the long-lived tableau (float error
    /// accumulates through pivot arithmetic and there is no
    /// refactorisation), and the caller should rebuild from the original
    /// constraints instead of grinding on. The unbounded [`Simplex::solve`]
    /// never reports divergence: it pivots through degenerate entries as a
    /// last resort, which is the correct behaviour on a freshly built
    /// tableau whose tiny coefficients are genuine constraint data.
    pub fn solve_bounded(&mut self, max_pivots: u64) -> Option<Result<(), Vec<usize>>> {
        let bland_switch = 50 * (self.num_vars + 1);
        let mut local_pivots = 0u64;
        loop {
            if local_pivots >= max_pivots {
                return None;
            }
            // Amortised governor poll: report the completed batch and check
            // deadline/cancellation/pivot-cap once per PIVOT_CHECK_BATCH
            // pivots. Returning here is safe — no violation has been popped
            // yet this iteration, so the queue state is intact for a resume.
            if local_pivots % PIVOT_CHECK_BATCH == 0 {
                if let Some(governor) = &self.governor {
                    let batch = if local_pivots == 0 {
                        0
                    } else {
                        PIVOT_CHECK_BATCH
                    };
                    if governor.note_pivots(batch).is_some() {
                        return None;
                    }
                }
            }
            let use_bland = local_pivots >= bland_switch as u64;
            local_pivots += 1;
            let violating = if use_bland {
                self.scan_violating()
            } else {
                self.pop_violating()
            };
            let Some((basic, needs_increase, magnitude)) = violating else {
                return Some(Ok(()));
            };
            // Queue discipline guarantees the popped variable is basic and
            // its violated bound installed (`pop_violating` skips non-basic
            // entries; `violation_of` compares against an installed bound).
            // On the pivot path a broken invariant is reported as divergence
            // — the caller rebuilds from the original constraints — rather
            // than a panic inside the solve loop.
            let Some(row) = self.basic_row[basic] else {
                debug_assert!(false, "violating variable is not basic");
                return None;
            };
            let violated = if needs_increase {
                self.lower[basic].as_ref()
            } else {
                self.upper[basic].as_ref()
            };
            let Some(target) = violated.map(|bound| bound.value) else {
                debug_assert!(false, "violated bound is not installed");
                return None;
            };

            // Find a nonbasic variable that can absorb the change (Bland's
            // rule: row entries are sorted by variable index). Numerically
            // tiny coefficients are avoided — dividing by them blows the row
            // up past the feasibility tolerances — but a helpful tiny
            // coefficient must not yield an infeasibility certificate either
            // (concluding UNSAT while an unblocked direction exists would be
            // unsound). Resolution: a *bounded* solve reports divergence so
            // the caller rebuilds the tableau — on a long-lived tableau a
            // tiny entry is almost always cancellation residue that survived
            // `DROP_EPS`, and pivoting on it fabricates garbage rows (and,
            // worse, garbage conflict explanations). An *unbounded* solve
            // runs on a fresh or last-resort tableau, where tiny entries are
            // genuine constraint data (e.g. geometrically decayed dynamics);
            // there we pivot on the largest-magnitude helpful one.
            let allow_tiny = max_pivots == u64::MAX;
            let mut pivot: Option<usize> = None;
            let mut tiny_pivot: Option<(usize, f64)> = None;
            let mut degraded = false;
            for (var, coeff) in self.rows[row].iter() {
                if self.basic_row[var].is_some() {
                    continue;
                }
                let can_help = if needs_increase {
                    (coeff > 0.0 && self.can_increase(var))
                        || (coeff < 0.0 && self.can_decrease(var))
                } else {
                    (coeff > 0.0 && self.can_decrease(var))
                        || (coeff < 0.0 && self.can_increase(var))
                };
                if !can_help {
                    continue;
                }
                if use_bland {
                    // Bland's termination theorem requires the *smallest-index*
                    // helpful variable, tiny or not: in unbounded mode take it
                    // (termination beats conditioning on the last-resort
                    // path); in bounded mode a tiny first choice is reported
                    // as degradation instead.
                    if coeff.abs() >= PIVOT_EPS || allow_tiny {
                        pivot = Some(var);
                    } else {
                        degraded = true;
                    }
                    break;
                }
                if coeff.abs() >= PIVOT_EPS {
                    pivot = Some(var);
                    break;
                }
                let better = match tiny_pivot {
                    Some((_, best)) => coeff.abs() > best,
                    None => true,
                };
                if better {
                    tiny_pivot = Some((var, coeff.abs()));
                }
            }
            if pivot.is_none() {
                if let Some((var, _)) = tiny_pivot {
                    if allow_tiny {
                        pivot = Some(var);
                    } else {
                        degraded = true;
                    }
                }
            }
            if degraded && pivot.is_none() {
                // Numerical degradation, not infeasibility: ask the caller to
                // rebuild from the original constraints. The popped violation
                // is still live — restore it so a later solve on this
                // instance does not miss it.
                self.violations.push(Violation {
                    magnitude,
                    var: basic as u32,
                });
                return None;
            }
            let Some(entering) = pivot else {
                // No variable can move: the row is a certificate of infeasibility.
                let mut explanation = Vec::new();
                // Invariant (not merely defensive): the same bound was read
                // successfully into `target` at the top of this iteration and
                // pivot selection does not mutate bounds.
                if needs_increase {
                    self.lower[basic]
                        .as_ref()
                        .expect("bound present")
                        .reason
                        .push_tags(&mut explanation);
                } else {
                    self.upper[basic]
                        .as_ref()
                        .expect("bound present")
                        .reason
                        .push_tags(&mut explanation);
                }
                for (var, coeff) in self.rows[row].iter() {
                    if self.basic_row[var].is_some() {
                        continue;
                    }
                    let blocking = if needs_increase {
                        if coeff > 0.0 {
                            &self.upper[var]
                        } else {
                            &self.lower[var]
                        }
                    } else if coeff > 0.0 {
                        &self.lower[var]
                    } else {
                        &self.upper[var]
                    };
                    if let Some(bound) = blocking {
                        bound.reason.push_tags(&mut explanation);
                    }
                }
                explanation.sort_unstable();
                explanation.dedup();
                // The conflict does not repair the violation; keep it queued
                // for re-solves after the caller retracts bounds.
                self.violations.push(Violation {
                    magnitude,
                    var: basic as u32,
                });
                return Some(Err(explanation));
            };
            self.pivot_and_update(basic, entering, target);
        }
    }

    fn can_increase(&self, var: usize) -> bool {
        match &self.upper[var] {
            Some(bound) => self.assignment[var].lt(&bound.value),
            None => true,
        }
    }

    fn can_decrease(&self, var: usize) -> bool {
        match &self.lower[var] {
            Some(bound) => self.assignment[var].gt(&bound.value),
            None => true,
        }
    }

    /// Pops the violation queue until a live entry surfaces: a basic variable
    /// currently outside its bounds. Returns `(var, needs_increase,
    /// magnitude)`. Entries for repaired or no-longer-basic variables are
    /// discarded, and entries whose priority went stale (the assignment moved
    /// since the push) are re-keyed with the current magnitude when a better
    /// candidate may exist below them — the lazy-deletion equivalent of a
    /// decrease-key, keeping selection equal to the true largest current
    /// violation (the numerically gentlest repair order).
    fn pop_violating(&mut self) -> Option<(usize, bool, f64)> {
        while let Some(entry) = self.violations.pop() {
            self.queue_pops += 1;
            let var = entry.var as usize;
            if self.basic_row[var].is_none() {
                continue;
            }
            if let Some((needs_increase, magnitude)) = self.violation_of(var) {
                if magnitude < entry.magnitude {
                    if let Some(next) = self.violations.peek() {
                        if magnitude < next.magnitude {
                            self.violations.push(Violation {
                                magnitude,
                                var: entry.var,
                            });
                            continue;
                        }
                    }
                }
                return Some((var, needs_increase, magnitude));
            }
        }
        // Queue empty ⇒ feasible. Every violation-creating event pushes an
        // entry, so nothing can be missed; verify that bookkeeping in debug
        // builds with the full scan the queue replaces.
        debug_assert!(
            self.scan_violating().is_none(),
            "violation queue missed a violating basic variable"
        );
        None
    }

    /// Full-scan violation selection by smallest variable index — the
    /// Bland's-rule fallback used after the anti-cycling switch.
    fn scan_violating(&self) -> Option<(usize, bool, f64)> {
        let mut best: Option<(usize, bool, f64)> = None;
        for row in 0..self.rows.len() {
            let var = self.row_owner[row];
            if let Some((needs_increase, magnitude)) = self.violation_of(var) {
                let better = match best {
                    Some((best_var, _, _)) => var < best_var,
                    None => true,
                };
                if better {
                    best = Some((var, needs_increase, magnitude));
                }
            }
        }
        best
    }

    /// Theory-level bound propagation (Dutertre–de Moura bound refinement,
    /// both row directions): derives implied bounds from the asserted ones by
    /// interval-propagating each tableau row `y = Σ aⱼ·xⱼ`, seeded by the
    /// variables whose bounds tightened since the last call and chased to a
    /// fixpoint through a worklist (a bound derived on one variable can
    /// enable derivations in every row sharing it).
    ///
    /// Every derived bound is installed like an asserted bound (trail entry,
    /// assignment repair, violation-queue event) but carries its node of the
    /// bound implication graph: the set of *asserted* tags it follows from. Derived bounds are padded outward
    /// by a small margin so float round-off in the interval sums cannot make
    /// them unsound, and appended to `out` so the DPLL(T) driver can fix the
    /// truth value of theory atoms decided by them.
    ///
    /// At most `limit` bounds are derived per call; the worklist is dropped
    /// when the cap is reached (propagation is a pruning heuristic — dropping
    /// work is always sound).
    ///
    /// # Errors
    ///
    /// Returns a conflict explanation (asserted tags only) when a derived
    /// bound contradicts an installed bound of the opposite kind — a theory
    /// conflict discovered without a single pivot.
    pub fn propagate_bounds(
        &mut self,
        limit: usize,
        out: &mut Vec<ImpliedBound>,
    ) -> Result<(), Vec<usize>> {
        let mut rows: Vec<u32> = Vec::new();
        for _wave in 0..PROP_MAX_DEPTH {
            // One breadth-first wave: every row touched by the bounds
            // tightened in the previous wave (or, at depth 0, since the last
            // call), each scanned once per wave no matter how many of its
            // members went dirty.
            let frontier = std::mem::take(&mut self.dirty);
            if frontier.is_empty() {
                return Ok(());
            }
            rows.clear();
            for var in frontier {
                let v = var as usize;
                match self.basic_row[v] {
                    // A basic variable's bound constrains its own defining row.
                    Some(row) => rows.push(row as u32),
                    // A nonbasic variable's bound feeds every row mentioning it.
                    None => {
                        self.compact_col(v);
                        rows.extend_from_slice(&self.cols[v]);
                    }
                }
            }
            rows.sort_unstable();
            rows.dedup();
            for i in 0..rows.len() {
                if out.len() >= limit {
                    self.dirty.clear();
                    return Ok(());
                }
                if let Err(conflict) = self.propagate_row(rows[i] as usize, out) {
                    self.dirty.clear();
                    return Err(conflict);
                }
            }
        }
        // Bounds installed by the deepest wave stay on the worklist for the
        // next call rather than seeding further work now.
        Ok(())
    }

    /// Maximum of the contribution `coeff · var` under the installed bounds,
    /// with the bound that attains it.
    fn max_contribution(&self, var: usize, coeff: f64) -> Option<&Bound> {
        if coeff > 0.0 {
            self.upper[var].as_ref()
        } else {
            self.lower[var].as_ref()
        }
    }

    /// Minimum counterpart of [`Simplex::max_contribution`].
    fn min_contribution(&self, var: usize, coeff: f64) -> Option<&Bound> {
        if coeff > 0.0 {
            self.lower[var].as_ref()
        } else {
            self.upper[var].as_ref()
        }
    }

    /// Term `i` of row `r` viewed as the relation `0 = Σᵢ cᵢ·vᵢ`: index 0 is
    /// the row owner carrying coefficient −1, the rest are the stored
    /// entries. Both the derivation pass and the explanation gathering read
    /// the row through this single accessor so they can never disagree on
    /// the owner convention.
    fn row_term(&self, r: usize, i: usize) -> (usize, f64) {
        if i == 0 {
            (self.row_owner[r], -1.0)
        } else {
            let (v, c) = self.rows[r].entries[i - 1];
            (v as usize, c)
        }
    }

    /// Interval-propagates one row (see [`Simplex::propagate_bounds`]).
    ///
    /// The row `y = Σ aⱼ·xⱼ` is treated as the relation `0 = Σᵢ cᵢ·vᵢ` with
    /// the owner `y` carrying coefficient −1. From the interval sums
    /// `HI = Σ max(cᵢ·vᵢ)` and `LO = Σ min(cᵢ·vᵢ)`, every term with all
    /// *other* terms bounded on the relevant side gets
    /// `cₜ·vₜ ≥ −(HI − max(cₜ·vₜ))` and `cₜ·vₜ ≤ −(LO − min(cₜ·vₜ))`.
    fn propagate_row(&mut self, r: usize, out: &mut Vec<ImpliedBound>) -> Result<(), Vec<usize>> {
        // Pass 1: interval sums over all terms, tracking how many terms miss
        // the needed bound (two missing on both sides ⇒ nothing derivable).
        let mut hi = Delta::real(0.0);
        let mut hi_missing = 0usize;
        let mut hi_missing_var = usize::MAX;
        let mut lo = Delta::real(0.0);
        let mut lo_missing = 0usize;
        let mut lo_missing_var = usize::MAX;
        let num_terms = self.rows[r].entries.len() + 1;
        for i in 0..num_terms {
            let (v, c) = self.row_term(r, i);
            match self.max_contribution(v, c) {
                Some(bound) => hi = hi.add(bound.value.scale(c)),
                None => {
                    hi_missing += 1;
                    hi_missing_var = v;
                }
            }
            match self.min_contribution(v, c) {
                Some(bound) => lo = lo.add(bound.value.scale(c)),
                None => {
                    lo_missing += 1;
                    lo_missing_var = v;
                }
            }
            if hi_missing > 1 && lo_missing > 1 {
                return Ok(());
            }
        }
        // Pass 2: derive a bound for every term the sums cover.
        for i in 0..num_terms {
            let (v, c) = self.row_term(r, i);
            if hi_missing == 0 || (hi_missing == 1 && hi_missing_var == v) {
                let rest = if hi_missing == 1 {
                    hi
                } else {
                    // Invariant: `hi_missing == 0` means pass 1 saw a
                    // max-contribution for every term, and bounds are only
                    // tightened (never removed) between the passes.
                    let own = self
                        .max_contribution(v, c)
                        .expect("no bound missing on the HI side")
                        .value
                        .scale(c);
                    hi.sub(own)
                };
                // c·v ≥ −rest: a lower bound for c > 0, an upper bound for c < 0.
                let value = rest.scale(-1.0 / c);
                self.install_implied(r, v, c > 0.0, value, false, out)?;
            }
            if lo_missing == 0 || (lo_missing == 1 && lo_missing_var == v) {
                let rest = if lo_missing == 1 {
                    lo
                } else {
                    // Invariant: mirror of the HI-side case above.
                    let own = self
                        .min_contribution(v, c)
                        .expect("no bound missing on the LO side")
                        .value
                        .scale(c);
                    lo.sub(own)
                };
                // c·v ≤ −rest: an upper bound for c > 0, a lower bound for c < 0.
                let value = rest.scale(-1.0 / c);
                self.install_implied(r, v, c <= 0.0, value, true, out)?;
            }
        }
        Ok(())
    }

    /// Installs one derived bound if it improves on the installed one:
    /// gathers the implication-graph explanation from the contributing bounds
    /// of row `r` (the `lo_side` flag selects which bound of each other term
    /// contributed), pads the value outward, and records the result in `out`.
    fn install_implied(
        &mut self,
        r: usize,
        var: usize,
        is_lower: bool,
        value: Delta,
        lo_side: bool,
        out: &mut Vec<ImpliedBound>,
    ) -> Result<(), Vec<usize>> {
        // Pad outward before the improvement test so borderline derivations
        // are dropped rather than installed as zero-information bounds.
        let value = if is_lower {
            Delta::with_delta(value.real - PROP_PAD, value.delta)
        } else {
            Delta::with_delta(value.real + PROP_PAD, value.delta)
        };
        // Worthwhile-improvement test: a fresh bound always is; an existing
        // one must be beaten by at least `PROP_IMPROVE` in the real part
        // (delta-only improvements are below the literal-fixing clearance
        // and only feed re-derivation churn).
        let tighter = if is_lower {
            match &self.lower[var] {
                Some(existing) => value.real > existing.value.real + PROP_IMPROVE,
                None => true,
            }
        } else {
            match &self.upper[var] {
                Some(existing) => value.real < existing.value.real - PROP_IMPROVE,
                None => true,
            }
        };
        if !tighter {
            return Ok(());
        }
        // Explanation: the bound of every *other* term that fed the interval
        // sum, flattened to asserted tags.
        let mut tags: Vec<usize> = Vec::new();
        for i in 0..self.rows[r].entries.len() + 1 {
            let (u, cu) = self.row_term(r, i);
            if u == var {
                continue;
            }
            let contribution = if lo_side {
                self.min_contribution(u, cu)
            } else {
                self.max_contribution(u, cu)
            };
            // Invariant: a derivation for `var` only exists when every other
            // term contributed to the interval sum (the missing-term
            // accounting in `propagate_row`), so its bound is installed.
            contribution
                .expect("contributing term is bounded")
                .reason
                .push_tags(&mut tags);
        }
        tags.sort_unstable();
        tags.dedup();
        let explanation: Rc<[usize]> = tags.into();
        let installed = if is_lower {
            self.set_lower(var, value, BoundReason::Derived(explanation.clone()))?
        } else {
            self.set_upper(var, value, BoundReason::Derived(explanation.clone()))?
        };
        if installed {
            out.push(ImpliedBound {
                var,
                is_upper: !is_lower,
                value,
                explanation,
            });
        }
        Ok(())
    }

    /// Pivots `basic` (leaving) with `entering` (nonbasic) and sets the
    /// leaving variable's assignment to `target` (the bound it violated).
    fn pivot_and_update(&mut self, basic: usize, entering: usize, target: Delta) {
        self.pivots += 1;
        #[cfg(debug_assertions)]
        if std::env::var("SIMPLEX_TRACE").is_ok() {
            eprintln!(
                "PIVOT #{} basic={basic} entering={entering} target={target}",
                self.pivots
            );
            for (r, rw) in self.rows.iter().enumerate() {
                eprintln!("  row {r} owner {}: {:?}", self.row_owner[r], rw.entries);
            }
            for v in 0..self.num_vars {
                eprintln!("  x{v} = {} cols {:?}", self.assignment[v], self.cols[v]);
            }
        }
        // Invariant: the solve loop resolved `basic`'s row (with a defensive
        // divergence fallback) before selecting `entering` from it.
        let row = self.basic_row[basic].expect("leaving variable is basic");
        let coeff = self.rows[row].coeff(entering);
        // Sub-PIVOT_EPS pivots are legal (the solve loop falls back to them
        // when nothing better can help) — only exact zero is a logic error.
        debug_assert!(coeff != 0.0, "pivot coefficient must be non-zero");

        // Snapshot the (compacted) column of the entering variable: exactly
        // the rows whose assignment and coefficients the pivot touches.
        self.compact_col(entering);
        let col = std::mem::take(&mut self.cols[entering]);

        // Assignment update (using the *old* tableau rows): move the entering
        // variable by θ so that the leaving variable lands exactly on `target`,
        // and propagate the move to every other basic variable.
        let theta = target.sub(self.assignment[basic]).scale(1.0 / coeff);
        self.assignment[basic] = target;
        self.assignment[entering] = self.assignment[entering].add(theta);
        for &r in &col {
            let r = r as usize;
            if r == row {
                continue;
            }
            let c = self.rows[r].coeff(entering);
            let owner = self.row_owner[r];
            self.assignment[owner] = self.assignment[owner].add(theta.scale(c));
        }

        // Rewrite the pivot row to express `entering` in terms of the others:
        // basic = Σ a_j x_j  ⇒  entering = (basic − Σ_{j≠entering} a_j x_j) / a_entering.
        let old_entries = std::mem::take(&mut self.rows[row].entries);
        let mut new_entries: Vec<(u32, f64)> = Vec::with_capacity(old_entries.len());
        let basic_u32 = basic as u32;
        let mut basic_inserted = false;
        for (v, value) in old_entries {
            if v as usize == entering {
                continue;
            }
            if !basic_inserted && v > basic_u32 {
                new_entries.push((basic_u32, 1.0 / coeff));
                basic_inserted = true;
            }
            new_entries.push((v, -value / coeff));
        }
        if !basic_inserted {
            new_entries.push((basic_u32, 1.0 / coeff));
        }
        self.rows[row].entries = new_entries;
        self.row_owner[row] = entering;
        self.basic_row[entering] = Some(row);
        self.basic_row[basic] = None;
        self.cols[basic].push(row as u32);

        // Substitute the new definition of `entering` into the other rows.
        let pivot_entries = self.rows[row].entries.clone();
        for &r in &col {
            let r = r as usize;
            if r == row {
                continue;
            }
            let factor = self.rows[r].coeff(entering);
            if factor == 0.0 {
                continue;
            }
            self.merge_row(r, entering, factor, &pivot_entries);
        }
        // After substitution no row mentions `entering` any more (it is
        // basic: its own row defines it and was rewritten above).

        // Violation-queue maintenance: the entering variable (now basic) may
        // have been pushed past one of its own bounds by θ, and every row in
        // the touched column had its owner's assignment shifted.
        self.enqueue_if_violating(entering);
        for &r in &col {
            let r = r as usize;
            if r == row {
                continue;
            }
            self.enqueue_if_violating(self.row_owner[r]);
        }
        #[cfg(debug_assertions)]
        self.audit("after pivot");
    }

    /// Replaces row `r` by `row_r − (entry for `entering`) + factor · pivot`,
    /// i.e. eliminates `entering` by substituting its definition. Both entry
    /// lists are sorted, so this is a linear sorted merge.
    fn merge_row(&mut self, r: usize, entering: usize, factor: f64, pivot_entries: &[(u32, f64)]) {
        let current = std::mem::take(&mut self.rows[r].entries);
        let mut merged: Vec<(u32, f64)> = Vec::with_capacity(current.len() + pivot_entries.len());
        let mut a = current.iter().peekable();
        let mut b = pivot_entries.iter().peekable();
        let entering = entering as u32;
        loop {
            match (a.peek(), b.peek()) {
                (Some(&&(va, ca)), Some(&&(vb, cb))) => match va.cmp(&vb) {
                    Ordering::Less => {
                        a.next();
                        if va != entering {
                            merged.push((va, ca));
                        }
                    }
                    Ordering::Greater => {
                        b.next();
                        let c = factor * cb;
                        if c != 0.0 {
                            merged.push((vb, c));
                            self.cols[vb as usize].push(r as u32);
                        }
                    }
                    Ordering::Equal => {
                        a.next();
                        b.next();
                        // The only place cancellation happens: drop residue
                        // below the noise floor instead of storing a tiny
                        // garbage coefficient a later pivot could divide by.
                        let c = ca + factor * cb;
                        if va != entering && c.abs() > DROP_EPS {
                            merged.push((va, c));
                        }
                    }
                },
                (Some(&&(va, ca)), None) => {
                    a.next();
                    if va != entering {
                        merged.push((va, ca));
                    }
                }
                (None, Some(&&(vb, cb))) => {
                    b.next();
                    let c = factor * cb;
                    if c != 0.0 {
                        merged.push((vb, c));
                        self.cols[vb as usize].push(r as u32);
                    }
                }
                (None, None) => break,
            }
        }
        self.rows[r].entries = merged;
    }

    /// Maximises `objective` starting from the current feasible assignment.
    ///
    /// The caller must have established feasibility (a successful
    /// [`Simplex::solve`]) first.
    pub fn maximize(&mut self, objective: &LinExpr) -> ObjectiveOutcome {
        // Guard against cycling with a generous pivot budget; Bland's rule is
        // not applied to the optimisation phase, so we stop at the budget and
        // report the best point found (still feasible, possibly sub-optimal).
        let max_pivots = 200 * (self.num_vars + 1);
        let mut gradient: Vec<(u32, f64)> = Vec::new();
        for _ in 0..max_pivots {
            // Express the objective gradient over nonbasic variables. The
            // objective and the tableau rows are sparse, so the gradient is
            // accumulated as sorted `(variable, coefficient)` pairs instead
            // of a dense `num_vars`-sized vector per iteration.
            gradient.clear();
            for (var, coeff) in objective.terms() {
                let v = var.index();
                match self.basic_row[v] {
                    None => gradient.push((v as u32, coeff)),
                    Some(row) => {
                        for (w, row_coeff) in self.rows[row].iter() {
                            debug_assert!(self.basic_row[w].is_none());
                            gradient.push((w as u32, coeff * row_coeff));
                        }
                    }
                }
            }
            gradient.sort_unstable_by_key(|&(v, _)| v);
            // Merge duplicate variables in place (sorted run compaction).
            let mut merged = 0usize;
            for i in 0..gradient.len() {
                if merged > 0 && gradient[merged - 1].0 == gradient[i].0 {
                    gradient[merged - 1].1 += gradient[i].1;
                } else {
                    gradient[merged] = gradient[i];
                    merged += 1;
                }
            }
            gradient.truncate(merged);

            // Find an improving nonbasic direction (Bland's rule on index —
            // the entries are sorted, so the scan order matches the dense
            // implementation's).
            let mut entering: Option<(usize, bool)> = None;
            for &(var, g) in &gradient {
                let var = var as usize;
                if self.basic_row[var].is_some() {
                    continue;
                }
                if g > 1e-12 && self.can_increase(var) {
                    entering = Some((var, true));
                    break;
                }
                if g < -1e-12 && self.can_decrease(var) {
                    entering = Some((var, false));
                    break;
                }
            }
            let Some((entering, increase)) = entering else {
                let assignment = self.concrete_assignment();
                let value = objective.evaluate(&assignment);
                return ObjectiveOutcome::Optimal(value, assignment);
            };

            // Ratio test: how far can the entering variable move before it or
            // a basic variable hits a bound?
            let mut limit: Option<(Delta, Option<usize>)> = None; // (max |step|, blocking basic)
            let own_bound = if increase {
                self.upper[entering]
                    .as_ref()
                    .map(|b| b.value.sub(self.assignment[entering]))
            } else {
                self.lower[entering]
                    .as_ref()
                    .map(|b| self.assignment[entering].sub(b.value))
            };
            if let Some(step) = own_bound {
                limit = Some((step, None));
            }
            self.compact_col(entering);
            for i in 0..self.cols[entering].len() {
                let r = self.cols[entering][i] as usize;
                let coeff = self.rows[r].coeff(entering);
                let owner = self.row_owner[r];
                // The owner's value changes by coeff · step · direction.
                let delta_per_step = if increase { coeff } else { -coeff };
                let bound = if delta_per_step > 0.0 {
                    self.upper[owner]
                        .as_ref()
                        .map(|b| b.value.sub(self.assignment[owner]))
                } else {
                    self.lower[owner]
                        .as_ref()
                        .map(|b| self.assignment[owner].sub(b.value))
                };
                if let Some(room) = bound {
                    let step = room.scale(1.0 / delta_per_step.abs());
                    let tighter = match &limit {
                        Some((best, _)) => step.lt(best),
                        None => true,
                    };
                    if tighter {
                        limit = Some((step, Some(owner)));
                    }
                }
            }

            match limit {
                None => return ObjectiveOutcome::Unbounded,
                Some((step, blocking)) => {
                    let signed_step = if increase { step } else { step.scale(-1.0) };
                    let new_value = self.assignment[entering].add(signed_step);
                    self.update_nonbasic(entering, new_value);
                    if let Some(blocking_var) = blocking {
                        // Pivot so the blocking basic variable leaves the basis;
                        // its assignment is already exactly on the bound.
                        let target = self.assignment[blocking_var];
                        self.pivot_and_update(blocking_var, entering, target);
                    }
                }
            }
        }
        let assignment = self.concrete_assignment();
        let value = objective.evaluate(&assignment);
        ObjectiveOutcome::Optimal(value, assignment)
    }

    /// Debug-build invariant audit: every row references only nonbasic
    /// variables and is listed in their column index, every basic variable's
    /// assignment equals its row value, and every nonbasic variable sits
    /// within its bounds.
    #[cfg(debug_assertions)]
    #[allow(dead_code)]
    fn audit(&self, context: &str) {
        for (r, row) in self.rows.iter().enumerate() {
            let owner = self.row_owner[r];
            assert_eq!(self.basic_row[owner], Some(r), "{context}: owner not basic");
            for (v, c) in row.iter() {
                assert!(
                    self.basic_row[v].is_none(),
                    "{context}: row {r} references basic variable {v}"
                );
                assert!(c != 0.0, "{context}: stored zero coefficient");
                assert!(
                    self.cols[v].contains(&(r as u32)),
                    "{context}: column index of {v} misses row {r}"
                );
            }
            let value = self.row_value(r);
            let drift = (value.real - self.assignment[owner].real).abs()
                + (value.delta - self.assignment[owner].delta).abs();
            // Loose tolerance relative to the row's term magnitudes: pivot
            // arithmetic legitimately accumulates float error at the scale of
            // *historical* intermediate rows (sub-PIVOT_EPS fallback pivots
            // amplify by up to ~1/coeff before later pivots shrink the row
            // back), which the current magnitude cannot bound tightly; the
            // caller's validation + rebuild machinery owns numerical
            // correctness. The audit exists to catch *logic* bugs — e.g.
            // double-counted column updates — which drift by whole terms,
            // orders of magnitude beyond this bound. (Half the magnitude
            // rather than a tenth: the violation-queue pivot order reaches
            // amplified-row states the old largest-violation rescan did not,
            // with relative drift observed up to ~13% on the T=50 VSC
            // queries.)
            let magnitude: f64 = row
                .iter()
                .map(|(v, c)| {
                    c.abs() * (self.assignment[v].real.abs() + self.assignment[v].delta.abs())
                })
                .sum();
            assert!(
                drift <= 0.5 * (1.0 + magnitude),
                "{context}: basic {owner} drifted from its row by {drift} (magnitude {magnitude})"
            );
        }
        for v in 0..self.num_vars {
            if self.basic_row[v].is_some() {
                continue;
            }
            if let Some(b) = &self.lower[v] {
                assert!(
                    !self.assignment[v].lt(&b.value),
                    "{context}: nonbasic {v} below lower bound"
                );
            }
            if let Some(b) = &self.upper[v] {
                assert!(
                    !self.assignment[v].gt(&b.value),
                    "{context}: nonbasic {v} above upper bound"
                );
            }
        }
    }

    /// Concretises the δ-assignment of the problem variables into plain `f64`
    /// values by substituting a positive ε small enough to preserve every
    /// strict bound.
    pub fn concrete_assignment(&self) -> Vec<f64> {
        let mut epsilon: f64 = 1e-6;
        for var in 0..self.num_vars {
            let value = self.assignment[var];
            if let Some(lower) = &self.lower[var] {
                // value ≥ lower in δ-arithmetic; find ε keeping that true in ℝ.
                let dr = value.real - lower.value.real;
                let dd = lower.value.delta - value.delta;
                if dd > 0.0 && dr > 0.0 {
                    epsilon = epsilon.min(dr / dd);
                }
            }
            if let Some(upper) = &self.upper[var] {
                let dr = upper.value.real - value.real;
                let dd = value.delta - upper.value.delta;
                if dd > 0.0 && dr > 0.0 {
                    epsilon = epsilon.min(dr / dd);
                }
            }
        }
        (0..self.num_problem_vars)
            .map(|v| self.assignment[v].concretize(epsilon))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::VarPool;

    fn vars(n: usize) -> (VarPool, Vec<crate::VarId>) {
        let mut pool = VarPool::new();
        let ids = pool.fresh_block("x", n);
        (pool, ids)
    }

    #[test]
    fn delta_arithmetic_and_ordering() {
        let a = Delta::real(1.0);
        let b = Delta::with_delta(1.0, -1.0);
        assert!(b.lt(&a));
        assert!(a.gt(&b));
        assert_eq!(a.add(b), Delta::with_delta(2.0, -1.0));
        assert_eq!(a.sub(b), Delta::with_delta(0.0, 1.0));
        assert_eq!(b.scale(2.0), Delta::with_delta(2.0, -2.0));
        assert!((b.concretize(0.001) - 0.999).abs() < 1e-12);
    }

    #[test]
    fn feasible_single_variable_bounds() {
        let (pool, v) = vars(1);
        let constraints = vec![
            (LinExpr::var(v[0]).ge(1.0), 0),
            (LinExpr::var(v[0]).le(2.0), 1),
        ];
        match Simplex::check(pool.len(), &constraints) {
            SimplexResult::Feasible(model) => {
                assert!(model[0] >= 1.0 - 1e-9 && model[0] <= 2.0 + 1e-9);
            }
            other => panic!("expected feasible, got {other:?}"),
        }
    }

    #[test]
    fn infeasible_single_variable_bounds_explained() {
        let (pool, v) = vars(1);
        let constraints = vec![
            (LinExpr::var(v[0]).ge(3.0), 7),
            (LinExpr::var(v[0]).le(2.0), 9),
        ];
        match Simplex::check(pool.len(), &constraints) {
            SimplexResult::Infeasible(mut tags) => {
                tags.sort_unstable();
                assert_eq!(tags, vec![7, 9]);
            }
            other => panic!("expected infeasible, got {other:?}"),
        }
    }

    #[test]
    fn feasible_system_with_rows() {
        let (pool, v) = vars(2);
        let constraints = vec![
            ((LinExpr::var(v[0]) + LinExpr::var(v[1])).le(4.0), 0),
            ((LinExpr::var(v[0]) - LinExpr::var(v[1])).ge(-1.0), 1),
            (LinExpr::var(v[0]).ge(0.5), 2),
            (LinExpr::var(v[1]).ge(1.0), 3),
        ];
        match Simplex::check(pool.len(), &constraints) {
            SimplexResult::Feasible(model) => {
                for (c, _) in &constraints {
                    assert!(c.holds(&model), "violated: {c} by {model:?}");
                }
            }
            other => panic!("expected feasible, got {other:?}"),
        }
    }

    #[test]
    fn infeasible_system_with_rows_has_small_explanation() {
        let (pool, v) = vars(2);
        let constraints = vec![
            ((LinExpr::var(v[0]) + LinExpr::var(v[1])).le(2.0), 0),
            (LinExpr::var(v[0]).ge(1.5), 1),
            (LinExpr::var(v[1]).ge(1.0), 2),
            (LinExpr::var(v[0]).le(100.0), 3), // irrelevant
        ];
        match Simplex::check(pool.len(), &constraints) {
            SimplexResult::Infeasible(tags) => {
                assert!(tags.contains(&0));
                assert!(!tags.contains(&3), "irrelevant constraint in explanation");
            }
            other => panic!("expected infeasible, got {other:?}"),
        }
    }

    #[test]
    fn strict_inequalities_are_respected() {
        let (pool, v) = vars(1);
        // x < 1 ∧ x > 0.999999: feasible only strictly between the bounds.
        let constraints = vec![
            (LinExpr::var(v[0]).lt(1.0), 0),
            (LinExpr::var(v[0]).gt(0.999_999), 1),
        ];
        match Simplex::check(pool.len(), &constraints) {
            SimplexResult::Feasible(model) => {
                assert!(model[0] < 1.0);
                assert!(model[0] > 0.999_999);
            }
            other => panic!("expected feasible, got {other:?}"),
        }
    }

    #[test]
    fn contradictory_strict_inequalities_are_infeasible() {
        let (pool, v) = vars(1);
        let constraints = vec![
            (LinExpr::var(v[0]).lt(1.0), 0),
            (LinExpr::var(v[0]).gt(1.0), 1),
        ];
        assert!(!Simplex::check(pool.len(), &constraints).is_feasible());
        // x <= 1 && x >= 1 is feasible (x = 1).
        let weak = vec![
            (LinExpr::var(v[0]).le(1.0), 0),
            (LinExpr::var(v[0]).ge(1.0), 1),
        ];
        assert!(Simplex::check(pool.len(), &weak).is_feasible());
    }

    #[test]
    fn equality_constraints() {
        let (pool, v) = vars(2);
        let constraints = vec![
            ((LinExpr::var(v[0]) + LinExpr::var(v[1])).eq_to(3.0), 0),
            ((LinExpr::var(v[0]) - LinExpr::var(v[1])).eq_to(1.0), 1),
        ];
        match Simplex::check(pool.len(), &constraints) {
            SimplexResult::Feasible(model) => {
                assert!((model[0] - 2.0).abs() < 1e-6);
                assert!((model[1] - 1.0).abs() < 1e-6);
            }
            other => panic!("expected feasible, got {other:?}"),
        }
    }

    #[test]
    fn negative_coefficient_single_variable_constraint() {
        let (pool, v) = vars(1);
        // -2x <= -4  ⇔  x >= 2.
        let constraints = vec![
            (LinExpr::term(v[0], -2.0).le(-4.0), 0),
            (LinExpr::var(v[0]).le(5.0), 1),
        ];
        match Simplex::check(pool.len(), &constraints) {
            SimplexResult::Feasible(model) => assert!(model[0] >= 2.0 - 1e-9),
            other => panic!("expected feasible, got {other:?}"),
        }
    }

    #[test]
    fn maximize_bounded_objective() {
        let (pool, v) = vars(2);
        let constraints = vec![
            ((LinExpr::var(v[0]) + LinExpr::var(v[1])).le(4.0), 0),
            (LinExpr::var(v[0]).ge(0.0), 1),
            (LinExpr::var(v[1]).ge(0.0), 2),
            (LinExpr::var(v[0]).le(3.0), 3),
        ];
        let objective = LinExpr::var(v[0]) * 2.0 + LinExpr::var(v[1]);
        match Simplex::check_and_maximize(pool.len(), &constraints, &objective).unwrap() {
            ObjectiveOutcome::Optimal(value, model) => {
                // Optimum at x0 = 3, x1 = 1 → objective 7.
                assert!((value - 7.0).abs() < 1e-6, "value {value}, model {model:?}");
            }
            ObjectiveOutcome::Unbounded => panic!("objective should be bounded"),
        }
    }

    #[test]
    fn maximize_detects_unbounded_objective() {
        let (pool, v) = vars(1);
        let constraints = vec![(LinExpr::var(v[0]).ge(0.0), 0)];
        let objective = LinExpr::var(v[0]);
        match Simplex::check_and_maximize(pool.len(), &constraints, &objective).unwrap() {
            ObjectiveOutcome::Unbounded => {}
            other => panic!("expected unbounded, got {other:?}"),
        }
    }

    #[test]
    fn maximize_reports_infeasible_constraints() {
        let (pool, v) = vars(1);
        let constraints = vec![
            (LinExpr::var(v[0]).ge(2.0), 0),
            (LinExpr::var(v[0]).le(1.0), 1),
        ];
        let objective = LinExpr::var(v[0]);
        assert!(Simplex::check_and_maximize(pool.len(), &constraints, &objective).is_err());
    }

    #[test]
    fn larger_chain_of_constraints_is_feasible() {
        // x_{k+1} = 0.9 x_k + u_k encoded as equalities, with bounded u and a
        // reachability-style requirement on the final state.
        let mut pool = VarPool::new();
        let xs = pool.fresh_block("x", 6);
        let us = pool.fresh_block("u", 5);
        let mut constraints = Vec::new();
        let mut tag = 0;
        constraints.push((LinExpr::var(xs[0]).eq_to(0.0), tag));
        for k in 0..5 {
            tag += 1;
            let expr = LinExpr::var(xs[k + 1]) - LinExpr::term(xs[k], 0.9) - LinExpr::var(us[k]);
            constraints.push((expr.eq_to(0.0), tag));
            tag += 1;
            constraints.push((LinExpr::var(us[k]).le(1.0), tag));
            tag += 1;
            constraints.push((LinExpr::var(us[k]).ge(-1.0), tag));
        }
        tag += 1;
        constraints.push((LinExpr::var(xs[5]).ge(3.0), tag));
        match Simplex::check(pool.len(), &constraints) {
            SimplexResult::Feasible(model) => {
                for (c, _) in &constraints {
                    assert!(c.holds(&model), "violated {c}");
                }
            }
            other => panic!("expected feasible, got {other:?}"),
        }
        // Requiring the final state to exceed the reachable maximum (≈ 4.1)
        // makes the system infeasible.
        let mut impossible = constraints.clone();
        impossible.push((LinExpr::var(xs[5]).ge(10.0), tag + 1));
        assert!(!Simplex::check(pool.len(), &impossible).is_feasible());
    }

    #[test]
    fn push_pop_retracts_bounds() {
        let (pool, v) = vars(2);
        let mut simplex = Simplex::new(pool.len());
        let sum = LinExpr::var(v[0]) + LinExpr::var(v[1]);
        simplex.assert_atom(&sum.clone().le(2.0), 0).unwrap();
        simplex.assert_atom(&LinExpr::var(v[0]).ge(0.5), 1).unwrap();
        assert!(simplex.solve().is_ok());
        let mark = simplex.mark();
        // Push bounds that make the system infeasible.
        simplex.assert_atom(&LinExpr::var(v[1]).ge(1.9), 2).unwrap();
        assert!(simplex.solve().is_err());
        // Pop back: feasibility is restored without rebuilding anything.
        simplex.pop_to(mark);
        assert!(simplex.solve().is_ok());
        let model = simplex.concrete_assignment();
        assert!(model[0] >= 0.5 - 1e-9);
        assert!(model[0] + model[1] <= 2.0 + 1e-9);
        // The retracted bound no longer constrains the system.
        simplex.assert_atom(&LinExpr::var(v[1]).le(0.0), 3).unwrap();
        assert!(simplex.solve().is_ok());
    }

    #[test]
    fn slack_rows_are_shared_between_constraints_on_the_same_expr() {
        let (pool, v) = vars(2);
        let mut simplex = Simplex::new(pool.len());
        let sum = LinExpr::var(v[0]) + LinExpr::var(v[1]);
        let (s1, _) = simplex.define(sum.clone().le(2.0).expr());
        let (s2, _) = simplex.define(sum.clone().ge(-2.0).expr());
        assert_eq!(s1, s2, "same expression must share one slack row");
        let diff = LinExpr::var(v[0]) - LinExpr::var(v[1]);
        let (s3, _) = simplex.define(diff.le(1.0).expr());
        assert_ne!(s1, s3);
    }

    #[test]
    fn pivot_counter_advances() {
        let (pool, v) = vars(2);
        let mut simplex = Simplex::new(pool.len());
        let sum = LinExpr::var(v[0]) + LinExpr::var(v[1]);
        simplex.assert_atom(&sum.ge(3.0), 0).unwrap();
        simplex.assert_atom(&LinExpr::var(v[0]).le(1.0), 1).unwrap();
        simplex.assert_atom(&LinExpr::var(v[1]).le(4.0), 2).unwrap();
        assert!(simplex.solve().is_ok());
        assert!(simplex.pivots() > 0, "repairing the slack requires a pivot");
    }

    #[test]
    fn define_after_pivoting_substitutes_basic_variables() {
        let (pool, v) = vars(2);
        let mut simplex = Simplex::new(pool.len());
        let sum = LinExpr::var(v[0]) + LinExpr::var(v[1]);
        simplex.assert_atom(&sum.ge(3.0), 0).unwrap();
        simplex.assert_atom(&LinExpr::var(v[0]).le(1.0), 1).unwrap();
        assert!(simplex.solve().is_ok());
        // A new expression mentioning a (possibly now-basic) variable must
        // still evaluate consistently.
        let diff = LinExpr::var(v[0]) - LinExpr::var(v[1]);
        simplex.assert_atom(&diff.le(-1.0), 2).unwrap();
        assert!(simplex.solve().is_ok());
        let model = simplex.concrete_assignment();
        assert!(model[0] + model[1] >= 3.0 - 1e-9);
        assert!(model[0] <= 1.0 + 1e-9);
        assert!(model[0] - model[1] <= -1.0 + 1e-9);
    }

    #[test]
    fn tiny_coefficients_do_not_fabricate_infeasibility() {
        // Coefficients below PIVOT_EPS but above LinExpr's 1e-12 floor are
        // genuine (e.g. geometrically decayed dynamics entries): the only
        // helpful direction being tiny must not yield a bogus UNSAT.
        let (pool, v) = vars(2);
        let expr = LinExpr::term(v[0], 1e-8) + LinExpr::term(v[1], 1e-8);
        let constraints = vec![(expr.ge(1.0), 0)];
        match Simplex::check(pool.len(), &constraints) {
            SimplexResult::Feasible(model) => {
                assert!(1e-8 * (model[0] + model[1]) >= 1.0 - 1e-6);
            }
            other => panic!("feasible system declared {other:?}"),
        }
        // The genuinely blocked variant still explains correctly.
        let expr = LinExpr::term(v[0], 1e-8);
        let blocked = vec![(expr.ge(1.0), 0), (LinExpr::var(v[0]).le(0.0), 1)];
        match Simplex::check(pool.len(), &blocked) {
            SimplexResult::Infeasible(mut tags) => {
                tags.sort_unstable();
                assert_eq!(tags, vec![0, 1]);
            }
            other => panic!("blocked system declared {other:?}"),
        }
    }

    #[test]
    fn constant_expression_constraints_are_decided() {
        // `0 <= -1` (after constant folding) is infeasible on its own.
        let (pool, _) = vars(1);
        let infeasible = vec![(LinExpr::constant(3.0).le(1.0), 5)];
        match Simplex::check(pool.len(), &infeasible) {
            SimplexResult::Infeasible(tags) => assert_eq!(tags, vec![5]),
            other => panic!("expected infeasible, got {other:?}"),
        }
        let feasible = vec![(LinExpr::constant(1.0).le(3.0), 0)];
        assert!(Simplex::check(pool.len(), &feasible).is_feasible());
    }
}
