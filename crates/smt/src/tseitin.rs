//! Tseitin conversion of [`Formula`]s into CNF over Boolean variables.
//!
//! Theory atoms (linear constraints) are deduplicated and each mapped to a
//! Boolean variable; auxiliary definition variables are introduced for
//! sub-formulas. Equality atoms are rewritten as a conjunction of the two
//! corresponding non-strict inequalities *before* encoding so that the
//! negation of every remaining theory literal is itself an atomic constraint —
//! a property the theory-solver integration relies on.

use std::collections::HashMap;

use crate::sat::Lit;
use crate::{Constraint, Formula, RelOp};

/// Incremental CNF builder shared by all assertions of an
/// [`SmtSolver`](crate::SmtSolver).
#[derive(Debug, Default)]
pub struct CnfBuilder {
    /// Deduplicated theory atoms.
    atoms: Vec<Constraint>,
    /// Boolean variable representing atom `i`.
    atom_vars: Vec<usize>,
    /// Reverse map: Boolean variable → atom index.
    var_atom: HashMap<usize, usize>,
    atom_index: HashMap<AtomKey, usize>,
    /// SAT variable backing each free [`Formula::BoolVar`] identifier.
    free_bool_vars: HashMap<u32, usize>,
    /// CNF clauses over Boolean variables.
    clauses: Vec<Vec<Lit>>,
    /// Total number of Boolean variables allocated (atoms + auxiliaries).
    num_bool_vars: usize,
    /// Variable reserved for the constant `true`, allocated lazily.
    true_var: Option<usize>,
}

/// Snapshot of a [`CnfBuilder`]'s state, taken by [`CnfBuilder::mark`] and
/// restored by [`CnfBuilder::release_to`] — the substrate of the solver's
/// `push`/`pop` assertion scopes. A mark records how many atoms, clauses and
/// Boolean variables existed when it was taken; releasing to it removes
/// everything allocated since, including the dedup-map entries pointing at
/// the removed objects (so a constraint first seen inside a released scope
/// is re-encoded from scratch if it reappears later).
#[derive(Debug, Clone, Copy)]
pub struct CnfMark {
    atoms: usize,
    clauses: usize,
    bool_vars: usize,
    had_true_var: bool,
}

impl CnfMark {
    /// Number of theory atoms that existed when the mark was taken.
    pub fn atoms(&self) -> usize {
        self.atoms
    }

    /// Number of Boolean variables that existed when the mark was taken.
    pub fn bool_vars(&self) -> usize {
        self.bool_vars
    }
}

/// Hashable canonical form of a constraint (bit-exact coefficients).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct AtomKey {
    terms: Vec<(u32, u64)>,
    op: RelOp,
    bound: u64,
}

impl AtomKey {
    fn new(constraint: &Constraint) -> Self {
        AtomKey {
            terms: constraint
                .expr()
                .terms()
                .map(|(v, c)| (v.index() as u32, c.to_bits()))
                .collect(),
            op: constraint.op(),
            bound: constraint.bound().to_bits(),
        }
    }
}

impl CnfBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// The deduplicated theory atoms.
    pub fn atoms(&self) -> &[Constraint] {
        &self.atoms
    }

    /// Boolean variable representing atom `atom_idx`.
    ///
    /// # Panics
    ///
    /// Panics if `atom_idx` is out of range.
    pub fn atom_bool_var(&self, atom_idx: usize) -> usize {
        self.atom_vars[atom_idx]
    }

    /// The atom represented by Boolean variable `var`, if any (auxiliary
    /// Tseitin variables return `None`).
    pub fn atom_of_var(&self, var: usize) -> Option<usize> {
        self.var_atom.get(&var).copied()
    }

    /// The CNF clauses produced so far.
    pub fn clauses(&self) -> &[Vec<Lit>] {
        &self.clauses
    }

    /// Total number of Boolean variables referenced by the clauses.
    pub fn num_bool_vars(&self) -> usize {
        self.num_bool_vars
    }

    /// Number of theory atoms.
    pub fn num_atoms(&self) -> usize {
        self.atoms.len()
    }

    /// Encodes `formula` and asserts it (adds a unit clause for its root).
    pub fn assert_formula(&mut self, formula: &Formula) {
        let root = self.encode_inner(formula);
        self.clauses.push(vec![root]);
    }

    /// Takes a snapshot of the builder state for a later
    /// [`CnfBuilder::release_to`].
    pub fn mark(&self) -> CnfMark {
        CnfMark {
            atoms: self.atoms.len(),
            clauses: self.clauses.len(),
            bool_vars: self.num_bool_vars,
            had_true_var: self.true_var.is_some(),
        }
    }

    /// Restores the builder to `mark`: every atom, clause and Boolean
    /// variable allocated since the mark is removed, and the dedup maps are
    /// purged of entries pointing at removed objects. Marks must be released
    /// in LIFO order (releasing an older mark invalidates every younger one).
    pub fn release_to(&mut self, mark: CnfMark) {
        debug_assert!(
            mark.atoms <= self.atoms.len()
                && mark.clauses <= self.clauses.len()
                && mark.bool_vars <= self.num_bool_vars,
            "release_to with a mark younger than the current state"
        );
        self.atoms.truncate(mark.atoms);
        self.atom_vars.truncate(mark.atoms);
        self.clauses.truncate(mark.clauses);
        self.atom_index.retain(|_, idx| *idx < mark.atoms);
        self.var_atom.retain(|var, _| *var < mark.bool_vars);
        self.free_bool_vars.retain(|_, var| *var < mark.bool_vars);
        self.num_bool_vars = mark.bool_vars;
        // `true_var`, once allocated, never changes — so if it was absent at
        // the mark, any current one was allocated inside the released scope.
        if !mark.had_true_var {
            self.true_var = None;
        }
    }

    fn fresh_bool_var(&mut self) -> usize {
        let var = self.num_bool_vars;
        self.num_bool_vars += 1;
        var
    }

    fn atom_var(&mut self, constraint: &Constraint) -> usize {
        let key = AtomKey::new(constraint);
        if let Some(&idx) = self.atom_index.get(&key) {
            return self.atom_vars[idx];
        }
        let idx = self.atoms.len();
        let var = self.fresh_bool_var();
        self.atoms.push(constraint.clone());
        self.atom_vars.push(var);
        self.var_atom.insert(var, idx);
        self.atom_index.insert(key, idx);
        var
    }

    fn true_lit(&mut self) -> Lit {
        let var = match self.true_var {
            Some(v) => v,
            None => {
                let v = self.fresh_bool_var();
                self.true_var = Some(v);
                self.clauses.push(vec![Lit::new(v, true)]);
                v
            }
        };
        Lit::new(var, true)
    }

    fn encode_inner(&mut self, formula: &Formula) -> Lit {
        match formula {
            Formula::True => self.true_lit(),
            Formula::False => self.true_lit().negated(),
            Formula::BoolVar(id) => {
                let var = match self.free_bool_vars.get(id) {
                    Some(&var) => var,
                    None => {
                        let var = self.fresh_bool_var();
                        self.free_bool_vars.insert(*id, var);
                        var
                    }
                };
                Lit::new(var, true)
            }
            Formula::Atom(c) => {
                if c.op() == RelOp::Eq {
                    // x = b  ⇝  (x <= b) ∧ (x >= b)
                    let le = Constraint::new(c.expr().clone(), RelOp::Le, c.bound());
                    let ge = Constraint::new(c.expr().clone(), RelOp::Ge, c.bound());
                    let conj = Formula::And(vec![Formula::Atom(le), Formula::Atom(ge)]);
                    self.encode_inner(&conj)
                } else {
                    Lit::new(self.atom_var(c), true)
                }
            }
            Formula::Not(inner) => self.encode_inner(inner).negated(),
            Formula::And(parts) => {
                let part_lits: Vec<Lit> = parts.iter().map(|p| self.encode_inner(p)).collect();
                let out = Lit::new(self.fresh_bool_var(), true);
                // out → pᵢ for every part, and (p₁ ∧ … ∧ pₙ) → out.
                let mut big = Vec::with_capacity(part_lits.len() + 1);
                for &p in &part_lits {
                    self.clauses.push(vec![out.negated(), p]);
                    big.push(p.negated());
                }
                big.push(out);
                self.clauses.push(big);
                out
            }
            Formula::Or(parts) => {
                let part_lits: Vec<Lit> = parts.iter().map(|p| self.encode_inner(p)).collect();
                let out = Lit::new(self.fresh_bool_var(), true);
                // pᵢ → out for every part, and out → (p₁ ∨ … ∨ pₙ).
                let mut big = Vec::with_capacity(part_lits.len() + 1);
                for &p in &part_lits {
                    self.clauses.push(vec![p.negated(), out]);
                    big.push(p);
                }
                big.push(out.negated());
                self.clauses.push(big);
                out
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sat::SatSolver;
    use crate::{LinExpr, VarPool};

    fn atoms_for_test() -> (VarPool, Constraint, Constraint) {
        let mut pool = VarPool::new();
        let x = pool.fresh("x");
        let y = pool.fresh("y");
        let a = LinExpr::var(x).le(1.0);
        let b = LinExpr::var(y).ge(0.0);
        (pool, a, b)
    }

    /// Solves the propositional abstraction, returning the assignment of every
    /// Boolean variable.
    fn propositional_sat(builder: &CnfBuilder) -> Option<Vec<Option<bool>>> {
        let mut solver = SatSolver::new(builder.num_bool_vars());
        for clause in builder.clauses() {
            solver.add_clause(clause.clone());
        }
        if solver.solve() {
            Some(
                (0..builder.num_bool_vars())
                    .map(|v| solver.var_value(v))
                    .collect(),
            )
        } else {
            None
        }
    }

    #[test]
    fn atoms_are_deduplicated() {
        let (_, a, b) = atoms_for_test();
        let f = Formula::and(vec![
            Formula::atom(a.clone()),
            Formula::or(vec![Formula::atom(a.clone()), Formula::atom(b.clone())]),
        ]);
        let mut builder = CnfBuilder::new();
        builder.assert_formula(&f);
        assert_eq!(builder.num_atoms(), 2);
        assert!(builder.num_bool_vars() > builder.num_atoms());
        assert_eq!(builder.atoms()[0], a);
        assert_eq!(builder.atoms()[1], b);
        let var_of_a = builder.atom_bool_var(0);
        assert_eq!(builder.atom_of_var(var_of_a), Some(0));
    }

    #[test]
    fn equality_atom_is_split_into_two_inequalities() {
        let mut pool = VarPool::new();
        let x = pool.fresh("x");
        let f = Formula::atom(LinExpr::var(x).eq_to(2.0));
        let mut builder = CnfBuilder::new();
        builder.assert_formula(&f);
        assert_eq!(builder.num_atoms(), 2);
        let ops: Vec<RelOp> = builder.atoms().iter().map(|a| a.op()).collect();
        assert!(ops.contains(&RelOp::Le));
        assert!(ops.contains(&RelOp::Ge));
    }

    #[test]
    fn conjunction_forces_both_atoms_true() {
        let (_, a, b) = atoms_for_test();
        let f = Formula::and(vec![Formula::atom(a), Formula::atom(b)]);
        let mut builder = CnfBuilder::new();
        builder.assert_formula(&f);
        let model = propositional_sat(&builder).expect("satisfiable");
        assert_eq!(model[builder.atom_bool_var(0)], Some(true));
        assert_eq!(model[builder.atom_bool_var(1)], Some(true));
    }

    #[test]
    fn contradiction_is_propositionally_unsat() {
        let (_, a, _) = atoms_for_test();
        let f = Formula::and(vec![
            Formula::atom(a.clone()),
            Formula::not(Formula::atom(a)),
        ]);
        let mut builder = CnfBuilder::new();
        builder.assert_formula(&f);
        assert!(propositional_sat(&builder).is_none());
    }

    #[test]
    fn disjunction_allows_either_atom() {
        let (_, a, b) = atoms_for_test();
        let f = Formula::or(vec![Formula::atom(a), Formula::atom(b)]);
        let mut builder = CnfBuilder::new();
        builder.assert_formula(&f);
        let model = propositional_sat(&builder).expect("satisfiable");
        let a_true = model[builder.atom_bool_var(0)] == Some(true);
        let b_true = model[builder.atom_bool_var(1)] == Some(true);
        assert!(a_true || b_true);
    }

    #[test]
    fn true_and_false_constants_encode_correctly() {
        let mut builder = CnfBuilder::new();
        builder.assert_formula(&Formula::True);
        assert!(propositional_sat(&builder).is_some());

        let mut builder = CnfBuilder::new();
        builder.assert_formula(&Formula::False);
        assert!(propositional_sat(&builder).is_none());
    }

    #[test]
    fn multiple_assertions_accumulate() {
        let (_, a, b) = atoms_for_test();
        let mut builder = CnfBuilder::new();
        builder.assert_formula(&Formula::atom(a));
        builder.assert_formula(&Formula::atom(b));
        let model = propositional_sat(&builder).expect("satisfiable");
        assert_eq!(model[builder.atom_bool_var(0)], Some(true));
        assert_eq!(model[builder.atom_bool_var(1)], Some(true));
    }

    #[test]
    fn nested_negations_and_implications() {
        let (_, a, b) = atoms_for_test();
        // ¬(a ∧ ¬b) asserted together with a forces b.
        let f = Formula::not(Formula::and(vec![
            Formula::atom(a.clone()),
            Formula::not(Formula::atom(b.clone())),
        ]));
        let mut builder = CnfBuilder::new();
        builder.assert_formula(&f);
        builder.assert_formula(&Formula::atom(a));
        let model = propositional_sat(&builder).expect("satisfiable");
        assert_eq!(model[builder.atom_bool_var(1)], Some(true));
    }
}
