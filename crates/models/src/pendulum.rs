use cps_control::{
    kalman_gain, lqr_gain, ClosedLoop, ContinuousStateSpace, ControlError, NoiseModel,
};
use cps_linalg::{Matrix, Vector};
use cps_monitors::{Monitor, MonitorSuite};

use crate::{Benchmark, PerformanceCriterion};

/// A linearised cart-pole (inverted pendulum) stabilisation loop
/// (extension benchmark, not from the paper).
///
/// States `[cart position, cart velocity, pole angle, pole angular rate]`,
/// force input, position and angle sensors (the angle sensor is spoofable).
/// The open-loop plant is unstable, which makes it the most attack-sensitive
/// benchmark in the suite: small measurement falsifications translate into
/// fast physical divergence.
///
/// # Errors
///
/// Propagates numerical failures from discretisation or gain design.
pub fn inverted_pendulum() -> Result<Benchmark, ControlError> {
    let ts = 0.02;
    // Standard cart-pole parameters.
    let cart_mass = 0.5; // kg
    let pole_mass = 0.2; // kg
    let friction = 0.1; // N·s/m
    let pole_inertia = 0.006; // kg·m²
    let gravity = 9.8; // m/s²
    let pole_length = 0.3; // m (to centre of mass)

    let p =
        pole_inertia * (cart_mass + pole_mass) + cart_mass * pole_mass * pole_length * pole_length;
    let a22 = -(pole_inertia + pole_mass * pole_length * pole_length) * friction / p;
    let a23 = pole_mass * pole_mass * gravity * pole_length * pole_length / p;
    let a42 = -pole_mass * pole_length * friction / p;
    let a43 = pole_mass * gravity * pole_length * (cart_mass + pole_mass) / p;
    let b2 = (pole_inertia + pole_mass * pole_length * pole_length) / p;
    let b4 = pole_mass * pole_length / p;

    let continuous = ContinuousStateSpace::new(
        Matrix::from_rows(&[
            &[0.0, 1.0, 0.0, 0.0],
            &[0.0, a22, a23, 0.0],
            &[0.0, 0.0, 0.0, 1.0],
            &[0.0, a42, a43, 0.0],
        ])
        .map_err(ControlError::from)?,
        Matrix::from_rows(&[&[0.0], &[b2], &[0.0], &[b4]]).map_err(ControlError::from)?,
        Matrix::from_rows(&[&[1.0, 0.0, 0.0, 0.0], &[0.0, 0.0, 1.0, 0.0]])
            .map_err(ControlError::from)?,
        Matrix::zeros(2, 1),
    )?;
    let plant = continuous.discretize(ts)?;

    let controller = lqr_gain(
        &plant,
        &Matrix::from_diag(&[10.0, 1.0, 100.0, 1.0]),
        &Matrix::from_diag(&[1.0]),
    )?;
    let estimator = kalman_gain(
        &plant,
        &Matrix::identity(4).scale(1e-5),
        &Matrix::from_diag(&[1e-4, 1e-4]),
    )?;
    let closed_loop = ClosedLoop::new(plant, controller, estimator)?;

    let monitors = MonitorSuite::new(
        vec![
            Monitor::range(0, -0.5, 0.5),
            Monitor::range(1, -0.3, 0.3),
            Monitor::gradient(1, 3.0),
        ],
        3,
        ts,
    );

    Ok(Benchmark {
        name: "inverted-pendulum".to_string(),
        closed_loop,
        monitors,
        performance: PerformanceCriterion::ReachBand {
            state: 2,
            target: 0.0,
            tolerance: 0.03,
        },
        initial_state: Vector::from_slice(&[0.05, 0.0, 0.08, 0.0]),
        horizon: 80,
        noise: NoiseModel::new(vec![1e-5; 4], vec![1e-4, 1e-4]),
        attacked_sensors: vec![1],
        attack_bound: 0.5,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_loop_is_unstable_but_closed_loop_is_stable() {
        let benchmark = inverted_pendulum().unwrap();
        let plant = benchmark.closed_loop.plant();
        assert!(
            plant.spectral_radius() > 1.0,
            "cart-pole should be unstable"
        );
        let closed = plant.a()
            - &plant
                .b()
                .matmul(benchmark.closed_loop.controller_gain())
                .unwrap();
        assert!(closed.spectral_radius_estimate(500).unwrap() < 1.0);
    }

    #[test]
    fn nominal_run_balances_the_pole() {
        let benchmark = inverted_pendulum().unwrap();
        let trace = benchmark.closed_loop.simulate(
            &benchmark.initial_state,
            benchmark.horizon,
            &NoiseModel::none(4, 2),
            None,
            0,
        );
        assert!(
            benchmark
                .performance
                .satisfied_by(trace.states().last().unwrap()),
            "pole angle did not settle: {}",
            trace.states().last().unwrap()
        );
        assert!(!benchmark.monitors.evaluate(trace.measurements()).alarmed());
    }

    #[test]
    fn metadata() {
        let benchmark = inverted_pendulum().unwrap();
        assert_eq!(benchmark.num_states(), 4);
        assert_eq!(benchmark.num_outputs(), 2);
        assert_eq!(benchmark.attacked_sensors, vec![1]);
    }
}
