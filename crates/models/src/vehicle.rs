use cps_control::{
    kalman_gain, lqr_gain, ClosedLoop, ContinuousStateSpace, ControlError, NoiseModel, Reference,
    StateSpace,
};
use cps_linalg::{Matrix, Vector};
use cps_monitors::{Monitor, MonitorSuite};

use crate::{Benchmark, PerformanceCriterion};

/// Longitudinal speed of the vehicle in m/s (the single-track model and the
/// relation monitor both depend on it).
const VX: f64 = 15.0;
/// Sampling period of the VSC loop (40 ms as in the paper).
const TS: f64 = 0.04;
/// Desired steady-state yaw rate in rad/s (within the ±0.2 rad/s monitor range).
const GAMMA_DES: f64 = 0.1;

/// The Vehicle Stability Controller (VSC) case study of §IV.
///
/// The lateral dynamics use a standard linear single-track (bicycle) model
/// with states `[β, γ]` (side-slip angle and yaw rate) and steering input,
/// sampled at `T_s = 40 ms`. Two sensors travel over the CAN bus and can be
/// spoofed: the yaw-rate sensor `Yrs` and the lateral-acceleration sensor
/// `Ay`. The stock monitoring system is taken verbatim from the paper:
///
/// | check | limit |
/// |---|---|
/// | range of γ | ±0.2 rad/s |
/// | gradient of γ | 0.175 rad/s² |
/// | range of a_y | ±15 m/s² |
/// | gradient of a_y | 2 m/s³ |
/// | relation \|γ − a_y / v_x\| | 0.035 rad/s |
/// | dead zone | 300 ms = 7 samples |
///
/// `pfc`: the yaw rate must reach at least 80 % of the desired value within
/// 50 sampling instants.
///
/// Substitution note (see `ARCHITECTURE.md`, "Fidelity notes"): the exact vehicle parameters of the
/// paper's references \[10\], \[11\] are not public; the model here uses a
/// standard mid-size-sedan parameterisation, which preserves the structure
/// the monitors and the synthesis algorithms operate on.
///
/// # Errors
///
/// Propagates numerical failures from discretisation or gain design (should
/// not occur for this fixed model).
pub fn vsc() -> Result<Benchmark, ControlError> {
    // Single-track model parameters (mid-size sedan).
    let mass = 1500.0; // kg
    let inertia = 2500.0; // kg m²
    let lf = 1.1; // m, CoG to front axle
    let lr = 1.6; // m, CoG to rear axle
    let cf = 55_000.0; // N/rad front cornering stiffness
    let cr = 60_000.0; // N/rad rear cornering stiffness

    let a11 = -(cf + cr) / (mass * VX);
    let a12 = -1.0 + (cr * lr - cf * lf) / (mass * VX * VX);
    let a21 = (cr * lr - cf * lf) / inertia;
    let a22 = -(cf * lf * lf + cr * lr * lr) / (inertia * VX);
    let b1 = cf / (mass * VX);
    let b2 = cf * lf / inertia;

    // Outputs: yaw rate γ and lateral acceleration a_y = v_x·(β̇ + γ).
    let c_gamma = [0.0, 1.0];
    let c_ay = [VX * a11, VX * (a12 + 1.0)];
    let d_ay = VX * b1;

    let continuous = ContinuousStateSpace::new(
        Matrix::from_rows(&[&[a11, a12], &[a21, a22]]).map_err(ControlError::from)?,
        Matrix::from_rows(&[&[b1], &[b2]]).map_err(ControlError::from)?,
        Matrix::from_rows(&[&c_gamma, &c_ay]).map_err(ControlError::from)?,
        Matrix::from_rows(&[&[0.0], &[d_ay]]).map_err(ControlError::from)?,
    )?;
    let plant = continuous.discretize(TS)?;

    // Slow, smooth tracking so the nominal manoeuvre respects the tight
    // gradient monitors (0.175 rad/s² on γ and 2 m/s³ on a_y).
    let q = Matrix::from_diag(&[0.1, 30.0]);
    let r = Matrix::from_diag(&[2000.0]);
    let controller = lqr_gain(&plant, &q, &r)?;
    let estimator = kalman_gain(
        &plant,
        &Matrix::from_diag(&[1e-6, 1e-6]),
        &Matrix::from_diag(&[1e-5, 1e-3]),
    )?;

    let (x_des, u_eq) = yaw_rate_equilibrium(&plant, GAMMA_DES)?;
    let closed_loop = ClosedLoop::new(plant, controller, estimator)?
        .with_reference(Reference::with_equilibrium_input(x_des, u_eq));

    let monitors = MonitorSuite::new(
        vec![
            Monitor::range(0, -0.2, 0.2),
            Monitor::gradient(0, 0.175),
            Monitor::range(1, -15.0, 15.0),
            Monitor::gradient(1, 2.0),
            Monitor::relation(0, 1, 1.0 / VX, 0.035),
        ],
        (0.3 / TS) as usize, // 300 ms dead zone = 7 samples
        TS,
    );

    Ok(Benchmark {
        name: "vehicle-stability-controller".to_string(),
        closed_loop,
        monitors,
        performance: PerformanceCriterion::ReachFraction {
            state: 1,
            target: GAMMA_DES,
            fraction: 0.8,
        },
        initial_state: Vector::zeros(2),
        horizon: 50,
        noise: NoiseModel::new(vec![1e-5, 1e-5], vec![1e-3, 2e-2]),
        attacked_sensors: vec![0, 1],
        attack_bound: 5.0,
    })
}

/// Solves for the steady-state `(x_des, u_eq)` pair of the discrete plant that
/// holds the yaw rate at `gamma`: `x = A·x + B·u` with `x[1] = gamma`.
fn yaw_rate_equilibrium(plant: &StateSpace, gamma: f64) -> Result<(Vector, Vector), ControlError> {
    // Unknowns: [β, γ, δ]. Equations: the two state equations and γ = gamma.
    let a = plant.a();
    let b = plant.b();
    let system = Matrix::from_rows(&[
        &[1.0 - a[(0, 0)], -a[(0, 1)], -b[(0, 0)]],
        &[-a[(1, 0)], 1.0 - a[(1, 1)], -b[(1, 0)]],
        &[0.0, 1.0, 0.0],
    ])
    .map_err(ControlError::from)?;
    let rhs = Vector::from_slice(&[0.0, 0.0, gamma]);
    let solution = system.solve(&rhs)?;
    Ok((
        Vector::from_slice(&[solution[0], solution[1]]),
        Vector::from_slice(&[solution[2]]),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cps_control::ResidueNorm;

    #[test]
    fn model_dimensions_and_metadata() {
        let benchmark = vsc().unwrap();
        assert_eq!(benchmark.num_states(), 2);
        assert_eq!(benchmark.num_outputs(), 2);
        assert_eq!(benchmark.horizon, 50);
        assert_eq!(benchmark.monitors.dead_zone(), 7);
        assert_eq!(benchmark.attacked_sensors, vec![0, 1]);
        assert!((benchmark.sampling_period() - 0.04).abs() < 1e-12);
    }

    #[test]
    fn equilibrium_holds_the_desired_yaw_rate() {
        let benchmark = vsc().unwrap();
        let x_des = benchmark.closed_loop.reference().x_des().clone();
        let u_eq = benchmark.closed_loop.reference().u_eq().clone();
        assert!((x_des[1] - GAMMA_DES).abs() < 1e-9);
        let next = benchmark.closed_loop.plant().step(&x_des, &u_eq);
        assert!((&next - &x_des).norm_inf() < 1e-9, "not an equilibrium");
    }

    #[test]
    fn nominal_run_satisfies_pfc() {
        let benchmark = vsc().unwrap();
        let trace = benchmark.closed_loop.simulate(
            &benchmark.initial_state,
            benchmark.horizon,
            &NoiseModel::none(2, 2),
            None,
            0,
        );
        let final_state = trace.states().last().unwrap();
        assert!(
            benchmark.performance.satisfied_by(final_state),
            "nominal yaw rate {final_state} misses 80% of the target"
        );
    }

    #[test]
    fn nominal_run_does_not_trip_the_monitors() {
        let benchmark = vsc().unwrap();
        let trace = benchmark.closed_loop.simulate(
            &benchmark.initial_state,
            benchmark.horizon,
            &NoiseModel::none(2, 2),
            None,
            0,
        );
        let verdict = benchmark.monitors.evaluate(trace.measurements());
        assert!(
            !verdict.alarmed(),
            "monitors alarm on the nominal manoeuvre at {:?}",
            verdict.alarm_at
        );
    }

    #[test]
    fn nominal_residues_are_negligible() {
        let benchmark = vsc().unwrap();
        let trace = benchmark.closed_loop.simulate(
            &benchmark.initial_state,
            benchmark.horizon,
            &NoiseModel::none(2, 2),
            None,
            0,
        );
        let max = trace
            .residue_norms(ResidueNorm::Linf)
            .into_iter()
            .fold(0.0, f64::max);
        assert!(max < 1e-9, "noise-free residue should vanish, got {max}");
    }

    #[test]
    fn closed_loop_is_stable() {
        let benchmark = vsc().unwrap();
        let plant = benchmark.closed_loop.plant();
        let k = benchmark.closed_loop.controller_gain();
        let closed = plant.a() - &plant.b().matmul(k).unwrap();
        assert!(closed.spectral_radius_estimate(500).unwrap() < 1.0);
    }
}
