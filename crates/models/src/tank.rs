use cps_control::{
    kalman_gain, lqr_gain, ClosedLoop, ContinuousStateSpace, ControlError, NoiseModel, Reference,
};
use cps_linalg::{Matrix, Vector};
use cps_monitors::{Monitor, MonitorSuite};

use crate::{Benchmark, PerformanceCriterion};

/// The quadruple-tank process (extension benchmark, not from the paper).
///
/// Four coupled tank levels, two pump inputs, level sensors on the two lower
/// tanks (both spoofable). The linearised minimum-phase configuration of
/// Johansson's classic benchmark is used; the slow dynamics make it a good
/// contrast to the fast VSC loop when sweeping the synthesis algorithms.
///
/// # Errors
///
/// Propagates numerical failures from discretisation or gain design.
pub fn quadruple_tank() -> Result<Benchmark, ControlError> {
    let ts = 3.0;
    // Time constants and geometry of the linearised model (minimum-phase setting).
    let t1 = 62.0;
    let t2 = 90.0;
    let t3 = 23.0;
    let t4 = 30.0;
    let a1 = 28.0;
    let a2 = 32.0;
    let a3 = 28.0;
    let a4 = 32.0;
    let k1 = 3.33;
    let k2 = 3.35;
    let gamma1 = 0.7;
    let gamma2 = 0.6;

    let continuous = ContinuousStateSpace::new(
        Matrix::from_rows(&[
            &[-1.0 / t1, 0.0, a3 / (a1 * t3), 0.0],
            &[0.0, -1.0 / t2, 0.0, a4 / (a2 * t4)],
            &[0.0, 0.0, -1.0 / t3, 0.0],
            &[0.0, 0.0, 0.0, -1.0 / t4],
        ])
        .map_err(ControlError::from)?,
        Matrix::from_rows(&[
            &[gamma1 * k1 / a1, 0.0],
            &[0.0, gamma2 * k2 / a2],
            &[0.0, (1.0 - gamma2) * k2 / a3],
            &[(1.0 - gamma1) * k1 / a4, 0.0],
        ])
        .map_err(ControlError::from)?,
        Matrix::from_rows(&[&[0.5, 0.0, 0.0, 0.0], &[0.0, 0.5, 0.0, 0.0]])
            .map_err(ControlError::from)?,
        Matrix::zeros(2, 2),
    )?;
    let plant = continuous.discretize(ts)?;

    let controller = lqr_gain(
        &plant,
        &Matrix::from_diag(&[10.0, 10.0, 1.0, 1.0]),
        &Matrix::identity(2),
    )?;
    let estimator = kalman_gain(
        &plant,
        &Matrix::identity(4).scale(1e-4),
        &Matrix::from_diag(&[1e-3, 1e-3]),
    )?;

    // Equilibrium holding tank levels 1 and 2 at the target deviation.
    let target = 1.0;
    let a = plant.a();
    let b = plant.b();
    // Unknowns [x1..x4, u1, u2]; equations: 4 state equations + the 2 targets.
    let mut rows: Vec<Vec<f64>> = Vec::new();
    for i in 0..4 {
        let mut row = vec![0.0; 6];
        for j in 0..4 {
            row[j] = if i == j { 1.0 - a[(i, j)] } else { -a[(i, j)] };
        }
        row[4] = -b[(i, 0)];
        row[5] = -b[(i, 1)];
        rows.push(row);
    }
    rows.push(vec![1.0, 0.0, 0.0, 0.0, 0.0, 0.0]);
    rows.push(vec![0.0, 1.0, 0.0, 0.0, 0.0, 0.0]);
    let row_refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
    let system = Matrix::from_rows(&row_refs).map_err(ControlError::from)?;
    let rhs = Vector::from_slice(&[0.0, 0.0, 0.0, 0.0, target, target]);
    let solution = system.solve(&rhs)?;
    let x_des = Vector::from_slice(&[solution[0], solution[1], solution[2], solution[3]]);
    let u_eq = Vector::from_slice(&[solution[4], solution[5]]);

    let closed_loop = ClosedLoop::new(plant, controller, estimator)?
        .with_reference(Reference::with_equilibrium_input(x_des, u_eq));

    let monitors = MonitorSuite::new(
        vec![
            Monitor::range(0, -2.0, 2.0),
            Monitor::range(1, -2.0, 2.0),
            Monitor::gradient(0, 0.2),
            Monitor::gradient(1, 0.2),
        ],
        3,
        ts,
    );

    Ok(Benchmark {
        name: "quadruple-tank".to_string(),
        closed_loop,
        monitors,
        performance: PerformanceCriterion::ReachBand {
            state: 0,
            target,
            tolerance: 0.25,
        },
        initial_state: Vector::zeros(4),
        horizon: 60,
        noise: NoiseModel::new(vec![1e-3; 4], vec![1e-2, 1e-2]),
        attacked_sensors: vec![0, 1],
        attack_bound: 2.0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_run_satisfies_pfc_and_monitors() {
        let benchmark = quadruple_tank().unwrap();
        let trace = benchmark.closed_loop.simulate(
            &benchmark.initial_state,
            benchmark.horizon,
            &NoiseModel::none(4, 2),
            None,
            0,
        );
        assert!(
            benchmark
                .performance
                .satisfied_by(trace.states().last().unwrap()),
            "final level {} misses the target",
            trace.states().last().unwrap()
        );
        assert!(!benchmark.monitors.evaluate(trace.measurements()).alarmed());
    }

    #[test]
    fn equilibrium_is_consistent() {
        let benchmark = quadruple_tank().unwrap();
        let x_des = benchmark.closed_loop.reference().x_des().clone();
        let u_eq = benchmark.closed_loop.reference().u_eq().clone();
        let next = benchmark.closed_loop.plant().step(&x_des, &u_eq);
        assert!((&next - &x_des).norm_inf() < 1e-8);
        assert!((x_des[0] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn metadata() {
        let benchmark = quadruple_tank().unwrap();
        assert_eq!(benchmark.num_states(), 4);
        assert_eq!(benchmark.num_outputs(), 2);
        assert_eq!(benchmark.attacked_sensors, vec![0, 1]);
    }
}
