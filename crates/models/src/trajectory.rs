use cps_control::{
    kalman_gain, lqr_gain, ClosedLoop, ControlError, NoiseModel, Reference, StateSpace,
};
use cps_linalg::{Matrix, Vector};
use cps_monitors::MonitorSuite;

use crate::{Benchmark, PerformanceCriterion};

/// The trajectory-tracking system of the paper's motivational example
/// (Fig. 1): a sampled double integrator tracking a position step reference,
/// with a position sensor the attacker can spoof.
///
/// - sampling period 0.1 s, horizon 10 samples (the figure's 1 s window),
/// - reference step of 0.5 m,
/// - `pfc`: position within ±0.05 m of the reference at the end of the
///   horizon,
/// - no plant monitors (`mdc` is empty) — the figure compares residue
///   detectors only.
///
/// # Errors
///
/// Propagates numerical failures from the gain design (should not occur for
/// this fixed model).
pub fn trajectory_tracking() -> Result<Benchmark, ControlError> {
    let ts = 0.1;
    // Double integrator (position, velocity) with acceleration input, ZOH-sampled.
    let plant = StateSpace::new(
        Matrix::from_rows(&[&[1.0, ts], &[0.0, 1.0]]).map_err(ControlError::from)?,
        Matrix::from_rows(&[&[ts * ts / 2.0], &[ts]]).map_err(ControlError::from)?,
        Matrix::from_rows(&[&[1.0, 0.0]]).map_err(ControlError::from)?,
        Matrix::zeros(1, 1),
    )?;

    // Aggressive tracking: the figure reaches the reference within ~10 samples.
    let q = Matrix::from_diag(&[800.0, 40.0]);
    let r = Matrix::from_diag(&[0.5]);
    let controller = lqr_gain(&plant, &q, &r)?;
    let estimator = kalman_gain(
        &plant,
        &Matrix::from_diag(&[1e-5, 1e-5]),
        &Matrix::from_diag(&[1e-4]),
    )?;

    let target = 0.5;
    let closed_loop = ClosedLoop::new(plant, controller, estimator)?
        .with_reference(Reference::state_target(Vector::from_slice(&[target, 0.0])));

    Ok(Benchmark {
        name: "trajectory-tracking".to_string(),
        closed_loop,
        monitors: MonitorSuite::empty(ts),
        performance: PerformanceCriterion::ReachBand {
            state: 0,
            target,
            tolerance: 0.05,
        },
        initial_state: Vector::zeros(2),
        horizon: 10,
        noise: NoiseModel::new(vec![1e-4, 1e-4], vec![5e-3]),
        attacked_sensors: vec![0],
        attack_bound: 1.0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cps_control::ResidueNorm;

    #[test]
    fn nominal_run_satisfies_pfc() {
        let benchmark = trajectory_tracking().unwrap();
        let trace = benchmark.closed_loop.simulate(
            &benchmark.initial_state,
            benchmark.horizon,
            &NoiseModel::none(2, 1),
            None,
            0,
        );
        let final_state = trace.states().last().unwrap();
        assert!(
            benchmark.performance.satisfied_by(final_state),
            "nominal final state {final_state} misses the reference"
        );
    }

    #[test]
    fn nominal_residues_are_negligible() {
        let benchmark = trajectory_tracking().unwrap();
        let trace = benchmark.closed_loop.simulate(
            &benchmark.initial_state,
            benchmark.horizon,
            &NoiseModel::none(2, 1),
            None,
            0,
        );
        let max = trace
            .residue_norms(ResidueNorm::Linf)
            .into_iter()
            .fold(0.0, f64::max);
        assert!(
            max < 1e-9,
            "noise-free nominal residue should vanish, got {max}"
        );
    }

    #[test]
    fn noisy_runs_usually_satisfy_pfc() {
        let benchmark = trajectory_tracking().unwrap();
        let mut satisfied = 0;
        let trials = 20;
        for seed in 0..trials {
            let trace = benchmark.closed_loop.simulate(
                &benchmark.initial_state,
                benchmark.horizon,
                &benchmark.noise,
                None,
                seed,
            );
            if benchmark
                .performance
                .satisfied_by(trace.states().last().unwrap())
            {
                satisfied += 1;
            }
        }
        assert!(
            satisfied >= trials * 8 / 10,
            "only {satisfied}/{trials} noisy runs satisfied pfc"
        );
    }

    #[test]
    fn benchmark_metadata_is_consistent() {
        let benchmark = trajectory_tracking().unwrap();
        assert_eq!(benchmark.num_states(), 2);
        assert_eq!(benchmark.num_outputs(), 1);
        assert_eq!(benchmark.sampling_period(), 0.1);
        assert!(benchmark.monitors.is_empty());
        assert_eq!(benchmark.attacked_sensors, vec![0]);
    }
}
