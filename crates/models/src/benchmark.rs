use cps_control::{ClosedLoop, NoiseModel};
use cps_linalg::Vector;
use cps_monitors::MonitorSuite;
use cps_smt::{Formula, LinExpr};

/// Performance criterion `pfc`: what the control loop must achieve within the
/// analysis horizon, and what an attacker therefore tries to prevent.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum PerformanceCriterion {
    /// State component `state` must end within `tolerance` of `target`:
    /// `|x_T[state] − target| ≤ tolerance`.
    ReachBand {
        /// Index of the state component.
        state: usize,
        /// Desired value.
        target: f64,
        /// Admissible deviation ε.
        tolerance: f64,
    },
    /// State component `state` must reach at least `fraction` of `target`
    /// (the paper's VSC criterion: "yaw rate must reach within 80 % of the
    /// desired value"). For a negative target the inequality direction flips.
    ReachFraction {
        /// Index of the state component.
        state: usize,
        /// Desired value.
        target: f64,
        /// Fraction of the target that must be attained (e.g. `0.8`).
        fraction: f64,
    },
}

impl PerformanceCriterion {
    /// The state component the criterion constrains.
    pub fn state_index(&self) -> usize {
        match self {
            PerformanceCriterion::ReachBand { state, .. }
            | PerformanceCriterion::ReachFraction { state, .. } => *state,
        }
    }

    /// The target value the loop is steering towards.
    pub fn target(&self) -> f64 {
        match self {
            PerformanceCriterion::ReachBand { target, .. }
            | PerformanceCriterion::ReachFraction { target, .. } => *target,
        }
    }

    /// Returns `true` when the criterion is satisfied by the given final state.
    ///
    /// # Panics
    ///
    /// Panics if the state vector is shorter than the constrained index.
    pub fn satisfied_by(&self, final_state: &Vector) -> bool {
        match self {
            PerformanceCriterion::ReachBand {
                state,
                target,
                tolerance,
            } => (final_state[*state] - target).abs() <= *tolerance,
            PerformanceCriterion::ReachFraction {
                state,
                target,
                fraction,
            } => {
                let bound = fraction * target;
                if *target >= 0.0 {
                    final_state[*state] >= bound
                } else {
                    final_state[*state] <= bound
                }
            }
        }
    }

    /// Symbolic version of [`PerformanceCriterion::satisfied_by`] over the
    /// affine expressions of the final state.
    pub fn encode(&self, final_state: &[LinExpr]) -> Formula {
        match self {
            PerformanceCriterion::ReachBand {
                state,
                target,
                tolerance,
            } => {
                let expr = final_state[*state].clone();
                Formula::and(vec![
                    Formula::atom(expr.clone().le(target + tolerance)),
                    Formula::atom(expr.ge(target - tolerance)),
                ])
            }
            PerformanceCriterion::ReachFraction {
                state,
                target,
                fraction,
            } => {
                let expr = final_state[*state].clone();
                let bound = fraction * target;
                if *target >= 0.0 {
                    Formula::atom(expr.ge(bound))
                } else {
                    Formula::atom(expr.le(bound))
                }
            }
        }
    }

    /// Symbolic violation of the criterion (the attacker's goal).
    pub fn encode_violation(&self, final_state: &[LinExpr]) -> Formula {
        Formula::not(self.encode(final_state))
    }
}

/// A complete benchmark: everything the attack-synthesis and threshold-
/// synthesis algorithms need about one CPS instance.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Benchmark {
    /// Human-readable benchmark name.
    pub name: String,
    /// Plant, controller gain, estimator gain and reference.
    pub closed_loop: ClosedLoop,
    /// The plant's existing monitoring constraints `mdc`.
    pub monitors: MonitorSuite,
    /// The performance criterion `pfc`.
    pub performance: PerformanceCriterion,
    /// Initial plant state `x_1` of the analysis.
    pub initial_state: Vector,
    /// Analysis horizon `T` in sampling instants.
    pub horizon: usize,
    /// Nominal process/measurement noise.
    pub noise: NoiseModel,
    /// Measurement components the attacker can falsify (sensor indices).
    pub attacked_sensors: Vec<usize>,
    /// Per-step bound on the magnitude of each injected value (models the
    /// saturation limits of the spoofed sensor interface).
    pub attack_bound: f64,
}

impl Benchmark {
    /// Sampling period of the benchmark in seconds.
    pub fn sampling_period(&self) -> f64 {
        self.monitors.sampling_period()
    }

    /// Number of measurement components of the plant.
    pub fn num_outputs(&self) -> usize {
        self.closed_loop.plant().num_outputs()
    }

    /// Number of state variables of the plant.
    pub fn num_states(&self) -> usize {
        self.closed_loop.plant().num_states()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cps_smt::VarPool;

    #[test]
    fn reach_band_runtime_semantics() {
        let pfc = PerformanceCriterion::ReachBand {
            state: 1,
            target: 2.0,
            tolerance: 0.1,
        };
        assert_eq!(pfc.state_index(), 1);
        assert_eq!(pfc.target(), 2.0);
        assert!(pfc.satisfied_by(&Vector::from_slice(&[0.0, 1.95])));
        assert!(!pfc.satisfied_by(&Vector::from_slice(&[0.0, 1.7])));
    }

    #[test]
    fn reach_fraction_runtime_semantics() {
        let pfc = PerformanceCriterion::ReachFraction {
            state: 0,
            target: 0.15,
            fraction: 0.8,
        };
        assert!(pfc.satisfied_by(&Vector::from_slice(&[0.13])));
        assert!(!pfc.satisfied_by(&Vector::from_slice(&[0.10])));

        let negative = PerformanceCriterion::ReachFraction {
            state: 0,
            target: -0.15,
            fraction: 0.8,
        };
        assert!(negative.satisfied_by(&Vector::from_slice(&[-0.14])));
        assert!(!negative.satisfied_by(&Vector::from_slice(&[-0.10])));
    }

    #[test]
    fn symbolic_and_runtime_agree() {
        let mut pool = VarPool::new();
        let a = pool.fresh("x0");
        let b = pool.fresh("x1");
        let exprs = vec![LinExpr::var(a), LinExpr::var(b)];

        let criteria = vec![
            PerformanceCriterion::ReachBand {
                state: 1,
                target: 1.0,
                tolerance: 0.2,
            },
            PerformanceCriterion::ReachFraction {
                state: 0,
                target: 0.5,
                fraction: 0.8,
            },
        ];
        let states = [
            Vector::from_slice(&[0.5, 1.1]),
            Vector::from_slice(&[0.3, 0.5]),
            Vector::from_slice(&[0.41, 1.3]),
        ];
        for pfc in &criteria {
            for state in &states {
                let runtime = pfc.satisfied_by(state);
                let symbolic = pfc.encode(&exprs).holds(state.as_slice());
                assert_eq!(runtime, symbolic, "{pfc:?} disagrees on {state}");
                let violation = pfc.encode_violation(&exprs).holds(state.as_slice());
                assert_eq!(violation, !runtime);
            }
        }
    }
}
