//! Benchmark closed-loop CPS models used by the synthesis experiments.
//!
//! Paper mapping: the Vehicle Stability Controller case study of §IV and the
//! motivational tracking example of Fig. 1 in *Koley et al. (DATE 2020)*,
//! plus three extra benchmarks that go beyond the paper.
//!
//! Each function returns a fully assembled [`Benchmark`]: the discrete plant,
//! the designed LQR controller and steady-state Kalman estimator, the plant's
//! monitoring constraints (`mdc`), the performance criterion (`pfc`), the
//! attacker's sensor access and the nominal noise model. The two models from
//! the paper are:
//!
//! - [`vsc`] — the Vehicle Stability Controller case study of §IV, a lateral
//!   single-track model with yaw-rate and lateral-acceleration sensors on the
//!   CAN bus, range/gradient/relation monitors with a 300 ms dead zone and a
//!   yaw-rate tracking performance criterion;
//! - [`trajectory_tracking`] — the motivational example of Fig. 1, a position
//!   tracking loop with a step reference.
//!
//! Three further benchmarks ([`dc_motor`], [`inverted_pendulum`],
//! [`quadruple_tank`]) exercise the synthesis algorithms beyond the paper's
//! case study.
//!
//! # Example
//!
//! ```
//! let benchmark = cps_models::vsc().expect("VSC model builds");
//! assert_eq!(benchmark.closed_loop.plant().num_outputs(), 2);
//! assert_eq!(benchmark.horizon, 50);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod benchmark;
mod dc_motor;
mod pendulum;
mod tank;
mod trajectory;
mod vehicle;

pub use benchmark::{Benchmark, PerformanceCriterion};
pub use dc_motor::dc_motor;
pub use pendulum::inverted_pendulum;
pub use tank::quadruple_tank;
pub use trajectory::trajectory_tracking;
pub use vehicle::vsc;

/// All benchmarks in the crate, in a stable order (useful for sweeps).
///
/// # Errors
///
/// Propagates the first model-construction failure (which indicates a bug in
/// the model definitions rather than a user error).
pub fn all_benchmarks() -> Result<Vec<Benchmark>, cps_control::ControlError> {
    Ok(vec![
        trajectory_tracking()?,
        vsc()?,
        dc_motor()?,
        inverted_pendulum()?,
        quadruple_tank()?,
    ])
}
