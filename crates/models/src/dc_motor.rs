use cps_control::{
    kalman_gain, lqr_gain, ClosedLoop, ContinuousStateSpace, ControlError, NoiseModel, Reference,
};
use cps_linalg::{Matrix, Vector};
use cps_monitors::{Monitor, MonitorSuite};

use crate::{Benchmark, PerformanceCriterion};

/// A DC-motor speed-control loop (extension benchmark, not from the paper).
///
/// States `[armature current, angular speed]`, voltage input, speed sensor on
/// the network (spoofable). The monitor suite bounds the measured speed and
/// its gradient with a short dead zone.
///
/// # Errors
///
/// Propagates numerical failures from discretisation or gain design.
pub fn dc_motor() -> Result<Benchmark, ControlError> {
    let ts = 0.05;
    // Electrical/mechanical parameters of a small motor.
    let resistance = 1.0; // Ω
    let inductance = 0.5; // H
    let kt = 0.1; // N·m/A torque constant (= back-EMF constant)
    let inertia = 0.01; // kg·m²
    let damping = 0.1; // N·m·s

    let continuous = ContinuousStateSpace::new(
        Matrix::from_rows(&[
            &[-resistance / inductance, -kt / inductance],
            &[kt / inertia, -damping / inertia],
        ])
        .map_err(ControlError::from)?,
        Matrix::from_rows(&[&[1.0 / inductance], &[0.0]]).map_err(ControlError::from)?,
        Matrix::from_rows(&[&[0.0, 1.0]]).map_err(ControlError::from)?,
        Matrix::zeros(1, 1),
    )?;
    let plant = continuous.discretize(ts)?;

    let controller = lqr_gain(
        &plant,
        &Matrix::from_diag(&[0.1, 10.0]),
        &Matrix::from_diag(&[1.0]),
    )?;
    let estimator = kalman_gain(
        &plant,
        &Matrix::from_diag(&[1e-4, 1e-4]),
        &Matrix::from_diag(&[1e-3]),
    )?;

    // Equilibrium for a target speed of 1 rad/s.
    let target = 1.0;
    let a = plant.a();
    let b = plant.b();
    let system = Matrix::from_rows(&[
        &[1.0 - a[(0, 0)], -a[(0, 1)], -b[(0, 0)]],
        &[-a[(1, 0)], 1.0 - a[(1, 1)], -b[(1, 0)]],
        &[0.0, 1.0, 0.0],
    ])
    .map_err(ControlError::from)?;
    let solution = system.solve(&Vector::from_slice(&[0.0, 0.0, target]))?;
    let x_des = Vector::from_slice(&[solution[0], solution[1]]);
    let u_eq = Vector::from_slice(&[solution[2]]);

    let closed_loop = ClosedLoop::new(plant, controller, estimator)?
        .with_reference(Reference::with_equilibrium_input(x_des, u_eq));

    let monitors = MonitorSuite::new(
        vec![Monitor::range(0, -0.5, 2.0), Monitor::gradient(0, 8.0)],
        3,
        ts,
    );

    Ok(Benchmark {
        name: "dc-motor".to_string(),
        closed_loop,
        monitors,
        performance: PerformanceCriterion::ReachBand {
            state: 1,
            target,
            tolerance: 0.15,
        },
        initial_state: Vector::zeros(2),
        horizon: 40,
        noise: NoiseModel::new(vec![1e-4, 1e-4], vec![5e-3]),
        attacked_sensors: vec![0],
        attack_bound: 2.0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_run_satisfies_pfc_and_monitors() {
        let benchmark = dc_motor().unwrap();
        let trace = benchmark.closed_loop.simulate(
            &benchmark.initial_state,
            benchmark.horizon,
            &NoiseModel::none(2, 1),
            None,
            0,
        );
        assert!(
            benchmark
                .performance
                .satisfied_by(trace.states().last().unwrap()),
            "final state {} misses the speed target",
            trace.states().last().unwrap()
        );
        assert!(!benchmark.monitors.evaluate(trace.measurements()).alarmed());
    }

    #[test]
    fn metadata() {
        let benchmark = dc_motor().unwrap();
        assert_eq!(benchmark.num_states(), 2);
        assert_eq!(benchmark.num_outputs(), 1);
        assert_eq!(benchmark.attacked_sensors, vec![0]);
    }
}
