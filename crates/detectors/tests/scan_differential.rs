//! Differential tests between [`Detector::first_alarm`] and the streaming
//! [`Detector::scanner`] evaluators over randomized residue traces: the two
//! evaluation paths must agree on the exact alarm instant (including "no
//! alarm"), and a reused scanner must behave identically after `reset`.

use cps_control::{ResidueNorm, Trace};
use cps_detectors::{Chi2Detector, CusumDetector, Detector, ThresholdDetector, ThresholdSpec};
use cps_linalg::{SplitMix64, Vector};

const CASES: u64 = 200;

fn random_trace(rng: &mut SplitMix64) -> Trace {
    let steps = 1 + rng.usize_below(30);
    let dim = 1 + rng.usize_below(3);
    let residues: Vec<Vector> = (0..steps)
        .map(|_| Vector::from_slice(&(0..dim).map(|_| rng.range(-0.6, 0.6)).collect::<Vec<_>>()))
        .collect();
    Trace::new(
        vec![Vector::zeros(1); steps + 1],
        vec![Vector::zeros(1); steps + 1],
        vec![Vector::zeros(dim); steps],
        vec![Vector::zeros(dim); steps],
        residues,
    )
}

fn scan_first_alarm(detector: &dyn Detector, trace: &Trace) -> Option<usize> {
    let mut scanner = detector.scanner();
    scanner.reset();
    trace
        .residues()
        .iter()
        .enumerate()
        .find(|(k, z)| scanner.step(*k, z))
        .map(|(k, _)| k)
}

fn assert_paths_agree(detector: &dyn Detector, rng: &mut SplitMix64, label: &str) {
    // One scanner reused across all traces: `reset` must fully clear state.
    let mut reused = detector.scanner();
    for case in 0..CASES {
        let trace = random_trace(rng);
        let batch = detector.first_alarm(&trace);
        let fresh = scan_first_alarm(detector, &trace);
        assert_eq!(
            batch, fresh,
            "{label} case {case}: scanner disagrees with first_alarm"
        );
        reused.reset();
        let recycled = trace
            .residues()
            .iter()
            .enumerate()
            .find(|(k, z)| reused.step(*k, z))
            .map(|(k, _)| k);
        assert_eq!(
            batch, recycled,
            "{label} case {case}: reused scanner disagrees after reset"
        );
    }
}

#[test]
fn threshold_scanner_agrees_with_first_alarm() {
    let mut rng = SplitMix64::new(0x7157);
    let spec = ThresholdSpec::variable(vec![0.5, 0.4, 0.3, 0.2, 0.1]);
    for norm in [ResidueNorm::Linf, ResidueNorm::L2] {
        let detector = ThresholdDetector::new(spec.clone(), norm);
        assert_paths_agree(&detector, &mut rng, "threshold");
    }
}

#[test]
fn chi2_scanner_agrees_with_first_alarm() {
    let mut rng = SplitMix64::new(0xC412);
    for window in [1, 2, 5] {
        let detector = Chi2Detector::new(window, 0.3, ResidueNorm::L2);
        assert_paths_agree(&detector, &mut rng, "chi2");
    }
}

#[test]
fn cusum_scanner_agrees_with_first_alarm() {
    let mut rng = SplitMix64::new(0xC05A);
    let detector = CusumDetector::new(0.1, 0.5, ResidueNorm::Linf);
    assert_paths_agree(&detector, &mut rng, "cusum");
}
