use cps_control::{ResidueNorm, Trace};
use cps_linalg::Vector;

use crate::{AlarmScan, Detector};

/// Windowed chi-squared-style detector: alarm when the sum of squared residue
/// norms over a sliding window exceeds a threshold.
///
/// This is the classical alternative to per-sample threshold tests; it is not
/// part of the paper's contribution but serves as an additional baseline in
/// the FAR comparison benches.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Chi2Detector {
    window: usize,
    threshold: f64,
    norm: ResidueNorm,
}

impl Chi2Detector {
    /// Creates a detector with the given window length (≥ 1) and threshold on
    /// the windowed sum of squared residue norms.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero or `threshold` is negative.
    pub fn new(window: usize, threshold: f64, norm: ResidueNorm) -> Self {
        assert!(window >= 1, "window must contain at least one sample");
        assert!(threshold >= 0.0, "threshold must be non-negative");
        Self {
            window,
            threshold,
            norm,
        }
    }

    /// The window length in samples.
    pub fn window(&self) -> usize {
        self.window
    }

    /// The alarm threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }
}

impl Detector for Chi2Detector {
    fn first_alarm(&self, trace: &Trace) -> Option<usize> {
        // Same ring-buffer arithmetic as Chi2Scan (and as the retired
        // Vec-of-norms loop: the subtracted square is the same f64 either
        // way), without materialising the norm vector.
        let mut recent = vec![0.0; self.window];
        let mut window_sum = 0.0;
        for (k, z) in trace.residue_norms_iter(self.norm).enumerate() {
            let sq = z * z;
            window_sum += sq;
            if k >= self.window {
                window_sum -= recent[k % self.window];
            }
            recent[k % self.window] = sq;
            if k + 1 >= self.window && window_sum > self.threshold {
                return Some(k);
            }
        }
        None
    }

    fn scanner(&self) -> Box<dyn AlarmScan + '_> {
        Box::new(Chi2Scan {
            detector: self,
            // Ring buffer of the squared norms inside the window, allocated
            // once per scanner and reused across traces.
            recent: vec![0.0; self.window],
            window_sum: 0.0,
        })
    }
}

/// Streaming evaluator for [`Chi2Detector`]: the same add-then-subtract
/// update order as `first_alarm`, so the float arithmetic is bit-identical.
#[derive(Debug)]
struct Chi2Scan<'a> {
    detector: &'a Chi2Detector,
    recent: Vec<f64>,
    window_sum: f64,
}

impl AlarmScan for Chi2Scan<'_> {
    fn reset(&mut self) {
        self.recent.fill(0.0);
        self.window_sum = 0.0;
    }

    fn step(&mut self, k: usize, residue: &Vector) -> bool {
        let window = self.detector.window;
        let sq = {
            let z = self.detector.norm.apply(residue);
            z * z
        };
        self.window_sum += sq;
        if k >= window {
            self.window_sum -= self.recent[k % window];
        }
        self.recent[k % window] = sq;
        k + 1 >= window && self.window_sum > self.detector.threshold
    }
}

/// One-sided CUSUM detector on the residue norm: the statistic
/// `S_k = max(0, S_{k−1} + ‖z_k‖ − drift)` is compared against a threshold.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CusumDetector {
    drift: f64,
    threshold: f64,
    norm: ResidueNorm,
}

impl CusumDetector {
    /// Creates a CUSUM detector with the given drift (expected residue level
    /// under no attack) and alarm threshold.
    ///
    /// # Panics
    ///
    /// Panics if `drift` or `threshold` are negative.
    pub fn new(drift: f64, threshold: f64, norm: ResidueNorm) -> Self {
        assert!(drift >= 0.0, "drift must be non-negative");
        assert!(threshold >= 0.0, "threshold must be non-negative");
        Self {
            drift,
            threshold,
            norm,
        }
    }

    /// The drift parameter.
    pub fn drift(&self) -> f64 {
        self.drift
    }

    /// The alarm threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// The CUSUM statistic trajectory for a trace (useful for plotting).
    pub fn statistic(&self, trace: &Trace) -> Vec<f64> {
        let mut s = 0.0;
        trace
            .residue_norms(self.norm)
            .into_iter()
            .map(|z| {
                s = f64::max(0.0, s + z - self.drift);
                s
            })
            .collect()
    }
}

impl Detector for CusumDetector {
    fn first_alarm(&self, trace: &Trace) -> Option<usize> {
        // Streaming fold of the CUSUM recursion — the same arithmetic as
        // `statistic`, without materialising the trajectory.
        let mut s = 0.0;
        trace.residue_norms_iter(self.norm).position(|z| {
            s = f64::max(0.0, s + z - self.drift);
            s > self.threshold
        })
    }

    fn scanner(&self) -> Box<dyn AlarmScan + '_> {
        Box::new(CusumScan {
            detector: self,
            statistic: 0.0,
        })
    }
}

/// Streaming evaluator for [`CusumDetector`]: carries the one-sided CUSUM
/// statistic between instants.
#[derive(Debug)]
struct CusumScan<'a> {
    detector: &'a CusumDetector,
    statistic: f64,
}

impl AlarmScan for CusumScan<'_> {
    fn reset(&mut self) {
        self.statistic = 0.0;
    }

    fn step(&mut self, _k: usize, residue: &Vector) -> bool {
        let z = self.detector.norm.apply(residue);
        self.statistic = f64::max(0.0, self.statistic + z - self.detector.drift);
        self.statistic > self.detector.threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cps_linalg::Vector;

    fn trace_with_residues(residues: &[f64]) -> Trace {
        let steps = residues.len();
        Trace::new(
            vec![Vector::zeros(1); steps + 1],
            vec![Vector::zeros(1); steps + 1],
            vec![Vector::zeros(1); steps],
            vec![Vector::zeros(1); steps],
            residues.iter().map(|z| Vector::from_slice(&[*z])).collect(),
        )
    }

    #[test]
    fn chi2_ignores_isolated_spikes_below_energy_threshold() {
        let detector = Chi2Detector::new(3, 0.5, ResidueNorm::Linf);
        // Single spike of 0.6: windowed energy 0.36 < 0.5, no alarm.
        assert_eq!(
            detector.first_alarm(&trace_with_residues(&[0.0, 0.6, 0.0, 0.0])),
            None
        );
        // Sustained 0.5 residues: energy 0.75 > 0.5 once the window fills.
        assert_eq!(
            detector.first_alarm(&trace_with_residues(&[0.5, 0.5, 0.5, 0.5])),
            Some(2)
        );
    }

    #[test]
    fn chi2_accessors_and_validation() {
        let d = Chi2Detector::new(4, 1.0, ResidueNorm::L2);
        assert_eq!(d.window(), 4);
        assert_eq!(d.threshold(), 1.0);
    }

    #[test]
    #[should_panic(expected = "window")]
    fn chi2_zero_window_is_rejected() {
        let _ = Chi2Detector::new(0, 1.0, ResidueNorm::L2);
    }

    #[test]
    fn cusum_accumulates_persistent_bias() {
        let detector = CusumDetector::new(0.1, 0.5, ResidueNorm::Linf);
        // Residues at the drift level never alarm.
        assert_eq!(detector.first_alarm(&trace_with_residues(&[0.1; 20])), None);
        // A persistent 0.3 residue accumulates 0.2 per step: the statistic is
        // 0.2, 0.4, 0.6, … and first exceeds 0.5 at step 2.
        assert_eq!(
            detector.first_alarm(&trace_with_residues(&[0.3; 10])),
            Some(2)
        );
    }

    #[test]
    fn cusum_statistic_resets_after_quiet_period() {
        let detector = CusumDetector::new(0.2, 10.0, ResidueNorm::Linf);
        let stats = detector.statistic(&trace_with_residues(&[0.5, 0.5, 0.0, 0.0, 0.0]));
        assert!(stats[1] > stats[0] - 1e-12);
        assert!(
            stats[4] < stats[1],
            "statistic should decay in quiet periods"
        );
    }

    #[test]
    fn cusum_accessors() {
        let d = CusumDetector::new(0.1, 0.5, ResidueNorm::L1);
        assert_eq!(d.drift(), 0.1);
        assert_eq!(d.threshold(), 0.5);
    }
}
