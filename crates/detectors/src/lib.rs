//! Residue-based attack detectors and their statistical evaluation.
//!
//! Paper mapping: the detection system of §II–§III of *Koley et al.
//! (DATE 2020)* — static thresholds and the variable (monotonically
//! decreasing) thresholds produced by the synthesis algorithms — plus the
//! false-alarm-rate comparison of §IV.
//!
//! The paper's detector raises an alarm at sampling instant `k` when
//! `‖z_k‖ ≥ Th[k]`, where `Th` is either a single static threshold or the
//! variable (monotonically decreasing) threshold vector produced by the
//! synthesis algorithms. This crate provides:
//!
//! - [`ThresholdSpec`] — static or variable threshold specifications,
//! - [`ThresholdDetector`] — the residue detector of the paper,
//! - [`Chi2Detector`] and [`CusumDetector`] — classical windowed baselines
//!   used as additional comparison points,
//! - [`Detector`] — the common detection interface over closed-loop
//!   [`Trace`]s,
//! - [`false_alarm_rate`] / [`detection_rate`] — Monte-Carlo evaluation
//!   helpers used by the FAR experiment (§IV of the paper).
//!
//! # Example
//!
//! ```
//! use cps_detectors::{Detector, ThresholdDetector, ThresholdSpec};
//! use cps_control::ResidueNorm;
//!
//! let detector = ThresholdDetector::new(ThresholdSpec::constant(0.1, 10), ResidueNorm::Linf);
//! assert_eq!(detector.threshold().value_at(3), 0.1);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod baselines;
mod evaluation;
mod threshold;

pub use baselines::{Chi2Detector, CusumDetector};
pub use evaluation::{detection_rate, false_alarm_rate, false_alarm_rate_batched};
pub use threshold::{ThresholdDetector, ThresholdError, ThresholdSpec};

use cps_control::Trace;
use cps_linalg::Vector;

/// Common interface of residue-based detectors.
///
/// `Sync` is a supertrait so that `&dyn Detector` references can be shared
/// across the batched parallel evaluation lanes ([`false_alarm_rate_batched`]
/// and the `FarExperiment` streaming engine); detectors are plain parameter
/// structs, so the bound costs implementations nothing.
pub trait Detector: Sync {
    /// Returns the first sampling instant at which the detector raises an
    /// alarm on the given trace, or `None` when the trace passes undetected.
    fn first_alarm(&self, trace: &Trace) -> Option<usize>;

    /// Convenience wrapper: `true` when the detector alarms anywhere.
    fn detects(&self, trace: &Trace) -> bool {
        self.first_alarm(trace).is_some()
    }

    /// Creates a reusable streaming evaluator for this detector.
    ///
    /// A scanner consumes raw residues one instant at a time and reports the
    /// alarm the moment it fires, so a caller evaluating many detectors over
    /// many traces can allocate once, interleave all detectors per instant
    /// and stop a trace early — the [`FarExperiment`](https://docs.rs/secure-cps)
    /// hot loop. Verdicts must match [`Detector::first_alarm`] exactly
    /// (asserted by the `scanner_agrees_with_first_alarm` differential test).
    fn scanner(&self) -> Box<dyn AlarmScan + '_>;
}

/// Incremental per-instant evaluation state created by [`Detector::scanner`].
pub trait AlarmScan {
    /// Resets the scan state for a fresh trace.
    fn reset(&mut self);

    /// Feeds the residue of sampling instant `k` (instants must arrive in
    /// order from zero); returns `true` when the alarm fires at `k`.
    fn step(&mut self, k: usize, residue: &Vector) -> bool;
}
