use std::error::Error;
use std::fmt;

use cps_control::{ResidueNorm, Trace};
use cps_linalg::Vector;

use crate::{AlarmScan, Detector};

/// A rejected threshold specification (see [`ThresholdSpec::try_variable`]).
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ThresholdError {
    /// The specification covers no sampling instant.
    Empty,
    /// An entry is negative or NaN. `+∞` is *allowed* — it encodes "no check
    /// at this instant" — but NaN makes every comparison silently false, so
    /// it is rejected at the boundary.
    Invalid {
        /// Index of the offending entry.
        index: usize,
        /// The offending value.
        value: f64,
    },
}

impl fmt::Display for ThresholdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ThresholdError::Empty => write!(f, "threshold vector must be non-empty"),
            ThresholdError::Invalid { index, value } => {
                write!(f, "threshold entry {index} is {value}; thresholds must be non-negative and not NaN")
            }
        }
    }
}

impl Error for ThresholdError {}

/// A threshold specification `Th`, mapping each sampling instant to the
/// residue bound the detector compares against.
///
/// The paper distinguishes *static* thresholds (the same bound at every
/// instant) from *variable* thresholds (a length-`T` vector, synthesised to be
/// monotonically decreasing). Instants beyond the stored horizon reuse the
/// last stored value.
///
/// # Example
///
/// ```
/// use cps_detectors::ThresholdSpec;
///
/// let th = ThresholdSpec::variable(vec![0.5, 0.3, 0.1]);
/// assert_eq!(th.value_at(0), 0.5);
/// assert_eq!(th.value_at(2), 0.1);
/// assert_eq!(th.value_at(10), 0.1); // beyond the horizon: last value
/// assert!(th.is_monotone_decreasing());
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ThresholdSpec {
    values: Vec<f64>,
}

impl ThresholdSpec {
    /// A static threshold: the same `value` for `horizon` instants.
    ///
    /// # Panics
    ///
    /// Panics if `horizon` is zero or `value` is negative or NaN; use
    /// [`ThresholdSpec::try_constant`] for untrusted input.
    pub fn constant(value: f64, horizon: usize) -> Self {
        Self::try_constant(value, horizon).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`ThresholdSpec::constant`] for untrusted input.
    ///
    /// # Errors
    ///
    /// [`ThresholdError::Empty`] if `horizon` is zero,
    /// [`ThresholdError::Invalid`] if `value` is negative or NaN (`+∞` is
    /// allowed: it encodes "no check at this instant").
    pub fn try_constant(value: f64, horizon: usize) -> Result<Self, ThresholdError> {
        if horizon == 0 {
            return Err(ThresholdError::Empty);
        }
        Self::try_variable(vec![value; horizon])
    }

    /// A variable threshold from an explicit per-instant vector.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty or contains a negative or NaN entry; use
    /// [`ThresholdSpec::try_variable`] for untrusted input.
    pub fn variable(values: Vec<f64>) -> Self {
        Self::try_variable(values).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`ThresholdSpec::variable`] for untrusted input.
    ///
    /// # Errors
    ///
    /// [`ThresholdError::Empty`] for an empty vector,
    /// [`ThresholdError::Invalid`] for a negative or NaN entry (`+∞` is
    /// allowed: it encodes "no check at this instant").
    pub fn try_variable(values: Vec<f64>) -> Result<Self, ThresholdError> {
        if values.is_empty() {
            return Err(ThresholdError::Empty);
        }
        if let Some(index) = values.iter().position(|v| v.is_nan() || *v < 0.0) {
            return Err(ThresholdError::Invalid {
                index,
                value: values[index],
            });
        }
        Ok(Self { values })
    }

    /// The stored horizon length.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Always `false`: specifications are non-empty by construction.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Threshold at sampling instant `k` (instants beyond the horizon reuse
    /// the last stored value).
    pub fn value_at(&self, k: usize) -> f64 {
        let idx = k.min(self.values.len() - 1);
        self.values[idx]
    }

    /// The underlying per-instant values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Returns `true` when the threshold never increases over time — the shape
    /// the synthesis algorithms guarantee.
    pub fn is_monotone_decreasing(&self) -> bool {
        self.values.windows(2).all(|w| w[1] <= w[0] + 1e-12)
    }

    /// Returns `true` when every instant has the same threshold.
    pub fn is_static(&self) -> bool {
        self.values.windows(2).all(|w| (w[0] - w[1]).abs() <= 1e-12)
    }

    /// Largest stored threshold value.
    pub fn max_value(&self) -> f64 {
        self.values.iter().copied().fold(0.0, f64::max)
    }
}

/// The residue-based detector of the paper: alarm at instant `k` when
/// `‖z_k‖ ≥ Th[k]`.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ThresholdDetector {
    threshold: ThresholdSpec,
    norm: ResidueNorm,
}

impl ThresholdDetector {
    /// Creates a detector from a threshold specification and residue norm.
    pub fn new(threshold: ThresholdSpec, norm: ResidueNorm) -> Self {
        Self { threshold, norm }
    }

    /// The threshold specification.
    pub fn threshold(&self) -> &ThresholdSpec {
        &self.threshold
    }

    /// The residue norm.
    pub fn norm(&self) -> ResidueNorm {
        self.norm
    }
}

impl Detector for ThresholdDetector {
    fn first_alarm(&self, trace: &Trace) -> Option<usize> {
        trace
            .residue_norms_iter(self.norm)
            .enumerate()
            .find(|(k, z)| *z >= self.threshold.value_at(*k))
            .map(|(k, _)| k)
    }

    fn scanner(&self) -> Box<dyn AlarmScan + '_> {
        Box::new(ThresholdScan { detector: self })
    }
}

/// Stateless streaming evaluator for [`ThresholdDetector`]: one norm and one
/// comparison per instant.
#[derive(Debug)]
struct ThresholdScan<'a> {
    detector: &'a ThresholdDetector,
}

impl AlarmScan for ThresholdScan<'_> {
    fn reset(&mut self) {}

    fn step(&mut self, k: usize, residue: &Vector) -> bool {
        self.detector.norm.apply(residue) >= self.detector.threshold.value_at(k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cps_linalg::Vector;

    fn trace_with_residues(residues: &[f64]) -> Trace {
        let steps = residues.len();
        let states = vec![Vector::zeros(1); steps + 1];
        let estimates = vec![Vector::zeros(1); steps + 1];
        let measurements = vec![Vector::zeros(1); steps];
        let controls = vec![Vector::zeros(1); steps];
        let residues = residues.iter().map(|z| Vector::from_slice(&[*z])).collect();
        Trace::new(states, estimates, measurements, controls, residues)
    }

    #[test]
    fn constant_spec_repeats_value() {
        let spec = ThresholdSpec::constant(0.2, 5);
        assert_eq!(spec.len(), 5);
        assert!(spec.is_static());
        assert!(spec.is_monotone_decreasing());
        assert_eq!(spec.value_at(0), 0.2);
        assert_eq!(spec.value_at(100), 0.2);
        assert_eq!(spec.max_value(), 0.2);
    }

    #[test]
    fn variable_spec_detects_monotonicity() {
        assert!(ThresholdSpec::variable(vec![0.5, 0.4, 0.4, 0.1]).is_monotone_decreasing());
        assert!(!ThresholdSpec::variable(vec![0.5, 0.6]).is_monotone_decreasing());
        assert!(!ThresholdSpec::variable(vec![0.5, 0.4]).is_static());
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_threshold_is_rejected() {
        let _ = ThresholdSpec::variable(vec![0.1, -0.1]);
    }

    #[test]
    fn try_constructors_reject_nan_but_allow_infinity() {
        // NaN ≠ NaN, so match structurally instead of with assert_eq.
        assert!(matches!(
            ThresholdSpec::try_variable(vec![0.1, f64::NAN]),
            Err(ThresholdError::Invalid { index: 1, value }) if value.is_nan()
        ));
        assert_eq!(
            ThresholdSpec::try_constant(-0.5, 3),
            Err(ThresholdError::Invalid {
                index: 0,
                value: -0.5
            })
        );
        assert_eq!(
            ThresholdSpec::try_constant(0.2, 0),
            Err(ThresholdError::Empty)
        );
        // +∞ is a legitimate "no check at this instant" marker.
        let spec = ThresholdSpec::try_variable(vec![f64::INFINITY, 0.3]).unwrap();
        assert_eq!(spec.value_at(0), f64::INFINITY);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_threshold_vector_is_rejected() {
        let _ = ThresholdSpec::variable(Vec::new());
    }

    #[test]
    fn detector_alarms_on_first_exceeding_instant() {
        let detector = ThresholdDetector::new(ThresholdSpec::constant(0.3, 10), ResidueNorm::Linf);
        let quiet = trace_with_residues(&[0.1, 0.2, 0.25]);
        assert_eq!(detector.first_alarm(&quiet), None);
        assert!(!detector.detects(&quiet));

        let loud = trace_with_residues(&[0.1, 0.5, 0.2, 0.9]);
        assert_eq!(detector.first_alarm(&loud), Some(1));
        assert!(detector.detects(&loud));
    }

    #[test]
    fn variable_threshold_changes_verdict_over_time() {
        // Decreasing threshold: a late small residue is caught while an early
        // identical residue is not — the central point of the paper's Fig. 1b.
        let spec = ThresholdSpec::variable(vec![0.5, 0.5, 0.1, 0.1]);
        let detector = ThresholdDetector::new(spec, ResidueNorm::Linf);
        let early_bump = trace_with_residues(&[0.3, 0.0, 0.0, 0.0]);
        assert_eq!(detector.first_alarm(&early_bump), None);
        let late_bump = trace_with_residues(&[0.0, 0.0, 0.0, 0.3]);
        assert_eq!(detector.first_alarm(&late_bump), Some(3));
    }

    #[test]
    fn exact_threshold_value_alarms() {
        let detector = ThresholdDetector::new(ThresholdSpec::constant(0.2, 4), ResidueNorm::Linf);
        let trace = trace_with_residues(&[0.2]);
        assert_eq!(detector.first_alarm(&trace), Some(0), "‖z‖ ≥ Th must alarm");
    }

    #[test]
    fn accessors() {
        let detector = ThresholdDetector::new(ThresholdSpec::constant(0.2, 4), ResidueNorm::L2);
        assert_eq!(detector.norm(), ResidueNorm::L2);
        assert_eq!(detector.threshold().len(), 4);
        assert!(!detector.threshold().is_empty());
    }
}
