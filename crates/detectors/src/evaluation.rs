use cps_control::Trace;

use crate::Detector;

/// False-alarm rate of a detector over a set of *attack-free* traces: the
/// fraction of traces on which the detector raises an alarm.
///
/// The caller is responsible for generating the traces the same way the paper
/// does for its FAR experiment — noise-only rollouts that already pass the
/// plant's monitoring constraints (`mdc`); the `secure-cps` crate's
/// [`FarExperiment`](https://docs.rs/secure-cps) pipeline does exactly that.
///
/// Returns zero for an empty trace set.
///
/// # Example
///
/// ```
/// use cps_control::ResidueNorm;
/// use cps_detectors::{false_alarm_rate, ThresholdDetector, ThresholdSpec};
///
/// let detector = ThresholdDetector::new(ThresholdSpec::constant(1.0, 10), ResidueNorm::Linf);
/// assert_eq!(false_alarm_rate(&detector, &[]), 0.0);
/// ```
pub fn false_alarm_rate<D: Detector + ?Sized>(detector: &D, noise_only_traces: &[Trace]) -> f64 {
    if noise_only_traces.is_empty() {
        return 0.0;
    }
    let alarms = noise_only_traces
        .iter()
        .filter(|trace| detector.detects(trace))
        .count();
    alarms as f64 / noise_only_traces.len() as f64
}

/// Detection rate of a detector over a set of *attacked* traces: the fraction
/// of traces on which the detector raises an alarm. Returns zero for an empty
/// trace set.
pub fn detection_rate<D: Detector + ?Sized>(detector: &D, attacked_traces: &[Trace]) -> f64 {
    // The two rates share their definition; they differ only in the population
    // of traces they are evaluated on.
    false_alarm_rate(detector, attacked_traces)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ThresholdDetector, ThresholdSpec};
    use cps_control::ResidueNorm;
    use cps_linalg::Vector;

    fn trace_with_residues(residues: &[f64]) -> Trace {
        let steps = residues.len();
        Trace::new(
            vec![Vector::zeros(1); steps + 1],
            vec![Vector::zeros(1); steps + 1],
            vec![Vector::zeros(1); steps],
            vec![Vector::zeros(1); steps],
            residues.iter().map(|z| Vector::from_slice(&[*z])).collect(),
        )
    }

    #[test]
    fn rates_count_alarmed_fraction() {
        let detector = ThresholdDetector::new(ThresholdSpec::constant(0.5, 4), ResidueNorm::Linf);
        let traces = vec![
            trace_with_residues(&[0.1, 0.2]), // quiet
            trace_with_residues(&[0.6, 0.0]), // alarms
            trace_with_residues(&[0.4, 0.4]), // quiet
            trace_with_residues(&[0.0, 0.9]), // alarms
        ];
        assert!((false_alarm_rate(&detector, &traces) - 0.5).abs() < 1e-12);
        assert!((detection_rate(&detector, &traces[1..2]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_population_gives_zero_rate() {
        let detector = ThresholdDetector::new(ThresholdSpec::constant(0.5, 4), ResidueNorm::Linf);
        assert_eq!(false_alarm_rate(&detector, &[]), 0.0);
        assert_eq!(detection_rate(&detector, &[]), 0.0);
    }

    #[test]
    fn tighter_thresholds_cannot_decrease_far() {
        let traces: Vec<Trace> = (0..20)
            .map(|i| trace_with_residues(&[0.05 * i as f64, 0.02 * i as f64]))
            .collect();
        let loose = ThresholdDetector::new(ThresholdSpec::constant(0.8, 2), ResidueNorm::Linf);
        let tight = ThresholdDetector::new(ThresholdSpec::constant(0.2, 2), ResidueNorm::Linf);
        assert!(false_alarm_rate(&tight, &traces) >= false_alarm_rate(&loose, &traces));
    }
}
