use cps_control::Trace;

use crate::Detector;

/// False-alarm rate of a detector over a set of *attack-free* traces: the
/// fraction of traces on which the detector raises an alarm.
///
/// The caller is responsible for generating the traces the same way the paper
/// does for its FAR experiment — noise-only rollouts that already pass the
/// plant's monitoring constraints (`mdc`); the `secure-cps` crate's
/// [`FarExperiment`](https://docs.rs/secure-cps) pipeline does exactly that.
///
/// Returns zero for an empty trace set.
///
/// # Example
///
/// ```
/// use cps_control::ResidueNorm;
/// use cps_detectors::{false_alarm_rate, ThresholdDetector, ThresholdSpec};
///
/// let detector = ThresholdDetector::new(ThresholdSpec::constant(1.0, 10), ResidueNorm::Linf);
/// assert_eq!(false_alarm_rate(&detector, &[]), 0.0);
/// ```
pub fn false_alarm_rate<D: Detector + ?Sized>(detector: &D, noise_only_traces: &[Trace]) -> f64 {
    if noise_only_traces.is_empty() {
        return 0.0;
    }
    let alarms = noise_only_traces
        .iter()
        .filter(|trace| detector.detects(trace))
        .count();
    alarms as f64 / noise_only_traces.len() as f64
}

/// Detection rate of a detector over a set of *attacked* traces: the fraction
/// of traces on which the detector raises an alarm. Returns zero for an empty
/// trace set.
pub fn detection_rate<D: Detector + ?Sized>(detector: &D, attacked_traces: &[Trace]) -> f64 {
    // The two rates share their definition; they differ only in the population
    // of traces they are evaluated on.
    false_alarm_rate(detector, attacked_traces)
}

/// [`false_alarm_rate`] evaluated over `lanes` batched parallel lanes.
///
/// Lane assignment is fixed and deterministic: lane `w` scans the contiguous
/// chunk `[w·c, (w+1)·c)` with `c = ⌈N / lanes⌉` (the same rule PR 2
/// established for parallel rollouts). Each trace's verdict is computed
/// independently by the lane's reusable [`crate::AlarmScan`], and lanes
/// report integer alarm counts that are summed in lane order — so the
/// resulting rate is bit-identical to the sequential [`false_alarm_rate`] for
/// every lane count (asserted by the `streaming_runtime` differential suite).
///
/// Returns zero for an empty trace set; `lanes` is clamped to `[1, N]`.
pub fn false_alarm_rate_batched<D: Detector + ?Sized>(
    detector: &D,
    noise_only_traces: &[Trace],
    lanes: usize,
) -> f64 {
    if noise_only_traces.is_empty() {
        return 0.0;
    }
    let lanes = lanes.clamp(1, noise_only_traces.len());
    let chunk = noise_only_traces.len().div_ceil(lanes);
    let scan_chunk = |traces: &[Trace]| {
        let mut scan = detector.scanner();
        let mut alarms = 0usize;
        for trace in traces {
            scan.reset();
            if trace
                .residues()
                .iter()
                .enumerate()
                .any(|(k, z)| scan.step(k, z))
            {
                alarms += 1;
            }
        }
        alarms
    };
    let total: usize = if lanes == 1 {
        scan_chunk(noise_only_traces)
    } else {
        let mut counts = vec![0usize; lanes];
        std::thread::scope(|scope| {
            for (lane, slot) in counts.iter_mut().enumerate() {
                let lo = (lane * chunk).min(noise_only_traces.len());
                let hi = ((lane + 1) * chunk).min(noise_only_traces.len());
                let traces = &noise_only_traces[lo..hi];
                scope.spawn(move || *slot = scan_chunk(traces));
            }
        });
        counts.iter().sum()
    };
    total as f64 / noise_only_traces.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ThresholdDetector, ThresholdSpec};
    use cps_control::ResidueNorm;
    use cps_linalg::Vector;

    fn trace_with_residues(residues: &[f64]) -> Trace {
        let steps = residues.len();
        Trace::new(
            vec![Vector::zeros(1); steps + 1],
            vec![Vector::zeros(1); steps + 1],
            vec![Vector::zeros(1); steps],
            vec![Vector::zeros(1); steps],
            residues.iter().map(|z| Vector::from_slice(&[*z])).collect(),
        )
    }

    #[test]
    fn rates_count_alarmed_fraction() {
        let detector = ThresholdDetector::new(ThresholdSpec::constant(0.5, 4), ResidueNorm::Linf);
        let traces = vec![
            trace_with_residues(&[0.1, 0.2]), // quiet
            trace_with_residues(&[0.6, 0.0]), // alarms
            trace_with_residues(&[0.4, 0.4]), // quiet
            trace_with_residues(&[0.0, 0.9]), // alarms
        ];
        assert!((false_alarm_rate(&detector, &traces) - 0.5).abs() < 1e-12);
        assert!((detection_rate(&detector, &traces[1..2]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_population_gives_zero_rate() {
        let detector = ThresholdDetector::new(ThresholdSpec::constant(0.5, 4), ResidueNorm::Linf);
        assert_eq!(false_alarm_rate(&detector, &[]), 0.0);
        assert_eq!(detection_rate(&detector, &[]), 0.0);
    }

    #[test]
    fn batched_lanes_match_sequential_rate_bit_for_bit() {
        use crate::{Chi2Detector, CusumDetector};

        let traces: Vec<Trace> = (0..23)
            .map(|i| {
                trace_with_residues(&[
                    0.03 * i as f64,
                    0.05 * ((i * 7) % 11) as f64,
                    0.04 * ((i * 3) % 5) as f64,
                ])
            })
            .collect();
        let threshold = ThresholdDetector::new(ThresholdSpec::constant(0.3, 3), ResidueNorm::Linf);
        let chi2 = Chi2Detector::new(2, 0.05, ResidueNorm::L2);
        let cusum = CusumDetector::new(0.05, 0.2, ResidueNorm::Linf);
        let detectors: [&dyn Detector; 3] = [&threshold, &chi2, &cusum];
        for detector in detectors {
            let sequential = false_alarm_rate(detector, &traces);
            for lanes in [1, 2, 3, 8, 64] {
                let batched = false_alarm_rate_batched(detector, &traces, lanes);
                assert_eq!(batched.to_bits(), sequential.to_bits(), "lanes={lanes}");
            }
        }
        assert_eq!(false_alarm_rate_batched(&threshold, &[], 4), 0.0);
    }

    #[test]
    fn tighter_thresholds_cannot_decrease_far() {
        let traces: Vec<Trace> = (0..20)
            .map(|i| trace_with_residues(&[0.05 * i as f64, 0.02 * i as f64]))
            .collect();
        let loose = ThresholdDetector::new(ThresholdSpec::constant(0.8, 2), ResidueNorm::Linf);
        let tight = ThresholdDetector::new(ThresholdSpec::constant(0.2, 2), ResidueNorm::Linf);
        assert!(false_alarm_rate(&tight, &traces) >= false_alarm_rate(&loose, &traces));
    }
}
