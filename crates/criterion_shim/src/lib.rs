//! Offline stand-in for the [`criterion`](https://docs.rs/criterion) bench
//! harness.
//!
//! The workspace builds in a container without network access, so the real
//! `criterion` crate cannot be resolved. This crate implements the (small)
//! subset of its API that the `cps_bench` benches use — [`Criterion`],
//! [`BenchmarkGroup`], [`Bencher`], [`Throughput`], [`black_box`],
//! [`criterion_group!`] and [`criterion_main!`] — with wall-clock timing and
//! a plain-text report, so
//! that `cargo bench` produces useful numbers and the bench sources compile
//! unchanged against the real crate when it is vendored back in.
//!
//! Differences from the real crate: no statistical analysis (median and range
//! over the sample only), no warm-up phase, no plots, no baseline comparison.
//! `cargo bench -- --test` runs each routine once and skips timing, matching
//! criterion's behaviour. (Note the `cps_bench` targets set `test = false`,
//! so plain `cargo test` does not smoke-run them.)
//!
//! # Example
//!
//! ```
//! use criterion::{black_box, Criterion};
//!
//! let mut c = Criterion::default().with_samples(3);
//! let mut group = c.benchmark_group("demo");
//! group.bench_function("sum", |b| {
//!     b.iter(|| (0..100u64).map(black_box).sum::<u64>())
//! });
//! group.finish();
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier: prevents the optimiser from const-folding a benched
/// expression away. Forwards to [`std::hint::black_box`].
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Units of work processed by one iteration of a benchmark routine, mirroring
/// `criterion::Throughput`.
///
/// Setting a throughput on a group ([`BenchmarkGroup::throughput`]) makes each
/// report line carry a machine-readable ` [per_s=…]` suffix (units divided by
/// the median sample time) in addition to `[median_ns=…]`;
/// `scripts/bench_snapshot.sh` snapshots throughput benches by that per-second
/// figure and gates them in the higher-is-better direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Logical elements (traces, steps, rows, …) per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

impl Throughput {
    fn units(self) -> u64 {
        match self {
            Throughput::Elements(n) | Throughput::Bytes(n) => n,
        }
    }
}

/// Entry point handed to each registered bench function.
///
/// Holds run-wide configuration (sample count, test mode) and spawns
/// [`BenchmarkGroup`]s.
#[derive(Debug, Clone)]
pub struct Criterion {
    samples: usize,
    // CPS_BENCH_SAMPLES beats even an explicit `sample_size(n)` in the bench
    // source: it is the operator's knob for dialing a whole run up or down.
    samples_override: Option<usize>,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench -- --test` asks harnesses to verify the routines run,
        // not to time them.
        let test_mode = std::env::args().any(|a| a == "--test");
        let samples_override = std::env::var("CPS_BENCH_SAMPLES")
            .ok()
            .and_then(|s| s.parse().ok())
            .map(|s: usize| s.max(1));
        Self {
            samples: 10,
            samples_override,
            test_mode,
        }
    }
}

impl Criterion {
    /// Overrides the default number of timed samples per benchmark.
    pub fn with_samples(mut self, samples: usize) -> Self {
        self.samples = samples.max(1);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
            throughput: None,
        }
    }
}

/// A named collection of benchmarks sharing a sample-size override.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: Option<usize>,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    /// Declares how many units of work each iteration of the group's
    /// benchmarks processes; report lines then include a ` [per_s=…]` suffix.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Times `routine` (via the [`Bencher`] it receives) and prints a one-line
    /// report: median and min–max range over the samples.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let samples = if self.criterion.test_mode {
            1
        } else {
            self.criterion
                .samples_override
                .or(self.sample_size)
                .unwrap_or(self.criterion.samples)
        };
        let mut bencher = Bencher {
            samples,
            durations: Vec::with_capacity(samples),
        };
        routine(&mut bencher);
        let mut times = bencher.durations;
        if self.criterion.test_mode {
            println!("{}/{}: ok (test mode)", self.name, id);
            return self;
        }
        if times.is_empty() {
            println!(
                "{}/{}: no samples (routine never called iter)",
                self.name, id
            );
            return self;
        }
        times.sort_unstable();
        let median = times[times.len() / 2];
        let (lo, hi) = (times[0], times[times.len() - 1]);
        // The `[median_ns=…]` / `[per_s=…]` suffixes are machine-readable:
        // they are what `scripts/bench_snapshot.sh` greps into `BENCH_*.json`
        // to track the perf trajectory across PRs. Keep their formats stable —
        // the snapshot script keys on which marker ends the line.
        let per_s_suffix = match self.throughput {
            Some(throughput) => {
                // Clamp the median to ≥ 1 ns so a degenerate zero-time sample
                // cannot divide by zero.
                let nanos = median.as_nanos().max(1) as f64;
                let per_s = throughput.units() as f64 * 1e9 / nanos;
                format!(" [per_s={}]", per_s.round() as u64)
            }
            None => String::new(),
        };
        println!(
            "{}/{}: median {:?} (min {:?}, max {:?}, {} samples) [median_ns={}]{}",
            self.name,
            id,
            median,
            lo,
            hi,
            times.len(),
            median.as_nanos(),
            per_s_suffix
        );
        self
    }

    /// Ends the group. (The shim reports eagerly, so this is a no-op kept for
    /// API compatibility.)
    pub fn finish(&mut self) {}
}

/// Timer handed to the closure of
/// [`bench_function`](BenchmarkGroup::bench_function).
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    durations: Vec<Duration>,
}

impl Bencher {
    /// Runs `routine` once per sample, recording each run's wall-clock time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.durations.push(start.elapsed());
        }
    }
}

/// Bundles bench functions into a named group runner, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `fn main()` running the given groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
