//! Differential tests for the sequential-counter dead-zone encoding: on
//! randomized monitor suites and measurement patterns (horizons ≤ 12), the
//! `O(T·k)` sequential-counter construction must agree with the naive window
//! enumeration *and* with the runtime alarm semantics.
//!
//! The measurement sequence is pinned with equality atoms, so the stealth
//! formula's truth is fully determined and SAT/UNSAT of the resulting query
//! is exactly "the monitors never alarm on this trace".

use cps_linalg::{SplitMix64, Vector};
use cps_monitors::{MeasurementSymbols, Monitor, MonitorSuite};
use cps_smt::{BoolVarPool, Formula, LinExpr, SmtSolver, VarPool};

const CASES: u64 = 120;

/// Fresh-variable measurement symbols for `horizon` steps of `signals`
/// components, plus the pinned concrete values.
fn pinned_measurements(
    rng: &mut SplitMix64,
    horizon: usize,
    signals: usize,
) -> (VarPool, MeasurementSymbols, Vec<Vector>, Vec<Formula>) {
    let mut pool = VarPool::new();
    let mut exprs = Vec::new();
    let mut values = Vec::new();
    let mut pins = Vec::new();
    for k in 0..horizon {
        let mut row_exprs = Vec::new();
        let mut row_values = Vec::new();
        for j in 0..signals {
            let var = pool.fresh(format!("y_{k}_{j}"));
            // Values concentrated around the monitor bounds so both OK and
            // violating instants are common.
            let value = rng.range(-2.0, 2.0);
            pins.push(Formula::atom(LinExpr::var(var).eq_to(value)));
            row_exprs.push(LinExpr::var(var));
            row_values.push(value);
        }
        exprs.push(row_exprs);
        values.push(Vector::from_slice(&row_values));
    }
    (pool, MeasurementSymbols::new(exprs), values, pins)
}

fn random_suite(rng: &mut SplitMix64, signals: usize, horizon: usize) -> MonitorSuite {
    let mut monitors = Vec::new();
    let count = 1 + rng.usize_below(3);
    for _ in 0..count {
        let signal = rng.usize_below(signals);
        match rng.usize_below(3) {
            0 => {
                let half_width = rng.range(0.3, 1.5);
                monitors.push(Monitor::range(signal, -half_width, half_width));
            }
            1 => monitors.push(Monitor::gradient(signal, rng.range(1.0, 12.0))),
            _ => {
                if signals > 1 {
                    let other = (signal + 1) % signals;
                    monitors.push(Monitor::relation(signal, other, 1.0, rng.range(0.3, 2.0)));
                } else {
                    monitors.push(Monitor::range(signal, -1.0, 1.0));
                }
            }
        }
    }
    let dead_zone = 1 + rng.usize_below(horizon.min(5));
    MonitorSuite::new(monitors, dead_zone, 0.1)
}

fn decide(pool: &VarPool, pins: &[Formula], stealth: Formula) -> bool {
    let mut solver = SmtSolver::new(pool.clone());
    for pin in pins {
        solver.assert(pin.clone());
    }
    solver.assert(stealth);
    solver.check().expect("query decided").is_sat()
}

#[test]
fn counter_encoding_agrees_with_naive_and_runtime() {
    let mut rng = SplitMix64::new(0x5E9u64);
    for case in 0..CASES {
        let horizon = 2 + rng.usize_below(11); // ≤ 12
        let signals = 1 + rng.usize_below(2);
        let (pool, symbols, values, pins) = pinned_measurements(&mut rng, horizon, signals);
        let suite = random_suite(&mut rng, signals, horizon);

        let runtime_stealthy = !suite.evaluate(&values).alarmed();
        let naive_sat = decide(&pool, &pins, suite.encode_stealth(&symbols));
        let mut bools = BoolVarPool::new();
        let counter_sat = decide(
            &pool,
            &pins,
            suite.encode_stealth_counter(&symbols, &mut bools, 0.0),
        );

        assert_eq!(
            naive_sat,
            runtime_stealthy,
            "case {case}: naive window encoding disagrees with runtime (horizon {horizon}, \
             dead zone {})",
            suite.dead_zone()
        );
        assert_eq!(
            counter_sat,
            runtime_stealthy,
            "case {case}: sequential-counter encoding disagrees with runtime (horizon {horizon}, \
             dead zone {})",
            suite.dead_zone()
        );
    }
}

#[test]
fn counter_encoding_is_satisfiable_when_attacker_may_choose_measurements() {
    // Free (unpinned) measurements: the solver must find a stealthy trace
    // whenever the monitors admit one, under both encodings.
    let mut rng = SplitMix64::new(77);
    for case in 0..40 {
        let horizon = 2 + rng.usize_below(11);
        let (pool, symbols, _, _) = pinned_measurements(&mut rng, horizon, 1);
        let suite = random_suite(&mut rng, 1, horizon);
        let naive_sat = decide(&pool, &[], suite.encode_stealth(&symbols));
        let mut bools = BoolVarPool::new();
        let counter_sat = decide(
            &pool,
            &[],
            suite.encode_stealth_counter(&symbols, &mut bools, 0.0),
        );
        assert!(naive_sat, "case {case}: all-zero measurements are stealthy");
        assert_eq!(naive_sat, counter_sat, "case {case}: encodings disagree");
    }
}

#[test]
fn counter_encoding_size_is_linear_in_horizon_times_dead_zone() {
    // The naive enumeration duplicates each per-step formula `dead_zone`
    // times; the counter encoding references it once. Compare atom counts
    // (theory atoms only — Boolean counter variables are free).
    let mut rng = SplitMix64::new(5);
    let horizon = 50;
    let (_, symbols, _, _) = pinned_measurements(&mut rng, horizon, 2);
    let suite = MonitorSuite::new(
        vec![
            Monitor::range(0, -0.2, 0.2),
            Monitor::gradient(0, 4.4),
            Monitor::relation(0, 1, 1.0, 0.9),
        ],
        7,
        0.1,
    );
    let naive = suite.encode_stealth(&symbols);
    let mut bools = BoolVarPool::new();
    let counter = suite.encode_stealth_counter(&symbols, &mut bools, 0.0);
    assert!(
        counter.atom_count() * 5 < naive.atom_count(),
        "counter encoding should be ~dead_zone× smaller: {} vs {}",
        counter.atom_count(),
        naive.atom_count()
    );
    assert!(bools.len() > 0, "counter encoding allocates Boolean vars");
}
