use cps_smt::LinExpr;

/// Symbolic per-step measurement expressions used when encoding monitors into
/// SMT formulas.
///
/// `MeasurementSymbols` is produced by the closed-loop unroller in the
/// `secure-cps` crate: entry `(k, j)` is the affine expression (over the
/// attack variables and any symbolic initial state) of measurement component
/// `j` at sampling instant `k` *as seen by the monitoring system*, i.e.
/// including the injected false data.
#[derive(Debug, Clone, PartialEq)]
pub struct MeasurementSymbols {
    steps: Vec<Vec<LinExpr>>,
}

impl MeasurementSymbols {
    /// Wraps per-step measurement expressions (outer index: sampling instant,
    /// inner index: measurement component).
    pub fn new(steps: Vec<Vec<LinExpr>>) -> Self {
        Self { steps }
    }

    /// Number of sampling instants covered.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Returns `true` when no steps are stored.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Number of measurement components per step (zero for an empty horizon).
    pub fn num_signals(&self) -> usize {
        self.steps.first().map_or(0, Vec::len)
    }

    /// The expression of measurement component `signal` at step `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k` or `signal` are out of range.
    pub fn measurement(&self, k: usize, signal: usize) -> LinExpr {
        self.steps[k][signal].clone()
    }

    /// All expressions of step `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    pub fn step(&self, k: usize) -> &[LinExpr] {
        &self.steps[k]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cps_smt::VarPool;

    #[test]
    fn accessors_return_expected_shapes() {
        let mut pool = VarPool::new();
        let a = pool.fresh("a");
        let b = pool.fresh("b");
        let symbols = MeasurementSymbols::new(vec![
            vec![LinExpr::var(a), LinExpr::var(b)],
            vec![LinExpr::constant(1.0), LinExpr::var(a) * 2.0],
        ]);
        assert_eq!(symbols.len(), 2);
        assert!(!symbols.is_empty());
        assert_eq!(symbols.num_signals(), 2);
        assert_eq!(symbols.measurement(1, 1).coefficient(a), 2.0);
        assert_eq!(symbols.step(0).len(), 2);
    }

    #[test]
    fn empty_symbols() {
        let symbols = MeasurementSymbols::new(Vec::new());
        assert!(symbols.is_empty());
        assert_eq!(symbols.num_signals(), 0);
    }
}
