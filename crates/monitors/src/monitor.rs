use cps_linalg::Vector;
use cps_smt::Formula;

use crate::MeasurementSymbols;

/// Range monitor: measurement component `signal` must stay in
/// `[lower, upper]`.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RangeMonitor {
    /// Index of the monitored measurement component.
    pub signal: usize,
    /// Lower admissible value.
    pub lower: f64,
    /// Upper admissible value.
    pub upper: f64,
}

impl RangeMonitor {
    /// Creates a range monitor.
    ///
    /// # Panics
    ///
    /// Panics if `lower > upper`.
    pub fn new(signal: usize, lower: f64, upper: f64) -> Self {
        assert!(lower <= upper, "range monitor bounds are inverted");
        Self {
            signal,
            lower,
            upper,
        }
    }
}

/// Gradient monitor: the discrete rate of change of measurement component
/// `signal` must not exceed `max_rate` in magnitude,
/// `|y_k[s] − y_{k−1}[s]| / T_s ≤ max_rate`.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct GradientMonitor {
    /// Index of the monitored measurement component.
    pub signal: usize,
    /// Maximum admissible rate of change (units of the signal per second).
    pub max_rate: f64,
}

impl GradientMonitor {
    /// Creates a gradient monitor.
    ///
    /// # Panics
    ///
    /// Panics if `max_rate` is negative.
    pub fn new(signal: usize, max_rate: f64) -> Self {
        assert!(max_rate >= 0.0, "gradient bound must be non-negative");
        Self { signal, max_rate }
    }
}

/// Relation monitor: two redundant measurements must agree,
/// `|y_k[a] − coeff_b · y_k[b]| ≤ allowed_diff`.
///
/// In the VSC case study `a` is the yaw-rate sensor and `coeff_b · y[b]` the
/// yaw rate estimated from lateral acceleration (`a_y / v_x`).
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RelationMonitor {
    /// Index of the primary measurement component.
    pub signal_a: usize,
    /// Index of the redundant measurement component.
    pub signal_b: usize,
    /// Scaling applied to the redundant component before comparison.
    pub coeff_b: f64,
    /// Maximum admissible disagreement.
    pub allowed_diff: f64,
}

impl RelationMonitor {
    /// Creates a relation monitor.
    ///
    /// # Panics
    ///
    /// Panics if `allowed_diff` is negative.
    pub fn new(signal_a: usize, signal_b: usize, coeff_b: f64, allowed_diff: f64) -> Self {
        assert!(
            allowed_diff >= 0.0,
            "allowed difference must be non-negative"
        );
        Self {
            signal_a,
            signal_b,
            coeff_b,
            allowed_diff,
        }
    }
}

/// A single monitoring constraint evaluated at every sampling instant.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Monitor {
    /// Range check on one measurement component.
    Range(RangeMonitor),
    /// Rate-of-change check on one measurement component.
    Gradient(GradientMonitor),
    /// Consistency check between two measurement components.
    Relation(RelationMonitor),
}

impl Monitor {
    /// Convenience constructor for a [`RangeMonitor`].
    pub fn range(signal: usize, lower: f64, upper: f64) -> Self {
        Monitor::Range(RangeMonitor::new(signal, lower, upper))
    }

    /// Convenience constructor for a [`GradientMonitor`].
    pub fn gradient(signal: usize, max_rate: f64) -> Self {
        Monitor::Gradient(GradientMonitor::new(signal, max_rate))
    }

    /// Convenience constructor for a [`RelationMonitor`].
    pub fn relation(signal_a: usize, signal_b: usize, coeff_b: f64, allowed_diff: f64) -> Self {
        Monitor::Relation(RelationMonitor::new(
            signal_a,
            signal_b,
            coeff_b,
            allowed_diff,
        ))
    }

    /// Returns `true` when the monitor is satisfied (not violated) at step `k`
    /// of the measurement sequence, with sampling period `ts`.
    ///
    /// Gradient monitors are trivially satisfied at `k = 0` (no predecessor).
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range or a signal index exceeds the measurement
    /// dimension.
    pub fn ok_at(&self, k: usize, measurements: &[Vector], ts: f64) -> bool {
        let prev = if k == 0 {
            None
        } else {
            Some(&measurements[k - 1])
        };
        self.ok_step(&measurements[k], prev, ts)
    }

    /// Streaming counterpart of [`Monitor::ok_at`]: evaluates the monitor on
    /// the current measurement and its predecessor (`None` at the first
    /// instant), which is all any monitor kind looks at. Same arithmetic as
    /// `ok_at`, so verdicts are identical.
    pub fn ok_step(&self, y: &Vector, prev: Option<&Vector>, ts: f64) -> bool {
        match self {
            Monitor::Range(m) => y[m.signal] >= m.lower && y[m.signal] <= m.upper,
            Monitor::Gradient(m) => match prev {
                None => true,
                Some(prev) => {
                    let rate = (y[m.signal] - prev[m.signal]) / ts;
                    rate.abs() <= m.max_rate
                }
            },
            Monitor::Relation(m) => {
                (y[m.signal_a] - m.coeff_b * y[m.signal_b]).abs() <= m.allowed_diff
            }
        }
    }

    /// Symbolic counterpart of [`Monitor::ok_at`]: a formula over the
    /// measurement expressions that is true exactly when the monitor is
    /// satisfied at step `k`.
    pub fn encode_ok_at(&self, k: usize, symbols: &MeasurementSymbols, ts: f64) -> Formula {
        self.encode_ok_at_margin(k, symbols, ts, 0.0)
    }

    /// Like [`Monitor::encode_ok_at`] but with every admissible interval
    /// shrunk by `margin` on each side.
    ///
    /// A linear-arithmetic solver parks satisfying assignments exactly on
    /// constraint boundaries; re-simulating such a model reproduces the
    /// monitored values only up to float round-off, which can push an
    /// exactly-on-the-bound instant across it at runtime. A small positive
    /// margin (well above round-off, well below model fidelity — the attack
    /// synthesiser uses `1e-6`) makes every symbolically-OK instant robustly
    /// OK under [`Monitor::ok_at`]. A margin larger than half the monitor's
    /// admissible width is clamped so the shrunk interval never inverts
    /// (i.e. the encoding degrades to "exactly on the interval midpoint"
    /// rather than silently becoming unsatisfiable).
    pub fn encode_ok_at_margin(
        &self,
        k: usize,
        symbols: &MeasurementSymbols,
        ts: f64,
        margin: f64,
    ) -> Formula {
        match self {
            Monitor::Range(m) => {
                let margin = margin.min((m.upper - m.lower) / 2.0);
                let y = symbols.measurement(k, m.signal);
                Formula::and(vec![
                    Formula::atom(y.clone().ge(m.lower + margin)),
                    Formula::atom(y.le(m.upper - margin)),
                ])
            }
            Monitor::Gradient(m) => {
                if k == 0 {
                    Formula::True
                } else {
                    let diff =
                        symbols.measurement(k, m.signal) - symbols.measurement(k - 1, m.signal);
                    let bound = (m.max_rate * ts - margin).max(0.0);
                    Formula::and(vec![
                        Formula::atom(diff.clone().le(bound)),
                        Formula::atom(diff.ge(-bound)),
                    ])
                }
            }
            Monitor::Relation(m) => {
                let diff = symbols.measurement(k, m.signal_a)
                    - symbols.measurement(k, m.signal_b).scale(m.coeff_b);
                let bound = (m.allowed_diff - margin).max(0.0);
                Formula::and(vec![
                    Formula::atom(diff.clone().le(bound)),
                    Formula::atom(diff.ge(-bound)),
                ])
            }
        }
    }

    /// The measurement components referenced by this monitor.
    pub fn signals(&self) -> Vec<usize> {
        match self {
            Monitor::Range(m) => vec![m.signal],
            Monitor::Gradient(m) => vec![m.signal],
            Monitor::Relation(m) => vec![m.signal_a, m.signal_b],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meas(values: &[&[f64]]) -> Vec<Vector> {
        values.iter().map(|v| Vector::from_slice(v)).collect()
    }

    #[test]
    fn range_monitor_detects_out_of_range() {
        let m = Monitor::range(0, -1.0, 1.0);
        let ys = meas(&[&[0.5], &[1.5], &[-2.0]]);
        assert!(m.ok_at(0, &ys, 0.1));
        assert!(!m.ok_at(1, &ys, 0.1));
        assert!(!m.ok_at(2, &ys, 0.1));
    }

    #[test]
    #[should_panic(expected = "inverted")]
    fn range_monitor_rejects_inverted_bounds() {
        let _ = RangeMonitor::new(0, 1.0, -1.0);
    }

    #[test]
    fn gradient_monitor_detects_fast_changes() {
        let m = Monitor::gradient(0, 2.0);
        let ts = 0.1;
        // Steps of 0.1 per sample = 1.0/s (ok); step of 0.5 per sample = 5.0/s (violation).
        let ys = meas(&[&[0.0], &[0.1], &[0.6]]);
        assert!(m.ok_at(0, &ys, ts), "first sample has no predecessor");
        assert!(m.ok_at(1, &ys, ts));
        assert!(!m.ok_at(2, &ys, ts));
    }

    #[test]
    fn relation_monitor_compares_scaled_signals() {
        // |y[0] - 2*y[1]| <= 0.1
        let m = Monitor::relation(0, 1, 2.0, 0.1);
        let ys = meas(&[&[2.0, 1.0], &[2.5, 1.0]]);
        assert!(m.ok_at(0, &ys, 0.1));
        assert!(!m.ok_at(1, &ys, 0.1));
    }

    #[test]
    fn signals_lists_referenced_components() {
        assert_eq!(Monitor::range(3, 0.0, 1.0).signals(), vec![3]);
        assert_eq!(Monitor::relation(0, 2, 1.0, 0.1).signals(), vec![0, 2]);
    }

    #[test]
    fn symbolic_and_runtime_agree_on_concrete_traces() {
        use cps_smt::{LinExpr, VarPool};

        let monitors = vec![
            Monitor::range(0, -1.0, 1.0),
            Monitor::gradient(0, 2.0),
            Monitor::relation(0, 1, 0.5, 0.3),
        ];
        let ts = 0.1;
        let ys = meas(&[&[0.2, 0.5], &[0.9, 1.0], &[0.95, 2.6]]);

        // Build symbolic measurements that are just fresh variables, then
        // evaluate the generated formulas at the concrete measurement values.
        let mut pool = VarPool::new();
        let mut exprs = Vec::new();
        let mut assignment = Vec::new();
        for y in &ys {
            let mut row = Vec::new();
            for j in 0..y.len() {
                let var = pool.fresh(format!("y_{j}"));
                row.push(LinExpr::var(var));
                assignment.push(y[j]);
            }
            exprs.push(row);
        }
        let symbols = MeasurementSymbols::new(exprs);

        for monitor in &monitors {
            for k in 0..ys.len() {
                let runtime = monitor.ok_at(k, &ys, ts);
                let symbolic = monitor.encode_ok_at(k, &symbols, ts).holds(&assignment);
                assert_eq!(
                    runtime, symbolic,
                    "monitor {monitor:?} disagrees at step {k}"
                );
            }
        }
    }
}
