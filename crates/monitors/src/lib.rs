//! Plant monitoring constraints (`mdc` in the paper).
//!
//! Paper mapping: the monitoring/diagnostics constraints of §II–§III of
//! *Koley et al. (DATE 2020)*, instantiated for the VSC case study in §IV
//! (range, gradient and relation checks with a 300 ms dead zone).
//!
//! Modern CPS implementations often ship sanity monitors alongside the
//! controller: range checks, gradient (rate-of-change) checks and relation
//! checks between redundant sensors, debounced by a *dead zone* so that a
//! transient violation does not immediately raise an alarm. The paper's VSC
//! case study models exactly this structure, and Algorithm 1 needs the same
//! constraints **twice**:
//!
//! - at *runtime*, to decide whether a simulated trace trips the monitors
//!   ([`MonitorSuite::evaluate`]), and
//! - *symbolically*, as SMT formulas over the per-step measurement
//!   expressions, to restrict the attacker to monitor-stealthy injections
//!   ([`MonitorSuite::encode_stealth`]).
//!
//! Both views are generated from the same [`Monitor`] values so they cannot
//! drift apart.
//!
//! # Example
//!
//! ```
//! use cps_linalg::Vector;
//! use cps_monitors::{Monitor, MonitorSuite, RangeMonitor};
//!
//! let suite = MonitorSuite::new(vec![Monitor::range(0, -1.0, 1.0)], 2, 0.1);
//! let ok = vec![Vector::from_slice(&[0.5]); 5];
//! assert!(suite.evaluate(&ok).alarm_at.is_none());
//!
//! let bad = vec![Vector::from_slice(&[2.0]); 5];
//! // Violations start immediately; with a dead zone of 2 samples the alarm
//! // fires at the second consecutive violation.
//! assert_eq!(suite.evaluate(&bad).alarm_at, Some(1));
//! # let _ = RangeMonitor::new(0, -1.0, 1.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod monitor;
mod suite;
mod symbolic;

pub use monitor::{GradientMonitor, Monitor, RangeMonitor, RelationMonitor};
pub use suite::{MonitorScan, MonitorSuite, MonitorVerdict};
pub use symbolic::MeasurementSymbols;
