use cps_linalg::Vector;
use cps_smt::Formula;

use crate::{MeasurementSymbols, Monitor};

/// Verdict of running a [`MonitorSuite`] over a measurement sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MonitorVerdict {
    /// `violations[k]` is `true` when at least one monitor is violated at
    /// sampling instant `k`.
    pub violations: Vec<bool>,
    /// First sampling instant at which the alarm fires (i.e. the end of the
    /// first run of `dead_zone` consecutive violations), if any.
    pub alarm_at: Option<usize>,
}

impl MonitorVerdict {
    /// Returns `true` when the monitoring system raised an alarm.
    pub fn alarmed(&self) -> bool {
        self.alarm_at.is_some()
    }
}

/// A set of monitors debounced by a dead zone, matching the paper's `mdc`.
///
/// A sampling instant is *violating* when any monitor check fails there; the
/// suite raises an alarm when `dead_zone` consecutive instants are violating.
/// With `dead_zone == 1` a single violation alarms immediately.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MonitorSuite {
    monitors: Vec<Monitor>,
    dead_zone: usize,
    sampling_period: f64,
}

impl MonitorSuite {
    /// Creates a suite from monitors, a dead zone length (in samples, at least
    /// one) and the sampling period in seconds.
    ///
    /// # Panics
    ///
    /// Panics if `dead_zone` is zero or `sampling_period` is not positive.
    pub fn new(monitors: Vec<Monitor>, dead_zone: usize, sampling_period: f64) -> Self {
        assert!(dead_zone >= 1, "dead zone must be at least one sample");
        assert!(sampling_period > 0.0, "sampling period must be positive");
        Self {
            monitors,
            dead_zone,
            sampling_period,
        }
    }

    /// A suite with no monitors (never alarms).
    pub fn empty(sampling_period: f64) -> Self {
        Self::new(Vec::new(), 1, sampling_period)
    }

    /// The monitors in the suite.
    pub fn monitors(&self) -> &[Monitor] {
        &self.monitors
    }

    /// The dead-zone length in samples.
    pub fn dead_zone(&self) -> usize {
        self.dead_zone
    }

    /// The sampling period in seconds.
    pub fn sampling_period(&self) -> f64 {
        self.sampling_period
    }

    /// Returns `true` when the suite contains no monitors.
    pub fn is_empty(&self) -> bool {
        self.monitors.is_empty()
    }

    /// Returns `true` when no monitor is violated at step `k`.
    pub fn ok_at(&self, k: usize, measurements: &[Vector]) -> bool {
        self.monitors
            .iter()
            .all(|m| m.ok_at(k, measurements, self.sampling_period))
    }

    /// Evaluates the suite over a measurement sequence.
    pub fn evaluate(&self, measurements: &[Vector]) -> MonitorVerdict {
        let violations: Vec<bool> = (0..measurements.len())
            .map(|k| !self.ok_at(k, measurements))
            .collect();
        let mut run = 0usize;
        let mut alarm_at = None;
        for (k, &violated) in violations.iter().enumerate() {
            if violated {
                run += 1;
                if run >= self.dead_zone {
                    alarm_at = Some(k);
                    break;
                }
            } else {
                run = 0;
            }
        }
        MonitorVerdict {
            violations,
            alarm_at,
        }
    }

    /// Symbolic "no violation at step `k`" formula.
    pub fn encode_ok_at(&self, k: usize, symbols: &MeasurementSymbols) -> Formula {
        Formula::and(
            self.monitors
                .iter()
                .map(|m| m.encode_ok_at(k, symbols, self.sampling_period))
                .collect(),
        )
    }

    /// Symbolic stealthiness constraint over a whole horizon: the monitoring
    /// system never raises an alarm, i.e. in every window of `dead_zone`
    /// consecutive instants at least one instant is violation-free.
    ///
    /// With an empty suite this is simply `true`.
    pub fn encode_stealth(&self, symbols: &MeasurementSymbols) -> Formula {
        if self.monitors.is_empty() {
            return Formula::True;
        }
        let horizon = symbols.len();
        if horizon < self.dead_zone {
            return Formula::True;
        }
        let ok: Vec<Formula> = (0..horizon)
            .map(|k| self.encode_ok_at(k, symbols))
            .collect();
        let mut windows = Vec::new();
        for start in 0..=(horizon - self.dead_zone) {
            windows.push(Formula::or(
                (start..start + self.dead_zone)
                    .map(|k| ok[k].clone())
                    .collect(),
            ));
        }
        Formula::and(windows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cps_smt::{LinExpr, VarPool};

    fn meas(values: &[&[f64]]) -> Vec<Vector> {
        values.iter().map(|v| Vector::from_slice(v)).collect()
    }

    fn range_suite(dead_zone: usize) -> MonitorSuite {
        MonitorSuite::new(vec![Monitor::range(0, -1.0, 1.0)], dead_zone, 0.1)
    }

    #[test]
    fn empty_suite_never_alarms() {
        let suite = MonitorSuite::empty(0.04);
        assert!(suite.is_empty());
        let verdict = suite.evaluate(&meas(&[&[100.0], &[200.0]]));
        assert!(!verdict.alarmed());
    }

    #[test]
    fn dead_zone_debounces_transient_violations() {
        let suite = range_suite(3);
        // Two consecutive violations, then recovery: no alarm.
        let verdict = suite.evaluate(&meas(&[&[2.0], &[2.0], &[0.0], &[2.0], &[2.0], &[0.0]]));
        assert!(!verdict.alarmed());
        assert_eq!(
            verdict.violations,
            vec![true, true, false, true, true, false]
        );
        // Three consecutive violations: alarm at the third.
        let verdict = suite.evaluate(&meas(&[&[0.0], &[2.0], &[2.0], &[2.0]]));
        assert_eq!(verdict.alarm_at, Some(3));
    }

    #[test]
    fn dead_zone_of_one_alarms_immediately() {
        let suite = range_suite(1);
        let verdict = suite.evaluate(&meas(&[&[0.0], &[5.0]]));
        assert_eq!(verdict.alarm_at, Some(1));
    }

    #[test]
    #[should_panic(expected = "dead zone")]
    fn zero_dead_zone_is_rejected() {
        let _ = MonitorSuite::new(vec![], 0, 0.1);
    }

    fn symbols_for(values: &[&[f64]]) -> (MeasurementSymbols, Vec<f64>) {
        let mut pool = VarPool::new();
        let mut exprs = Vec::new();
        let mut assignment = Vec::new();
        for row in values {
            let mut step = Vec::new();
            for value in row.iter() {
                let var = pool.fresh("y");
                step.push(LinExpr::var(var));
                assignment.push(*value);
            }
            exprs.push(step);
        }
        (MeasurementSymbols::new(exprs), assignment)
    }

    #[test]
    fn symbolic_stealth_matches_runtime_alarm() {
        let suite = MonitorSuite::new(
            vec![Monitor::range(0, -1.0, 1.0), Monitor::gradient(0, 20.0)],
            2,
            0.1,
        );
        // Stealthy: a single isolated range violation (step 2) within the dead zone.
        let stealthy_values: Vec<&[f64]> = vec![&[0.2], &[0.4], &[1.5], &[0.3], &[0.2]];
        // Alarming: two consecutive range violations (steps 1 and 2).
        let alarming_values: Vec<&[f64]> = vec![&[0.2], &[1.5], &[1.6], &[0.3], &[0.2]];

        for (values, expect_alarm) in [(stealthy_values, false), (alarming_values, true)] {
            let runtime = suite.evaluate(&meas(&values)).alarmed();
            assert_eq!(runtime, expect_alarm, "runtime verdict mismatch");
            let (symbols, assignment) = symbols_for(&values);
            let stealth = suite.encode_stealth(&symbols);
            assert_eq!(
                stealth.holds(&assignment),
                !expect_alarm,
                "symbolic stealth disagrees with runtime for {values:?}"
            );
        }
    }

    #[test]
    fn stealth_formula_is_true_for_short_horizons() {
        let suite = range_suite(5);
        let (symbols, _) = symbols_for(&[&[0.0], &[0.0]]);
        assert_eq!(suite.encode_stealth(&symbols), Formula::True);
    }

    #[test]
    fn accessors() {
        let suite = range_suite(4);
        assert_eq!(suite.monitors().len(), 1);
        assert_eq!(suite.dead_zone(), 4);
        assert_eq!(suite.sampling_period(), 0.1);
    }
}
