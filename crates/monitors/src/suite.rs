use cps_linalg::Vector;
use cps_smt::{BoolVarPool, Formula};

use crate::{MeasurementSymbols, Monitor};

/// Verdict of running a [`MonitorSuite`] over a measurement sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MonitorVerdict {
    /// `violations[k]` is `true` when at least one monitor is violated at
    /// sampling instant `k`.
    pub violations: Vec<bool>,
    /// First sampling instant at which the alarm fires (i.e. the end of the
    /// first run of `dead_zone` consecutive violations), if any.
    pub alarm_at: Option<usize>,
}

impl MonitorVerdict {
    /// Returns `true` when the monitoring system raised an alarm.
    pub fn alarmed(&self) -> bool {
        self.alarm_at.is_some()
    }
}

/// A set of monitors debounced by a dead zone, matching the paper's `mdc`.
///
/// A sampling instant is *violating* when any monitor check fails there; the
/// suite raises an alarm when `dead_zone` consecutive instants are violating.
/// With `dead_zone == 1` a single violation alarms immediately.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MonitorSuite {
    monitors: Vec<Monitor>,
    dead_zone: usize,
    sampling_period: f64,
}

impl MonitorSuite {
    /// Creates a suite from monitors, a dead zone length (in samples, at least
    /// one) and the sampling period in seconds.
    ///
    /// # Panics
    ///
    /// Panics if `dead_zone` is zero or `sampling_period` is not positive.
    pub fn new(monitors: Vec<Monitor>, dead_zone: usize, sampling_period: f64) -> Self {
        assert!(dead_zone >= 1, "dead zone must be at least one sample");
        assert!(sampling_period > 0.0, "sampling period must be positive");
        Self {
            monitors,
            dead_zone,
            sampling_period,
        }
    }

    /// A suite with no monitors (never alarms).
    pub fn empty(sampling_period: f64) -> Self {
        Self::new(Vec::new(), 1, sampling_period)
    }

    /// The monitors in the suite.
    pub fn monitors(&self) -> &[Monitor] {
        &self.monitors
    }

    /// The dead-zone length in samples.
    pub fn dead_zone(&self) -> usize {
        self.dead_zone
    }

    /// The sampling period in seconds.
    pub fn sampling_period(&self) -> f64 {
        self.sampling_period
    }

    /// Returns `true` when the suite contains no monitors.
    pub fn is_empty(&self) -> bool {
        self.monitors.is_empty()
    }

    /// Returns `true` when no monitor is violated at step `k`.
    pub fn ok_at(&self, k: usize, measurements: &[Vector]) -> bool {
        self.monitors
            .iter()
            .all(|m| m.ok_at(k, measurements, self.sampling_period))
    }

    /// First sampling instant at which the alarm fires (the end of the first
    /// run of `dead_zone` consecutive violating instants), or `None`.
    ///
    /// Allocation-free short-circuiting variant of [`MonitorSuite::evaluate`]
    /// for callers that only need the alarm verdict: monitor checks stop at
    /// the instant the alarm is decided instead of materialising the full
    /// per-instant violation vector — the hot path of the FAR experiment's
    /// rollout filter.
    pub fn first_alarm(&self, measurements: &[Vector]) -> Option<usize> {
        let mut run = 0usize;
        for k in 0..measurements.len() {
            if self.ok_at(k, measurements) {
                run = 0;
            } else {
                run += 1;
                if run >= self.dead_zone {
                    return Some(k);
                }
            }
        }
        None
    }

    /// Creates a reusable streaming evaluator with the same verdicts as
    /// [`MonitorSuite::first_alarm`], for callers that produce measurements
    /// one instant at a time (the allocation-free FAR rollout engine).
    pub fn scanner(&self) -> MonitorScan<'_> {
        MonitorScan {
            suite: self,
            prev: Vector::zeros(0),
            has_prev: false,
            run: 0,
        }
    }

    /// Evaluates the suite over a measurement sequence.
    pub fn evaluate(&self, measurements: &[Vector]) -> MonitorVerdict {
        let violations: Vec<bool> = (0..measurements.len())
            .map(|k| !self.ok_at(k, measurements))
            .collect();
        let mut run = 0usize;
        let mut alarm_at = None;
        for (k, &violated) in violations.iter().enumerate() {
            if violated {
                run += 1;
                if run >= self.dead_zone {
                    alarm_at = Some(k);
                    break;
                }
            } else {
                run = 0;
            }
        }
        MonitorVerdict {
            violations,
            alarm_at,
        }
    }

    /// Symbolic "no violation at step `k`" formula.
    pub fn encode_ok_at(&self, k: usize, symbols: &MeasurementSymbols) -> Formula {
        self.encode_ok_at_margin(k, symbols, 0.0)
    }

    /// Symbolic "no violation at step `k`" formula with every monitor's
    /// admissible interval shrunk by `margin` (see
    /// [`Monitor::encode_ok_at_margin`] for why synthesis queries need one).
    pub fn encode_ok_at_margin(
        &self,
        k: usize,
        symbols: &MeasurementSymbols,
        margin: f64,
    ) -> Formula {
        Formula::and(
            self.monitors
                .iter()
                .map(|m| m.encode_ok_at_margin(k, symbols, self.sampling_period, margin))
                .collect(),
        )
    }

    /// Symbolic stealthiness constraint over a whole horizon: the monitoring
    /// system never raises an alarm, i.e. in every window of `dead_zone`
    /// consecutive instants at least one instant is violation-free.
    ///
    /// This is the *naive window enumeration*: every per-step "ok" formula is
    /// cloned into each of the `dead_zone` windows covering it, so the
    /// encoding grows as `O(T·d·m)` duplicated sub-formulas and leaves the
    /// solver to rediscover the shared structure window by window. It is kept
    /// as the executable reference semantics (it is evaluable with
    /// [`Formula::holds`]) and as the differential-testing baseline for
    /// [`MonitorSuite::encode_stealth_counter`], which scales to the paper's
    /// 50-sample horizons.
    ///
    /// With an empty suite this is simply `true`.
    pub fn encode_stealth(&self, symbols: &MeasurementSymbols) -> Formula {
        self.encode_stealth_margin(symbols, 0.0)
    }

    /// [`MonitorSuite::encode_stealth`] with a robustness `margin` applied to
    /// every monitor interval (see [`Monitor::encode_ok_at_margin`]).
    pub fn encode_stealth_margin(&self, symbols: &MeasurementSymbols, margin: f64) -> Formula {
        if self.monitors.is_empty() {
            return Formula::True;
        }
        let horizon = symbols.len();
        if horizon < self.dead_zone {
            return Formula::True;
        }
        let ok: Vec<Formula> = (0..horizon)
            .map(|k| self.encode_ok_at_margin(k, symbols, margin))
            .collect();
        let mut windows = Vec::new();
        for start in 0..=(horizon - self.dead_zone) {
            windows.push(Formula::or(
                (start..start + self.dead_zone)
                    .map(|k| ok[k].clone())
                    .collect(),
            ));
        }
        Formula::and(windows)
    }

    /// Sequential-counter (unary running-count) encoding of the same
    /// stealthiness constraint as [`MonitorSuite::encode_stealth`]:
    /// equisatisfiable, but sized `O(T·d)` with every per-step "ok" formula
    /// encoded exactly once.
    ///
    /// For each instant `k` a fresh propositional variable `v_k` is forced
    /// true whenever some monitor check fails (`¬ok_k → v_k`), and unary
    /// run-length registers `r_{k,j}` ("the violation run ending at `k` has
    /// length ≥ j") accumulate via `v_k ∧ r_{k−1,j−1} → r_{k,j}`; a run
    /// reaching the dead-zone length `d` is forbidden by the clause
    /// `¬v_k ∨ ¬r_{k−1,d−1}`. All implications point upward only: a model may
    /// set registers spuriously high, which never *enables* anything, so a
    /// satisfying assignment exists iff one with exact counts exists — i.e.
    /// iff the attacker has a trace on which the monitors never alarm.
    ///
    /// Fresh propositional variables are drawn from `bools`; use one pool per
    /// solver instance. `margin` shrinks every monitor interval as in
    /// [`Monitor::encode_ok_at_margin`] (pass `0.0` for the exact bounds).
    pub fn encode_stealth_counter(
        &self,
        symbols: &MeasurementSymbols,
        bools: &mut BoolVarPool,
        margin: f64,
    ) -> Formula {
        if self.monitors.is_empty() {
            return Formula::True;
        }
        let horizon = symbols.len();
        let d = self.dead_zone;
        if horizon < d {
            return Formula::True;
        }
        if d == 1 {
            // No debouncing: every instant must be violation-free.
            return Formula::and(
                (0..horizon)
                    .map(|k| self.encode_ok_at_margin(k, symbols, margin))
                    .collect(),
            );
        }
        let mut parts = Vec::with_capacity(horizon * (d + 1));
        // v_k ⇐ "some monitor check fails at instant k".
        let viol: Vec<u32> = (0..horizon).map(|_| bools.fresh()).collect();
        for (k, &v) in viol.iter().enumerate() {
            parts.push(Formula::or(vec![
                self.encode_ok_at_margin(k, symbols, margin),
                Formula::BoolVar(v),
            ]));
        }
        // Unary run-length registers; `prev[j]` is r_{k-1, j+1}. A run ending
        // at step k is at most k+1 long, so only min(d−1, k+1) registers are
        // materialised per step.
        let mut prev: Vec<u32> = Vec::new();
        for (k, &v) in viol.iter().enumerate() {
            let mut cur = Vec::with_capacity((d - 1).min(k + 1));
            let r1 = bools.fresh();
            parts.push(Formula::or(vec![
                Formula::not(Formula::BoolVar(v)),
                Formula::BoolVar(r1),
            ]));
            cur.push(r1);
            for j in 1..(d - 1).min(k + 1) {
                let r = bools.fresh();
                parts.push(Formula::or(vec![
                    Formula::not(Formula::BoolVar(v)),
                    Formula::not(Formula::BoolVar(prev[j - 1])),
                    Formula::BoolVar(r),
                ]));
                cur.push(r);
            }
            if prev.len() >= d - 1 {
                parts.push(Formula::or(vec![
                    Formula::not(Formula::BoolVar(v)),
                    Formula::not(Formula::BoolVar(prev[d - 2])),
                ]));
            }
            prev = cur;
        }
        Formula::and(parts)
    }
}

/// Streaming evaluator created by [`MonitorSuite::scanner`]: feed
/// measurements one instant at a time (in order from instant zero) and learn
/// the moment the debounced `mdc` alarm fires.
///
/// The scan buffers one previous measurement (for gradient monitors) and the
/// current violation-run length; [`MonitorScan::reset`] rewinds it for a fresh
/// trace without dropping the buffer, so steady-state stepping is
/// allocation-free. Verdicts are identical to [`MonitorSuite::first_alarm`]
/// (same [`Monitor::ok_step`] arithmetic, same run counting), asserted by the
/// `streaming_runtime` differential suite.
#[derive(Debug, Clone)]
pub struct MonitorScan<'a> {
    suite: &'a MonitorSuite,
    prev: Vector,
    has_prev: bool,
    run: usize,
}

impl MonitorScan<'_> {
    /// Rewinds the scan for a fresh measurement sequence.
    pub fn reset(&mut self) {
        self.has_prev = false;
        self.run = 0;
    }

    /// Feeds the measurement of the next sampling instant; returns `true`
    /// when the alarm fires there (the end of a run of `dead_zone`
    /// consecutive violating instants). Callers may stop at the first alarm —
    /// continuing is allowed but verdicts after the first alarm are not
    /// meaningful (`first_alarm` stops there too).
    pub fn step(&mut self, y: &Vector) -> bool {
        let prev = if self.has_prev {
            Some(&self.prev)
        } else {
            None
        };
        let ok = self
            .suite
            .monitors
            .iter()
            .all(|m| m.ok_step(y, prev, self.suite.sampling_period));
        let alarmed = if ok {
            self.run = 0;
            false
        } else {
            self.run += 1;
            self.run >= self.suite.dead_zone
        };
        self.prev.copy_from(y);
        self.has_prev = true;
        alarmed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cps_smt::{LinExpr, VarPool};

    fn meas(values: &[&[f64]]) -> Vec<Vector> {
        values.iter().map(|v| Vector::from_slice(v)).collect()
    }

    fn range_suite(dead_zone: usize) -> MonitorSuite {
        MonitorSuite::new(vec![Monitor::range(0, -1.0, 1.0)], dead_zone, 0.1)
    }

    #[test]
    fn empty_suite_never_alarms() {
        let suite = MonitorSuite::empty(0.04);
        assert!(suite.is_empty());
        let verdict = suite.evaluate(&meas(&[&[100.0], &[200.0]]));
        assert!(!verdict.alarmed());
    }

    #[test]
    fn dead_zone_debounces_transient_violations() {
        let suite = range_suite(3);
        // Two consecutive violations, then recovery: no alarm.
        let verdict = suite.evaluate(&meas(&[&[2.0], &[2.0], &[0.0], &[2.0], &[2.0], &[0.0]]));
        assert!(!verdict.alarmed());
        assert_eq!(
            verdict.violations,
            vec![true, true, false, true, true, false]
        );
        // Three consecutive violations: alarm at the third.
        let verdict = suite.evaluate(&meas(&[&[0.0], &[2.0], &[2.0], &[2.0]]));
        assert_eq!(verdict.alarm_at, Some(3));
    }

    #[test]
    fn dead_zone_of_one_alarms_immediately() {
        let suite = range_suite(1);
        let verdict = suite.evaluate(&meas(&[&[0.0], &[5.0]]));
        assert_eq!(verdict.alarm_at, Some(1));
    }

    #[test]
    #[should_panic(expected = "dead zone")]
    fn zero_dead_zone_is_rejected() {
        let _ = MonitorSuite::new(vec![], 0, 0.1);
    }

    fn symbols_for(values: &[&[f64]]) -> (MeasurementSymbols, Vec<f64>) {
        let mut pool = VarPool::new();
        let mut exprs = Vec::new();
        let mut assignment = Vec::new();
        for row in values {
            let mut step = Vec::new();
            for value in row.iter() {
                let var = pool.fresh("y");
                step.push(LinExpr::var(var));
                assignment.push(*value);
            }
            exprs.push(step);
        }
        (MeasurementSymbols::new(exprs), assignment)
    }

    #[test]
    fn symbolic_stealth_matches_runtime_alarm() {
        let suite = MonitorSuite::new(
            vec![Monitor::range(0, -1.0, 1.0), Monitor::gradient(0, 20.0)],
            2,
            0.1,
        );
        // Stealthy: a single isolated range violation (step 2) within the dead zone.
        let stealthy_values: Vec<&[f64]> = vec![&[0.2], &[0.4], &[1.5], &[0.3], &[0.2]];
        // Alarming: two consecutive range violations (steps 1 and 2).
        let alarming_values: Vec<&[f64]> = vec![&[0.2], &[1.5], &[1.6], &[0.3], &[0.2]];

        for (values, expect_alarm) in [(stealthy_values, false), (alarming_values, true)] {
            let runtime = suite.evaluate(&meas(&values)).alarmed();
            assert_eq!(runtime, expect_alarm, "runtime verdict mismatch");
            let (symbols, assignment) = symbols_for(&values);
            let stealth = suite.encode_stealth(&symbols);
            assert_eq!(
                stealth.holds(&assignment),
                !expect_alarm,
                "symbolic stealth disagrees with runtime for {values:?}"
            );
        }
    }

    #[test]
    fn stealth_formula_is_true_for_short_horizons() {
        let suite = range_suite(5);
        let (symbols, _) = symbols_for(&[&[0.0], &[0.0]]);
        assert_eq!(suite.encode_stealth(&symbols), Formula::True);
    }

    #[test]
    fn scanner_matches_first_alarm() {
        let suite = MonitorSuite::new(
            vec![Monitor::range(0, -1.0, 1.0), Monitor::gradient(0, 20.0)],
            2,
            0.1,
        );
        let sequences: Vec<Vec<Vector>> = vec![
            meas(&[&[0.2], &[0.4], &[1.5], &[0.3], &[0.2]]),
            meas(&[&[0.2], &[1.5], &[1.6], &[0.3], &[0.2]]),
            meas(&[&[0.0], &[5.0], &[9.0], &[9.0]]),
            meas(&[&[0.0]]),
            meas(&[]),
        ];
        let mut scan = suite.scanner();
        for measurements in &sequences {
            scan.reset();
            let mut streamed = None;
            for (k, y) in measurements.iter().enumerate() {
                if scan.step(y) {
                    streamed = Some(k);
                    break;
                }
            }
            assert_eq!(streamed, suite.first_alarm(measurements));
        }
    }

    #[test]
    fn accessors() {
        let suite = range_suite(4);
        assert_eq!(suite.monitors().len(), 1);
        assert_eq!(suite.dead_zone(), 4);
        assert_eq!(suite.sampling_period(), 0.1);
    }
}
