//! Property-based tests for the linear-algebra substrate.

use cps_linalg::{expm, Matrix, Vector};
use proptest::prelude::*;

/// Strategy producing small, well-scaled square matrices.
fn square_matrix(n: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-5.0f64..5.0, n * n)
        .prop_map(move |data| Matrix::from_fn(n, n, |i, j| data[i * n + j]))
}

/// Strategy producing a diagonally dominant (hence invertible) matrix.
fn invertible_matrix(n: usize) -> impl Strategy<Value = Matrix> {
    square_matrix(n).prop_map(move |m| {
        let mut out = m;
        for i in 0..n {
            let row_sum: f64 = (0..n).map(|j| out[(i, j)].abs()).sum();
            out[(i, i)] = row_sum + 1.0;
        }
        out
    })
}

fn vector(n: usize) -> impl Strategy<Value = Vector> {
    prop::collection::vec(-10.0f64..10.0, n).prop_map(Vector::from)
}

proptest! {
    #[test]
    fn transpose_is_involution(m in square_matrix(3)) {
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn identity_is_multiplicative_neutral(m in square_matrix(3)) {
        let i = Matrix::identity(3);
        prop_assert!(((m.matmul(&i).unwrap()) - m.clone()).norm_fro() < 1e-12);
        prop_assert!(((i.matmul(&m).unwrap()) - m).norm_fro() < 1e-12);
    }

    #[test]
    fn addition_commutes(a in square_matrix(3), b in square_matrix(3)) {
        prop_assert!(((&a + &b) - (&b + &a)).norm_fro() < 1e-12);
    }

    #[test]
    fn matmul_distributes_over_addition(
        a in square_matrix(3),
        b in square_matrix(3),
        c in square_matrix(3),
    ) {
        let lhs = a.matmul(&(&b + &c)).unwrap();
        let rhs = &a.matmul(&b).unwrap() + &a.matmul(&c).unwrap();
        prop_assert!((lhs - rhs).norm_fro() < 1e-9);
    }

    #[test]
    fn transpose_of_product_reverses(a in square_matrix(3), b in square_matrix(3)) {
        let lhs = a.matmul(&b).unwrap().transpose();
        let rhs = b.transpose().matmul(&a.transpose()).unwrap();
        prop_assert!((lhs - rhs).norm_fro() < 1e-9);
    }

    #[test]
    fn lu_solve_produces_small_residual(a in invertible_matrix(4), b in vector(4)) {
        let x = a.solve(&b).unwrap();
        let residual = (&a.mul_vec(&x) - &b).norm_inf();
        prop_assert!(residual < 1e-7, "residual {}", residual);
    }

    #[test]
    fn inverse_round_trip(a in invertible_matrix(3)) {
        let inv = a.inverse().unwrap();
        let eye = a.matmul(&inv).unwrap();
        prop_assert!((eye - Matrix::identity(3)).norm_fro() < 1e-7);
    }

    #[test]
    fn determinant_of_product_is_product_of_determinants(
        a in invertible_matrix(3),
        b in invertible_matrix(3),
    ) {
        let da = a.determinant().unwrap();
        let db = b.determinant().unwrap();
        let dab = a.matmul(&b).unwrap().determinant().unwrap();
        // Relative comparison: determinants of diagonally dominant matrices can be large.
        prop_assert!((dab - da * db).abs() <= 1e-6 * da.abs().max(1.0) * db.abs().max(1.0));
    }

    #[test]
    fn vector_norm_triangle_inequality(a in vector(5), b in vector(5)) {
        prop_assert!((&a + &b).norm_l2() <= a.norm_l2() + b.norm_l2() + 1e-12);
        prop_assert!((&a + &b).norm_l1() <= a.norm_l1() + b.norm_l1() + 1e-12);
        prop_assert!((&a + &b).norm_inf() <= a.norm_inf() + b.norm_inf() + 1e-12);
    }

    #[test]
    fn norm_ordering_holds(a in vector(5)) {
        // ‖a‖∞ ≤ ‖a‖₂ ≤ ‖a‖₁ for every vector.
        prop_assert!(a.norm_inf() <= a.norm_l2() + 1e-12);
        prop_assert!(a.norm_l2() <= a.norm_l1() + 1e-12);
    }

    #[test]
    fn dot_product_is_symmetric(a in vector(4), b in vector(4)) {
        prop_assert!((a.dot(&b) - b.dot(&a)).abs() < 1e-12);
    }

    #[test]
    fn expm_of_negated_matrix_is_inverse(m in square_matrix(2)) {
        // e^A · e^{-A} = I for every square A.
        let scaled = m.scale(0.2); // keep the norm modest for numerical accuracy
        let e = expm(&scaled).unwrap();
        let e_neg = expm(&scaled.scale(-1.0)).unwrap();
        let prod = e.matmul(&e_neg).unwrap();
        prop_assert!((prod - Matrix::identity(2)).norm_fro() < 1e-7);
    }

    #[test]
    fn matrix_pow_matches_repeated_multiplication(m in square_matrix(3), exp in 0u32..5) {
        let fast = m.pow(exp).unwrap();
        let mut slow = Matrix::identity(3);
        for _ in 0..exp {
            slow = slow.matmul(&m).unwrap();
        }
        prop_assert!((fast - slow).norm_fro() < 1e-6);
    }
}
