//! Property-based tests for the linear-algebra substrate.
//!
//! `proptest` is not in the sanctioned offline crate set, so each property is
//! checked over a deterministic stream of pseudo-random cases drawn from the
//! crate's own [`SplitMix64`] (seeded per test, so failures reproduce).

use cps_linalg::{expm, Matrix, SplitMix64, Vector};

const CASES: usize = 64;

/// Deterministic case generator over the crate's own [`SplitMix64`].
struct Gen {
    rng: SplitMix64,
}

impl Gen {
    fn new(seed: u64) -> Self {
        Self {
            rng: SplitMix64::new(seed),
        }
    }

    /// Uniform sample in `[lo, hi)`.
    fn range(&mut self, lo: f64, hi: f64) -> f64 {
        self.rng.range(lo, hi)
    }

    /// Small, well-scaled square matrix with entries in `[-5, 5)`.
    fn square_matrix(&mut self, n: usize) -> Matrix {
        let data: Vec<f64> = (0..n * n).map(|_| self.range(-5.0, 5.0)).collect();
        Matrix::from_fn(n, n, |i, j| data[i * n + j])
    }

    /// Diagonally dominant (hence invertible) matrix.
    fn invertible_matrix(&mut self, n: usize) -> Matrix {
        let mut out = self.square_matrix(n);
        for i in 0..n {
            let row_sum: f64 = (0..n).map(|j| out[(i, j)].abs()).sum();
            out[(i, i)] = row_sum + 1.0;
        }
        out
    }

    fn vector(&mut self, n: usize) -> Vector {
        Vector::from((0..n).map(|_| self.range(-10.0, 10.0)).collect::<Vec<_>>())
    }
}

#[test]
fn transpose_is_involution() {
    let mut g = Gen::new(0xA11CE);
    for _ in 0..CASES {
        let m = g.square_matrix(3);
        assert_eq!(m.transpose().transpose(), m);
    }
}

#[test]
fn identity_is_multiplicative_neutral() {
    let mut g = Gen::new(0xB0B);
    let i = Matrix::identity(3);
    for _ in 0..CASES {
        let m = g.square_matrix(3);
        assert!((m.matmul(&i).unwrap() - m.clone()).norm_fro() < 1e-12);
        assert!((i.matmul(&m).unwrap() - m).norm_fro() < 1e-12);
    }
}

#[test]
fn addition_commutes() {
    let mut g = Gen::new(0xC0FFEE);
    for _ in 0..CASES {
        let (a, b) = (g.square_matrix(3), g.square_matrix(3));
        assert!(((&a + &b) - (&b + &a)).norm_fro() < 1e-12);
    }
}

#[test]
fn matmul_distributes_over_addition() {
    let mut g = Gen::new(0xD15C0);
    for _ in 0..CASES {
        let (a, b, c) = (g.square_matrix(3), g.square_matrix(3), g.square_matrix(3));
        let lhs = a.matmul(&(&b + &c)).unwrap();
        let rhs = &a.matmul(&b).unwrap() + &a.matmul(&c).unwrap();
        assert!((lhs - rhs).norm_fro() < 1e-9);
    }
}

#[test]
fn transpose_of_product_reverses() {
    let mut g = Gen::new(0xE66);
    for _ in 0..CASES {
        let (a, b) = (g.square_matrix(3), g.square_matrix(3));
        let lhs = a.matmul(&b).unwrap().transpose();
        let rhs = b.transpose().matmul(&a.transpose()).unwrap();
        assert!((lhs - rhs).norm_fro() < 1e-9);
    }
}

#[test]
fn lu_solve_produces_small_residual() {
    let mut g = Gen::new(0xF00D);
    for _ in 0..CASES {
        let a = g.invertible_matrix(4);
        let b = g.vector(4);
        let x = a.solve(&b).unwrap();
        let residual = (&a.mul_vec(&x) - &b).norm_inf();
        assert!(residual < 1e-7, "residual {residual}");
    }
}

#[test]
fn inverse_round_trip() {
    let mut g = Gen::new(0x1DEA);
    for _ in 0..CASES {
        let a = g.invertible_matrix(3);
        let inv = a.inverse().unwrap();
        let eye = a.matmul(&inv).unwrap();
        assert!((eye - Matrix::identity(3)).norm_fro() < 1e-7);
    }
}

#[test]
fn determinant_of_product_is_product_of_determinants() {
    let mut g = Gen::new(0x2B);
    for _ in 0..CASES {
        let (a, b) = (g.invertible_matrix(3), g.invertible_matrix(3));
        let da = a.determinant().unwrap();
        let db = b.determinant().unwrap();
        let dab = a.matmul(&b).unwrap().determinant().unwrap();
        // Relative comparison: determinants of diagonally dominant matrices can be large.
        assert!((dab - da * db).abs() <= 1e-6 * da.abs().max(1.0) * db.abs().max(1.0));
    }
}

#[test]
fn vector_norm_triangle_inequality() {
    let mut g = Gen::new(0x3A6);
    for _ in 0..CASES {
        let (a, b) = (g.vector(5), g.vector(5));
        assert!((&a + &b).norm_l2() <= a.norm_l2() + b.norm_l2() + 1e-12);
        assert!((&a + &b).norm_l1() <= a.norm_l1() + b.norm_l1() + 1e-12);
        assert!((&a + &b).norm_inf() <= a.norm_inf() + b.norm_inf() + 1e-12);
    }
}

#[test]
fn norm_ordering_holds() {
    let mut g = Gen::new(0x4C4);
    for _ in 0..CASES {
        let a = g.vector(5);
        // ‖a‖∞ ≤ ‖a‖₂ ≤ ‖a‖₁ for every vector.
        assert!(a.norm_inf() <= a.norm_l2() + 1e-12);
        assert!(a.norm_l2() <= a.norm_l1() + 1e-12);
    }
}

#[test]
fn dot_product_is_symmetric() {
    let mut g = Gen::new(0x5D5);
    for _ in 0..CASES {
        let (a, b) = (g.vector(4), g.vector(4));
        assert!((a.dot(&b) - b.dot(&a)).abs() < 1e-12);
    }
}

#[test]
fn expm_of_negated_matrix_is_inverse() {
    let mut g = Gen::new(0x6E6);
    for _ in 0..CASES {
        // e^A · e^{-A} = I for every square A.
        let scaled = g.square_matrix(2).scale(0.2); // keep the norm modest for numerical accuracy
        let e = expm(&scaled).unwrap();
        let e_neg = expm(&scaled.scale(-1.0)).unwrap();
        let prod = e.matmul(&e_neg).unwrap();
        assert!((prod - Matrix::identity(2)).norm_fro() < 1e-7);
    }
}

#[test]
fn matrix_pow_matches_repeated_multiplication() {
    let mut g = Gen::new(0x7F7);
    for case in 0..CASES {
        let m = g.square_matrix(3);
        let exp = (case % 5) as u32;
        let fast = m.pow(exp).unwrap();
        let mut slow = Matrix::identity(3);
        for _ in 0..exp {
            slow = slow.matmul(&m).unwrap();
        }
        assert!((fast - slow).norm_fro() < 1e-6);
    }
}

/// Every operation must be bit-identical between an inline vector and its
/// heap-backed twin — the core guarantee behind the small-vector fast path.
#[test]
fn inline_and_heap_backends_are_bit_identical() {
    let mut g = Gen::new(0x8E8);
    for n in 1..=6 {
        for _ in 0..CASES {
            let a = g.vector(n);
            let b = g.vector(n);
            let m = g.square_matrix(n);
            let ah = Vector::heap_backed(a.as_slice().to_vec());
            let bh = Vector::heap_backed(b.as_slice().to_vec());
            assert!(a.is_inline() && !ah.is_inline());

            assert_eq!(&a + &b, &ah + &bh);
            assert_eq!(&a - &b, &ah - &bh);
            assert_eq!(a.dot(&b).to_bits(), ah.dot(&bh).to_bits());
            assert_eq!(a.norm_l1().to_bits(), ah.norm_l1().to_bits());
            assert_eq!(a.norm_l2().to_bits(), ah.norm_l2().to_bits());
            assert_eq!(a.norm_inf().to_bits(), ah.norm_inf().to_bits());
            assert_eq!(a.scale(1.7), ah.scale(1.7));
            assert_eq!(m.mul_vec(&a), m.mul_vec(&ah));

            let mut out_i = Vector::zeros(n);
            let mut out_h = Vector::heap_backed(vec![0.0; n]);
            m.mul_vec_into(&a, &mut out_i);
            m.mul_vec_into(&ah, &mut out_h);
            assert_eq!(out_i, m.mul_vec(&a));
            assert_eq!(out_i, out_h);
            m.mul_vec_add_into(&b, &mut out_i);
            m.mul_vec_add_into(&bh, &mut out_h);
            assert_eq!(out_i, &m.mul_vec(&a) + &m.mul_vec(&b));
            assert_eq!(out_i, out_h);

            let mut s = Vector::zeros(0);
            s.assign_sum(&a, &b);
            let mut sh = Vector::heap_backed(Vec::new());
            sh.assign_sum(&ah, &bh);
            assert_eq!(s, sh);
        }
    }
}
