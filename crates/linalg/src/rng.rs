/// Counter-free SplitMix64 PRNG (Steele, Lea & Flood 2014).
///
/// The workspace builds offline, so this stands in for the `rand` crate
/// wherever deterministic pseudo-randomness is needed: simulation noise,
/// Monte-Carlo rollouts and property-test case generation. A full 64-bit
/// state re-seeded per use-site keeps every consumer reproducible.
///
/// # Example
///
/// ```
/// use cps_linalg::SplitMix64;
///
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// let u = a.next_f64();
/// assert!((0.0..1.0).contains(&u));
/// ```
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed; equal seeds yield equal streams.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform sample in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform sample in `[lo, hi)`.
    pub fn range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.next_f64() * (hi - lo)
    }

    /// Uniform sample in `0..n`.
    ///
    /// Uses plain modulo; the bias is negligible for the small `n` used in
    /// test-case generation (≪ 2⁶⁴).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` (an empty range has no sample).
    pub fn usize_below(&mut self, n: usize) -> usize {
        assert!(n > 0, "usize_below requires a non-empty range");
        (self.next_u64() % n as u64) as usize
    }

    /// Fair coin flip.
    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic_per_seed() {
        let xs: Vec<u64> = {
            let mut g = SplitMix64::new(7);
            (0..8).map(|_| g.next_u64()).collect()
        };
        let ys: Vec<u64> = {
            let mut g = SplitMix64::new(7);
            (0..8).map(|_| g.next_u64()).collect()
        };
        assert_eq!(xs, ys);
        let zs: Vec<u64> = {
            let mut g = SplitMix64::new(8);
            (0..8).map(|_| g.next_u64()).collect()
        };
        assert_ne!(xs, zs);
    }

    #[test]
    fn known_answer_matches_reference() {
        // First outputs for seed 1234567 from the reference SplitMix64.
        let mut g = SplitMix64::new(1234567);
        assert_eq!(g.next_u64(), 6457827717110365317);
        assert_eq!(g.next_u64(), 3203168211198807973);
    }

    #[test]
    fn unit_samples_stay_in_range() {
        let mut g = SplitMix64::new(99);
        for _ in 0..1000 {
            let u = g.next_f64();
            assert!((0.0..1.0).contains(&u));
            let r = g.range(-2.0, 3.0);
            assert!((-2.0..3.0).contains(&r));
        }
    }
}
