use crate::{LinalgError, Matrix};

/// Computes the matrix exponential `e^A` using scaling-and-squaring with a
/// 6th-order diagonal Padé approximant.
///
/// The routine is intended for the zero-order-hold discretisation of
/// continuous-time plant models (`A_d = e^{A T_s}`), where the inputs are
/// small (a handful of states) and well scaled.
///
/// # Errors
///
/// Returns [`LinalgError::NotSquare`] for rectangular inputs and propagates
/// [`LinalgError::Singular`] if the Padé denominator cannot be inverted
/// (which indicates a badly conditioned input).
///
/// # Example
///
/// ```
/// use cps_linalg::{expm, Matrix};
///
/// # fn main() -> Result<(), cps_linalg::LinalgError> {
/// let zero = Matrix::zeros(2, 2);
/// assert_eq!(expm(&zero)?, Matrix::identity(2));
/// # Ok(())
/// # }
/// ```
pub fn expm(a: &Matrix) -> Result<Matrix, LinalgError> {
    if !a.is_square() {
        return Err(LinalgError::NotSquare {
            rows: a.rows(),
            cols: a.cols(),
        });
    }
    let n = a.rows();
    if n == 0 {
        return Ok(Matrix::zeros(0, 0));
    }

    // Scale the matrix so that its infinity norm is below 0.5, then square the
    // result back up: e^A = (e^{A / 2^s})^{2^s}.
    let norm = a.norm_inf();
    let s = if norm > 0.5 {
        (norm / 0.5).log2().ceil() as u32
    } else {
        0
    };
    let scaled = a.scale(1.0 / f64::powi(2.0, s as i32));

    // Diagonal Padé approximant of order q: coefficients follow the standard
    // recurrence c_k = c_{k-1} · (q − k + 1) / (k · (2q − k + 1)).
    const PADE_ORDER: usize = 6;
    let mut coeffs = [0.0; PADE_ORDER + 1];
    coeffs[0] = 1.0;
    for k in 1..=PADE_ORDER {
        coeffs[k] = coeffs[k - 1] * (PADE_ORDER - k + 1) as f64
            / (k as f64 * (2 * PADE_ORDER - k + 1) as f64);
    }

    let identity = Matrix::identity(n);
    let mut numerator = identity.scale(coeffs[0]);
    let mut denominator = identity.scale(coeffs[0]);
    let mut power = identity.clone();
    for (k, &coeff) in coeffs.iter().enumerate().skip(1) {
        power = power.matmul(&scaled)?;
        let term = power.scale(coeff);
        numerator = &numerator + &term;
        let sign = if k % 2 == 0 { 1.0 } else { -1.0 };
        denominator = &denominator + &term.scale(sign);
    }

    let mut result = denominator.lu()?.solve_matrix(&numerator)?;
    for _ in 0..s {
        result = result.matmul(&result)?;
    }
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn exp_of_zero_is_identity() {
        let z = Matrix::zeros(3, 3);
        let e = expm(&z).unwrap();
        assert!((e - Matrix::identity(3)).norm_fro() < 1e-12);
    }

    #[test]
    fn exp_of_diagonal_matches_scalar_exp() {
        let a = Matrix::from_diag(&[1.0, -2.0, 0.5]);
        let e = expm(&a).unwrap();
        assert!(approx_eq(e[(0, 0)], 1.0_f64.exp(), 1e-9));
        assert!(approx_eq(e[(1, 1)], (-2.0_f64).exp(), 1e-9));
        assert!(approx_eq(e[(2, 2)], 0.5_f64.exp(), 1e-9));
        assert!(approx_eq(e[(0, 1)], 0.0, 1e-12));
    }

    #[test]
    fn exp_of_nilpotent_matches_truncated_series() {
        // For N = [[0, 1], [0, 0]], e^N = I + N exactly.
        let n = Matrix::from_rows(&[&[0.0, 1.0], &[0.0, 0.0]]).unwrap();
        let e = expm(&n).unwrap();
        assert!(approx_eq(e[(0, 0)], 1.0, 1e-12));
        assert!(approx_eq(e[(0, 1)], 1.0, 1e-12));
        assert!(approx_eq(e[(1, 0)], 0.0, 1e-12));
        assert!(approx_eq(e[(1, 1)], 1.0, 1e-12));
    }

    #[test]
    fn exp_of_rotation_generator_is_rotation() {
        // A = [[0, -t], [t, 0]] gives e^A = [[cos t, -sin t], [sin t, cos t]].
        let t = 0.7;
        let a = Matrix::from_rows(&[&[0.0, -t], &[t, 0.0]]).unwrap();
        let e = expm(&a).unwrap();
        assert!(approx_eq(e[(0, 0)], t.cos(), 1e-9));
        assert!(approx_eq(e[(0, 1)], -t.sin(), 1e-9));
        assert!(approx_eq(e[(1, 0)], t.sin(), 1e-9));
        assert!(approx_eq(e[(1, 1)], t.cos(), 1e-9));
    }

    #[test]
    fn scaling_branch_handles_large_norm() {
        let a = Matrix::from_diag(&[5.0, -7.0]);
        let e = expm(&a).unwrap();
        assert!((e[(0, 0)] - 5.0_f64.exp()).abs() / 5.0_f64.exp() < 1e-9);
        assert!(approx_eq(e[(1, 1)], (-7.0_f64).exp(), 1e-9));
    }

    #[test]
    fn rectangular_input_is_rejected() {
        assert!(matches!(
            expm(&Matrix::zeros(2, 3)),
            Err(LinalgError::NotSquare { .. })
        ));
    }

    #[test]
    fn empty_matrix_is_ok() {
        assert_eq!(expm(&Matrix::zeros(0, 0)).unwrap().shape(), (0, 0));
    }
}
