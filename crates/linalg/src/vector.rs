use std::fmt;
use std::ops::{Add, AddAssign, Index, IndexMut, Mul, Neg, Sub, SubAssign};

/// A dense column vector of `f64` values.
///
/// `Vector` is the value type exchanged between the plant, estimator and
/// controller models in the workspace: states, measurements, control inputs,
/// residues and attack injections are all `Vector`s.
///
/// # Example
///
/// ```
/// use cps_linalg::Vector;
///
/// let v = Vector::from_slice(&[3.0, 4.0]);
/// assert_eq!(v.len(), 2);
/// assert!((v.norm_l2() - 5.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Vector {
    data: Vec<f64>,
}

impl Vector {
    /// Creates a vector of `len` zeros.
    pub fn zeros(len: usize) -> Self {
        Self {
            data: vec![0.0; len],
        }
    }

    /// Creates a vector filled with `value`.
    pub fn filled(len: usize, value: f64) -> Self {
        Self {
            data: vec![value; len],
        }
    }

    /// Creates a vector by copying the given slice.
    pub fn from_slice(values: &[f64]) -> Self {
        Self {
            data: values.to_vec(),
        }
    }

    /// Creates a vector from a closure evaluated at each index.
    pub fn from_fn(len: usize, mut f: impl FnMut(usize) -> f64) -> Self {
        Self {
            data: (0..len).map(&mut f).collect(),
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` when the vector has no entries.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrows the underlying storage as a slice.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrows the underlying storage.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the vector and returns its underlying storage.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Returns an iterator over the entries.
    pub fn iter(&self) -> std::slice::Iter<'_, f64> {
        self.data.iter()
    }

    /// Dot (inner) product with another vector.
    ///
    /// # Panics
    ///
    /// Panics if the two vectors have different lengths.
    pub fn dot(&self, other: &Vector) -> f64 {
        assert_eq!(
            self.len(),
            other.len(),
            "dot product requires equal lengths"
        );
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| a * b)
            .sum()
    }

    /// Sum of absolute values (L1 norm).
    pub fn norm_l1(&self) -> f64 {
        self.data.iter().map(|x| x.abs()).sum()
    }

    /// Euclidean (L2) norm.
    pub fn norm_l2(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Maximum absolute entry (L∞ norm). Returns `0.0` for an empty vector.
    pub fn norm_inf(&self) -> f64 {
        self.data.iter().fold(0.0, |acc, x| acc.max(x.abs()))
    }

    /// Element-wise map producing a new vector.
    pub fn map(&self, f: impl FnMut(f64) -> f64) -> Vector {
        Vector {
            data: self.data.iter().copied().map(f).collect(),
        }
    }

    /// Scales every entry by `factor`.
    pub fn scale(&self, factor: f64) -> Vector {
        self.map(|x| x * factor)
    }

    /// Returns a sub-vector with the entries at `indices` (in that order).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn select(&self, indices: &[usize]) -> Vector {
        Vector {
            data: indices.iter().map(|&i| self.data[i]).collect(),
        }
    }

    /// Returns `true` when every entry is finite (no NaN / infinity).
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }
}

impl fmt::Display for Vector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, x) in self.data.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{x:.6}")?;
        }
        write!(f, "]")
    }
}

impl Index<usize> for Vector {
    type Output = f64;

    fn index(&self, index: usize) -> &f64 {
        &self.data[index]
    }
}

impl IndexMut<usize> for Vector {
    fn index_mut(&mut self, index: usize) -> &mut f64 {
        &mut self.data[index]
    }
}

impl From<Vec<f64>> for Vector {
    fn from(data: Vec<f64>) -> Self {
        Self { data }
    }
}

impl FromIterator<f64> for Vector {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        Self {
            data: iter.into_iter().collect(),
        }
    }
}

impl IntoIterator for Vector {
    type Item = f64;
    type IntoIter = std::vec::IntoIter<f64>;

    fn into_iter(self) -> Self::IntoIter {
        self.data.into_iter()
    }
}

impl<'a> IntoIterator for &'a Vector {
    type Item = &'a f64;
    type IntoIter = std::slice::Iter<'a, f64>;

    fn into_iter(self) -> Self::IntoIter {
        self.data.iter()
    }
}

fn binary_op(lhs: &Vector, rhs: &Vector, op: impl Fn(f64, f64) -> f64, name: &str) -> Vector {
    assert_eq!(lhs.len(), rhs.len(), "{name} requires equal lengths");
    Vector {
        data: lhs
            .data
            .iter()
            .zip(rhs.data.iter())
            .map(|(a, b)| op(*a, *b))
            .collect(),
    }
}

impl Add for &Vector {
    type Output = Vector;

    fn add(self, rhs: &Vector) -> Vector {
        binary_op(self, rhs, |a, b| a + b, "vector addition")
    }
}

impl Add for Vector {
    type Output = Vector;

    fn add(self, rhs: Vector) -> Vector {
        &self + &rhs
    }
}

impl Sub for &Vector {
    type Output = Vector;

    fn sub(self, rhs: &Vector) -> Vector {
        binary_op(self, rhs, |a, b| a - b, "vector subtraction")
    }
}

impl Sub for Vector {
    type Output = Vector;

    fn sub(self, rhs: Vector) -> Vector {
        &self - &rhs
    }
}

impl Add<&Vector> for Vector {
    type Output = Vector;

    fn add(self, rhs: &Vector) -> Vector {
        &self + rhs
    }
}

impl Sub<&Vector> for Vector {
    type Output = Vector;

    fn sub(self, rhs: &Vector) -> Vector {
        &self - rhs
    }
}

impl AddAssign<&Vector> for Vector {
    fn add_assign(&mut self, rhs: &Vector) {
        assert_eq!(
            self.len(),
            rhs.len(),
            "vector addition requires equal lengths"
        );
        for (a, b) in self.data.iter_mut().zip(rhs.data.iter()) {
            *a += b;
        }
    }
}

impl SubAssign<&Vector> for Vector {
    fn sub_assign(&mut self, rhs: &Vector) {
        assert_eq!(
            self.len(),
            rhs.len(),
            "vector subtraction requires equal lengths"
        );
        for (a, b) in self.data.iter_mut().zip(rhs.data.iter()) {
            *a -= b;
        }
    }
}

impl Mul<f64> for &Vector {
    type Output = Vector;

    fn mul(self, rhs: f64) -> Vector {
        self.scale(rhs)
    }
}

impl Mul<f64> for Vector {
    type Output = Vector;

    fn mul(self, rhs: f64) -> Vector {
        self.scale(rhs)
    }
}

impl Neg for &Vector {
    type Output = Vector;

    fn neg(self) -> Vector {
        self.scale(-1.0)
    }
}

impl Neg for Vector {
    type Output = Vector;

    fn neg(self) -> Vector {
        self.scale(-1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_len() {
        let v = Vector::zeros(4);
        assert_eq!(v.len(), 4);
        assert!(!v.is_empty());
        assert_eq!(v.norm_l1(), 0.0);
    }

    #[test]
    fn from_fn_builds_expected_entries() {
        let v = Vector::from_fn(3, |i| (i as f64) * 2.0);
        assert_eq!(v.as_slice(), &[0.0, 2.0, 4.0]);
    }

    #[test]
    fn dot_product() {
        let a = Vector::from_slice(&[1.0, 2.0, 3.0]);
        let b = Vector::from_slice(&[4.0, 5.0, 6.0]);
        assert_eq!(a.dot(&b), 32.0);
    }

    #[test]
    #[should_panic(expected = "equal lengths")]
    fn dot_product_length_mismatch_panics() {
        let a = Vector::from_slice(&[1.0]);
        let b = Vector::from_slice(&[1.0, 2.0]);
        let _ = a.dot(&b);
    }

    #[test]
    fn norms() {
        let v = Vector::from_slice(&[3.0, -4.0]);
        assert_eq!(v.norm_l1(), 7.0);
        assert_eq!(v.norm_l2(), 5.0);
        assert_eq!(v.norm_inf(), 4.0);
    }

    #[test]
    fn norm_inf_of_empty_is_zero() {
        assert_eq!(Vector::zeros(0).norm_inf(), 0.0);
        assert!(Vector::zeros(0).is_empty());
    }

    #[test]
    fn arithmetic_ops() {
        let a = Vector::from_slice(&[1.0, 2.0]);
        let b = Vector::from_slice(&[3.0, 5.0]);
        assert_eq!((&a + &b).as_slice(), &[4.0, 7.0]);
        assert_eq!((&b - &a).as_slice(), &[2.0, 3.0]);
        assert_eq!((&a * 2.0).as_slice(), &[2.0, 4.0]);
        assert_eq!((-&a).as_slice(), &[-1.0, -2.0]);
    }

    #[test]
    fn add_assign_and_sub_assign() {
        let mut a = Vector::from_slice(&[1.0, 1.0]);
        a += &Vector::from_slice(&[2.0, 3.0]);
        assert_eq!(a.as_slice(), &[3.0, 4.0]);
        a -= &Vector::from_slice(&[1.0, 1.0]);
        assert_eq!(a.as_slice(), &[2.0, 3.0]);
    }

    #[test]
    fn select_reorders_entries() {
        let v = Vector::from_slice(&[10.0, 20.0, 30.0]);
        assert_eq!(v.select(&[2, 0]).as_slice(), &[30.0, 10.0]);
    }

    #[test]
    fn is_finite_detects_nan() {
        let v = Vector::from_slice(&[1.0, f64::NAN]);
        assert!(!v.is_finite());
        assert!(Vector::from_slice(&[1.0, 2.0]).is_finite());
    }

    #[test]
    fn display_formats_entries() {
        let v = Vector::from_slice(&[1.0, -2.5]);
        let s = format!("{v}");
        assert!(s.starts_with('[') && s.ends_with(']'));
        assert!(s.contains("1.000000"));
    }

    #[test]
    fn collect_from_iterator() {
        let v: Vector = (0..3).map(|i| i as f64).collect();
        assert_eq!(v.as_slice(), &[0.0, 1.0, 2.0]);
    }
}
