use std::fmt;
use std::ops::{Add, AddAssign, Index, IndexMut, Mul, Neg, Sub, SubAssign};

/// Entries stored inline (on the stack) before a [`Vector`] spills to the
/// heap. Every benchmark plant in the workspace has 2–5 states, so the
/// closed-loop hot path never leaves the inline representation.
pub const INLINE_CAP: usize = 8;

/// Backing storage of a [`Vector`]: a fixed `[f64; INLINE_CAP]` buffer for
/// short vectors, a `Vec<f64>` beyond that. The variant is an internal detail
/// — all observable behaviour (equality, arithmetic, iteration, Display) goes
/// through `as_slice`, so an inline vector and a heap vector with the same
/// entries are indistinguishable except via [`Vector::is_inline`].
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
enum Storage {
    Inline { len: u8, data: [f64; INLINE_CAP] },
    Heap(Vec<f64>),
}

/// A dense column vector of `f64` values.
///
/// `Vector` is the value type exchanged between the plant, estimator and
/// controller models in the workspace: states, measurements, control inputs,
/// residues and attack injections are all `Vector`s.
///
/// Vectors of up to [`INLINE_CAP`] entries are stored inline without heap
/// allocation; longer vectors transparently spill to a `Vec<f64>`. The
/// `*_into`/assign kernels ([`Vector::copy_from`], [`Vector::assign_diff`],
/// [`crate::Matrix::mul_vec_into`], …) reuse existing storage, so steady-state
/// closed-loop simulation performs zero heap allocations.
///
/// # Example
///
/// ```
/// use cps_linalg::Vector;
///
/// let v = Vector::from_slice(&[3.0, 4.0]);
/// assert_eq!(v.len(), 2);
/// assert!(v.is_inline());
/// assert!((v.norm_l2() - 5.0).abs() < 1e-12);
/// ```
#[derive(Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Vector {
    storage: Storage,
}

impl Vector {
    /// Creates a vector of `len` zeros.
    pub fn zeros(len: usize) -> Self {
        if len <= INLINE_CAP {
            Self {
                storage: Storage::Inline {
                    len: len as u8,
                    data: [0.0; INLINE_CAP],
                },
            }
        } else {
            Self {
                storage: Storage::Heap(vec![0.0; len]),
            }
        }
    }

    /// Creates a vector filled with `value`.
    pub fn filled(len: usize, value: f64) -> Self {
        let mut v = Self::zeros(len);
        v.as_mut_slice().fill(value);
        v
    }

    /// Creates a vector by copying the given slice.
    pub fn from_slice(values: &[f64]) -> Self {
        let mut v = Self::zeros(values.len());
        v.as_mut_slice().copy_from_slice(values);
        v
    }

    /// Creates a vector from a closure evaluated at each index.
    pub fn from_fn(len: usize, mut f: impl FnMut(usize) -> f64) -> Self {
        let mut v = Self::zeros(len);
        for (i, slot) in v.as_mut_slice().iter_mut().enumerate() {
            *slot = f(i);
        }
        v
    }

    /// Creates a heap-backed vector even when `values` would fit inline.
    ///
    /// This is the differential-test hook for the small-vector optimisation:
    /// every operation must produce bit-identical results on a heap-backed
    /// vector and its inline twin.
    pub fn heap_backed(values: Vec<f64>) -> Self {
        Self {
            storage: Storage::Heap(values),
        }
    }

    /// Returns `true` when the entries live in the inline `[f64; INLINE_CAP]`
    /// buffer rather than on the heap.
    pub fn is_inline(&self) -> bool {
        matches!(self.storage, Storage::Inline { .. })
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        match &self.storage {
            Storage::Inline { len, .. } => *len as usize,
            Storage::Heap(v) => v.len(),
        }
    }

    /// Returns `true` when the vector has no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Borrows the underlying storage as a slice.
    pub fn as_slice(&self) -> &[f64] {
        match &self.storage {
            Storage::Inline { len, data } => &data[..*len as usize],
            Storage::Heap(v) => v,
        }
    }

    /// Mutably borrows the underlying storage.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        match &mut self.storage {
            Storage::Inline { len, data } => &mut data[..*len as usize],
            Storage::Heap(v) => v,
        }
    }

    /// Consumes the vector and returns its entries as a `Vec<f64>` (copies
    /// when the vector is inline).
    pub fn into_vec(self) -> Vec<f64> {
        match self.storage {
            Storage::Inline { len, data } => data[..len as usize].to_vec(),
            Storage::Heap(v) => v,
        }
    }

    /// Resizes to `len` in place. Entries up to `min(old, new)` keep their
    /// values; newly created entries are zero. Stays inline for
    /// `len ≤ INLINE_CAP` unless already heap-backed at a larger capacity.
    pub fn resize_zeroed(&mut self, new_len: usize) {
        let old_len = self.len();
        if old_len == new_len {
            return;
        }
        match (&mut self.storage, new_len <= INLINE_CAP) {
            (Storage::Heap(v), false) => v.resize(new_len, 0.0),
            (Storage::Inline { len, data }, true) => {
                if new_len > *len as usize {
                    data[*len as usize..new_len].fill(0.0);
                }
                *len = new_len as u8;
            }
            _ => {
                let mut next = Vector::zeros(new_len);
                let keep = old_len.min(new_len);
                next.as_mut_slice()[..keep].copy_from_slice(&self.as_slice()[..keep]);
                *self = next;
            }
        }
    }

    /// Overwrites `self` with the entries of `src`, resizing if necessary.
    /// Allocation-free when the lengths already match (or `src` fits inline).
    pub fn copy_from(&mut self, src: &Vector) {
        self.resize_zeroed(src.len());
        self.as_mut_slice().copy_from_slice(src.as_slice());
    }

    /// Overwrites `self` with `a + b` element-wise without allocating
    /// (bit-identical to `a + b`).
    ///
    /// # Panics
    ///
    /// Panics if `a` and `b` have different lengths.
    pub fn assign_sum(&mut self, a: &Vector, b: &Vector) {
        assert_eq!(a.len(), b.len(), "vector addition requires equal lengths");
        self.resize_zeroed(a.len());
        for ((out, x), y) in self
            .as_mut_slice()
            .iter_mut()
            .zip(a.as_slice())
            .zip(b.as_slice())
        {
            *out = x + y;
        }
    }

    /// Overwrites `self` with `a - b` element-wise without allocating
    /// (bit-identical to `a - b`).
    ///
    /// # Panics
    ///
    /// Panics if `a` and `b` have different lengths.
    pub fn assign_diff(&mut self, a: &Vector, b: &Vector) {
        assert_eq!(
            a.len(),
            b.len(),
            "vector subtraction requires equal lengths"
        );
        self.resize_zeroed(a.len());
        for ((out, x), y) in self
            .as_mut_slice()
            .iter_mut()
            .zip(a.as_slice())
            .zip(b.as_slice())
        {
            *out = x - y;
        }
    }

    /// Replaces `self` with `lhs - self` element-wise — a non-allocating
    /// reversed subtraction (bit-identical to `lhs - self`).
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn rsub_from(&mut self, lhs: &Vector) {
        assert_eq!(
            self.len(),
            lhs.len(),
            "vector subtraction requires equal lengths"
        );
        for (s, l) in self.as_mut_slice().iter_mut().zip(lhs.as_slice()) {
            *s = l - *s;
        }
    }

    /// Returns an iterator over the entries.
    pub fn iter(&self) -> std::slice::Iter<'_, f64> {
        self.as_slice().iter()
    }

    /// Dot (inner) product with another vector.
    ///
    /// # Panics
    ///
    /// Panics if the two vectors have different lengths.
    pub fn dot(&self, other: &Vector) -> f64 {
        assert_eq!(
            self.len(),
            other.len(),
            "dot product requires equal lengths"
        );
        self.iter().zip(other.iter()).map(|(a, b)| a * b).sum()
    }

    /// Sum of absolute values (L1 norm).
    pub fn norm_l1(&self) -> f64 {
        self.iter().map(|x| x.abs()).sum()
    }

    /// Euclidean (L2) norm.
    pub fn norm_l2(&self) -> f64 {
        self.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Maximum absolute entry (L∞ norm). Returns `0.0` for an empty vector.
    pub fn norm_inf(&self) -> f64 {
        self.iter().fold(0.0, |acc, x| acc.max(x.abs()))
    }

    /// Element-wise map producing a new vector.
    pub fn map(&self, mut f: impl FnMut(f64) -> f64) -> Vector {
        Vector::from_fn(self.len(), |i| f(self.as_slice()[i]))
    }

    /// Scales every entry by `factor`.
    pub fn scale(&self, factor: f64) -> Vector {
        self.map(|x| x * factor)
    }

    /// Returns a sub-vector with the entries at `indices` (in that order).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn select(&self, indices: &[usize]) -> Vector {
        Vector::from_fn(indices.len(), |i| self.as_slice()[indices[i]])
    }

    /// Returns `true` when every entry is finite (no NaN / infinity).
    pub fn is_finite(&self) -> bool {
        self.iter().all(|x| x.is_finite())
    }
}

impl fmt::Debug for Vector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("Vector").field(&self.as_slice()).finish()
    }
}

impl Default for Vector {
    fn default() -> Self {
        Self::zeros(0)
    }
}

impl PartialEq for Vector {
    fn eq(&self, other: &Self) -> bool {
        // Storage variant is invisible: inline and heap vectors with the same
        // entries compare equal.
        self.as_slice() == other.as_slice()
    }
}

impl fmt::Display for Vector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, x) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{x:.6}")?;
        }
        write!(f, "]")
    }
}

impl Index<usize> for Vector {
    type Output = f64;

    fn index(&self, index: usize) -> &f64 {
        &self.as_slice()[index]
    }
}

impl IndexMut<usize> for Vector {
    fn index_mut(&mut self, index: usize) -> &mut f64 {
        &mut self.as_mut_slice()[index]
    }
}

impl From<Vec<f64>> for Vector {
    fn from(data: Vec<f64>) -> Self {
        if data.len() <= INLINE_CAP {
            Self::from_slice(&data)
        } else {
            Self {
                storage: Storage::Heap(data),
            }
        }
    }
}

impl FromIterator<f64> for Vector {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut data = [0.0; INLINE_CAP];
        let mut len = 0usize;
        let mut it = iter.into_iter();
        while len < INLINE_CAP {
            match it.next() {
                Some(x) => {
                    data[len] = x;
                    len += 1;
                }
                None => {
                    return Self {
                        storage: Storage::Inline {
                            len: len as u8,
                            data,
                        },
                    }
                }
            }
        }
        match it.next() {
            None => Self {
                storage: Storage::Inline {
                    len: len as u8,
                    data,
                },
            },
            Some(x) => {
                let mut v = data.to_vec();
                v.push(x);
                v.extend(it);
                Self {
                    storage: Storage::Heap(v),
                }
            }
        }
    }
}

impl IntoIterator for Vector {
    type Item = f64;
    type IntoIter = std::vec::IntoIter<f64>;

    fn into_iter(self) -> Self::IntoIter {
        self.into_vec().into_iter()
    }
}

impl<'a> IntoIterator for &'a Vector {
    type Item = &'a f64;
    type IntoIter = std::slice::Iter<'a, f64>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

fn binary_op(lhs: &Vector, rhs: &Vector, op: impl Fn(f64, f64) -> f64, name: &str) -> Vector {
    assert_eq!(lhs.len(), rhs.len(), "{name} requires equal lengths");
    Vector::from_fn(lhs.len(), |i| op(lhs.as_slice()[i], rhs.as_slice()[i]))
}

impl Add for &Vector {
    type Output = Vector;

    fn add(self, rhs: &Vector) -> Vector {
        binary_op(self, rhs, |a, b| a + b, "vector addition")
    }
}

impl Add for Vector {
    type Output = Vector;

    fn add(self, rhs: Vector) -> Vector {
        &self + &rhs
    }
}

impl Sub for &Vector {
    type Output = Vector;

    fn sub(self, rhs: &Vector) -> Vector {
        binary_op(self, rhs, |a, b| a - b, "vector subtraction")
    }
}

impl Sub for Vector {
    type Output = Vector;

    fn sub(self, rhs: Vector) -> Vector {
        &self - &rhs
    }
}

impl Add<&Vector> for Vector {
    type Output = Vector;

    fn add(self, rhs: &Vector) -> Vector {
        &self + rhs
    }
}

impl Sub<&Vector> for Vector {
    type Output = Vector;

    fn sub(self, rhs: &Vector) -> Vector {
        &self - rhs
    }
}

impl AddAssign<&Vector> for Vector {
    fn add_assign(&mut self, rhs: &Vector) {
        assert_eq!(
            self.len(),
            rhs.len(),
            "vector addition requires equal lengths"
        );
        for (a, b) in self.as_mut_slice().iter_mut().zip(rhs.as_slice()) {
            *a += b;
        }
    }
}

impl SubAssign<&Vector> for Vector {
    fn sub_assign(&mut self, rhs: &Vector) {
        assert_eq!(
            self.len(),
            rhs.len(),
            "vector subtraction requires equal lengths"
        );
        for (a, b) in self.as_mut_slice().iter_mut().zip(rhs.as_slice()) {
            *a -= b;
        }
    }
}

impl Mul<f64> for &Vector {
    type Output = Vector;

    fn mul(self, rhs: f64) -> Vector {
        self.scale(rhs)
    }
}

impl Mul<f64> for Vector {
    type Output = Vector;

    fn mul(self, rhs: f64) -> Vector {
        self.scale(rhs)
    }
}

impl Neg for &Vector {
    type Output = Vector;

    fn neg(self) -> Vector {
        self.scale(-1.0)
    }
}

impl Neg for Vector {
    type Output = Vector;

    fn neg(self) -> Vector {
        self.scale(-1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_len() {
        let v = Vector::zeros(4);
        assert_eq!(v.len(), 4);
        assert!(!v.is_empty());
        assert_eq!(v.norm_l1(), 0.0);
    }

    #[test]
    fn from_fn_builds_expected_entries() {
        let v = Vector::from_fn(3, |i| (i as f64) * 2.0);
        assert_eq!(v.as_slice(), &[0.0, 2.0, 4.0]);
    }

    #[test]
    fn dot_product() {
        let a = Vector::from_slice(&[1.0, 2.0, 3.0]);
        let b = Vector::from_slice(&[4.0, 5.0, 6.0]);
        assert_eq!(a.dot(&b), 32.0);
    }

    #[test]
    #[should_panic(expected = "equal lengths")]
    fn dot_product_length_mismatch_panics() {
        let a = Vector::from_slice(&[1.0]);
        let b = Vector::from_slice(&[1.0, 2.0]);
        let _ = a.dot(&b);
    }

    #[test]
    fn norms() {
        let v = Vector::from_slice(&[3.0, -4.0]);
        assert_eq!(v.norm_l1(), 7.0);
        assert_eq!(v.norm_l2(), 5.0);
        assert_eq!(v.norm_inf(), 4.0);
    }

    #[test]
    fn norm_inf_of_empty_is_zero() {
        assert_eq!(Vector::zeros(0).norm_inf(), 0.0);
        assert!(Vector::zeros(0).is_empty());
    }

    #[test]
    fn arithmetic_ops() {
        let a = Vector::from_slice(&[1.0, 2.0]);
        let b = Vector::from_slice(&[3.0, 5.0]);
        assert_eq!((&a + &b).as_slice(), &[4.0, 7.0]);
        assert_eq!((&b - &a).as_slice(), &[2.0, 3.0]);
        assert_eq!((&a * 2.0).as_slice(), &[2.0, 4.0]);
        assert_eq!((-&a).as_slice(), &[-1.0, -2.0]);
    }

    #[test]
    fn add_assign_and_sub_assign() {
        let mut a = Vector::from_slice(&[1.0, 1.0]);
        a += &Vector::from_slice(&[2.0, 3.0]);
        assert_eq!(a.as_slice(), &[3.0, 4.0]);
        a -= &Vector::from_slice(&[1.0, 1.0]);
        assert_eq!(a.as_slice(), &[2.0, 3.0]);
    }

    #[test]
    fn select_reorders_entries() {
        let v = Vector::from_slice(&[10.0, 20.0, 30.0]);
        assert_eq!(v.select(&[2, 0]).as_slice(), &[30.0, 10.0]);
    }

    #[test]
    fn is_finite_detects_nan() {
        let v = Vector::from_slice(&[1.0, f64::NAN]);
        assert!(!v.is_finite());
        assert!(Vector::from_slice(&[1.0, 2.0]).is_finite());
    }

    #[test]
    fn display_formats_entries() {
        let v = Vector::from_slice(&[1.0, -2.5]);
        let s = format!("{v}");
        assert!(s.starts_with('[') && s.ends_with(']'));
        assert!(s.contains("1.000000"));
    }

    #[test]
    fn collect_from_iterator() {
        let v: Vector = (0..3).map(|i| i as f64).collect();
        assert_eq!(v.as_slice(), &[0.0, 1.0, 2.0]);
    }

    #[test]
    fn small_vectors_stay_inline_and_large_ones_spill() {
        assert!(Vector::zeros(0).is_inline());
        assert!(Vector::zeros(INLINE_CAP).is_inline());
        assert!(!Vector::zeros(INLINE_CAP + 1).is_inline());
        assert!(Vector::from_fn(INLINE_CAP, |i| i as f64).is_inline());
        assert!(!Vector::from_fn(INLINE_CAP + 1, |i| i as f64).is_inline());
        let collected: Vector = (0..INLINE_CAP).map(|i| i as f64).collect();
        assert!(collected.is_inline());
        let spilled: Vector = (0..INLINE_CAP + 1).map(|i| i as f64).collect();
        assert!(!spilled.is_inline());
        assert_eq!(spilled.len(), INLINE_CAP + 1);
        assert_eq!(spilled[INLINE_CAP], INLINE_CAP as f64);
    }

    #[test]
    fn inline_and_heap_vectors_compare_equal() {
        let inline = Vector::from_slice(&[1.0, 2.0, 3.0]);
        let heap = Vector::heap_backed(vec![1.0, 2.0, 3.0]);
        assert!(inline.is_inline());
        assert!(!heap.is_inline());
        assert_eq!(inline, heap);
        assert_eq!(format!("{inline}"), format!("{heap}"));
        assert_eq!(format!("{inline:?}"), format!("{heap:?}"));
    }

    #[test]
    fn resize_zeroed_preserves_prefix_across_representations() {
        // inline → inline (grow and shrink)
        let mut v = Vector::from_slice(&[1.0, 2.0]);
        v.resize_zeroed(4);
        assert_eq!(v.as_slice(), &[1.0, 2.0, 0.0, 0.0]);
        v.resize_zeroed(1);
        assert_eq!(v.as_slice(), &[1.0]);
        // regrow must re-zero previously used slots
        v.resize_zeroed(3);
        assert_eq!(v.as_slice(), &[1.0, 0.0, 0.0]);

        // inline → heap
        let mut v = Vector::from_slice(&[1.0, 2.0]);
        v.resize_zeroed(INLINE_CAP + 2);
        assert!(!v.is_inline());
        assert_eq!(v[0], 1.0);
        assert_eq!(v[1], 2.0);
        assert_eq!(v[INLINE_CAP + 1], 0.0);

        // heap → inline
        v.resize_zeroed(2);
        assert!(v.is_inline());
        assert_eq!(v.as_slice(), &[1.0, 2.0]);

        // heap stays heap when shrinking above the inline cap
        let mut w = Vector::zeros(INLINE_CAP + 4);
        w.resize_zeroed(INLINE_CAP + 1);
        assert!(!w.is_inline());
        assert_eq!(w.len(), INLINE_CAP + 1);
    }

    #[test]
    fn copy_from_and_assign_kernels_match_operators() {
        let a = Vector::from_slice(&[1.0, -2.0, 3.5]);
        let b = Vector::from_slice(&[0.25, 4.0, -1.5]);

        let mut out = Vector::zeros(0);
        out.copy_from(&a);
        assert_eq!(out, a);

        out.assign_sum(&a, &b);
        assert_eq!(out, &a + &b);

        out.assign_diff(&a, &b);
        assert_eq!(out, &a - &b);

        out.copy_from(&b);
        out.rsub_from(&a);
        assert_eq!(out, &a - &b);
    }

    #[test]
    fn into_vec_round_trips_both_representations() {
        let inline = Vector::from_slice(&[1.0, 2.0]);
        assert_eq!(inline.clone().into_vec(), vec![1.0, 2.0]);
        let heap = Vector::heap_backed(vec![1.0, 2.0]);
        assert_eq!(heap.into_vec(), vec![1.0, 2.0]);
        let big: Vec<f64> = (0..INLINE_CAP + 3).map(|i| i as f64).collect();
        let v: Vector = big.clone().into();
        assert!(!v.is_inline());
        assert_eq!(v.into_vec(), big);
    }
}
