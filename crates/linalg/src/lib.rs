//! Dense linear algebra substrate for the `secure-cps` workspace.
//!
//! The crate provides the small set of numerical building blocks needed by an
//! LTI control loop and its formal analysis:
//!
//! - [`Matrix`] and [`Vector`] — dense, row-major, `f64` containers with the
//!   usual arithmetic operators,
//! - [`LuDecomposition`] — LU factorisation with partial pivoting, used for
//!   linear solves, inversion and determinants,
//! - [`expm`] — matrix exponential (scaling-and-squaring with a Padé
//!   approximant), used for zero-order-hold discretisation,
//! - [`solve_dare`] / [`solve_discrete_lyapunov`] — fixed-point solvers for the
//!   discrete algebraic Riccati and Lyapunov equations, used to design the
//!   steady-state Kalman filter and the LQR controller.
//!
//! Paper mapping: no section of *Koley et al. (DATE 2020)* is about linear
//! algebra itself, but everything in §II (plant, estimator and controller
//! design) and the affine unrolling behind §III's SMT queries is computed with
//! the primitives in this crate.
//!
//! # Example
//!
//! ```
//! use cps_linalg::{Matrix, Vector};
//!
//! # fn main() -> Result<(), cps_linalg::LinalgError> {
//! let a = Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]])?;
//! let b = Vector::from_slice(&[1.0, 2.0]);
//! let x = a.solve(&b)?;
//! let residual = (&a * &x - &b).norm_inf();
//! assert!(residual < 1e-12);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod error;
mod expm;
mod lu;
mod matrix;
mod riccati;
mod rng;
mod vector;

pub use error::LinalgError;
pub use expm::expm;
pub use lu::LuDecomposition;
pub use matrix::Matrix;
pub use riccati::{solve_dare, solve_discrete_lyapunov, RiccatiOptions};
pub use rng::SplitMix64;
pub use vector::{Vector, INLINE_CAP};

/// Default absolute tolerance used by iterative solvers and approximate
/// comparisons throughout the workspace.
pub const DEFAULT_TOL: f64 = 1e-9;

/// Returns `true` when `a` and `b` are within `tol` of each other.
///
/// Intended for test assertions and iterative-solver convergence checks; both
/// `NaN` inputs and infinite differences compare as *not* close.
///
/// # Example
///
/// ```
/// assert!(cps_linalg::approx_eq(1.0, 1.0 + 1e-12, 1e-9));
/// assert!(!cps_linalg::approx_eq(1.0, 1.1, 1e-9));
/// ```
pub fn approx_eq(a: f64, b: f64, tol: f64) -> bool {
    (a - b).abs() <= tol
}
