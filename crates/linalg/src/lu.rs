use crate::{LinalgError, Matrix, Vector};

/// LU decomposition with partial pivoting (`P * A = L * U`).
///
/// The factorisation is computed once by [`Matrix::lu`] (or
/// [`LuDecomposition::new`]) and can then be reused for several solves,
/// inversion or determinant computation — the usual pattern when the same
/// plant matrix has to be applied to many right-hand sides during simulation
/// or synthesis.
///
/// # Example
///
/// ```
/// use cps_linalg::{Matrix, Vector};
///
/// # fn main() -> Result<(), cps_linalg::LinalgError> {
/// let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]])?;
/// let lu = a.lu()?;
/// let x = lu.solve(&Vector::from_slice(&[3.0, 5.0]))?;
/// assert!((&a * &x - &Vector::from_slice(&[3.0, 5.0])).norm_inf() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct LuDecomposition {
    /// Combined L (strictly lower, unit diagonal implied) and U (upper) factors.
    lu: Matrix,
    /// Row permutation: `perm[i]` is the original row stored at position `i`.
    perm: Vec<usize>,
    /// Sign of the permutation (`+1.0` or `-1.0`), used by the determinant.
    perm_sign: f64,
}

/// Pivots smaller than this magnitude are treated as zero (singular matrix).
const PIVOT_TOL: f64 = 1e-13;

impl LuDecomposition {
    /// Factorises `a` into `P * a = L * U` using partial (row) pivoting.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotSquare`] if `a` is rectangular and
    /// [`LinalgError::Singular`] if a pivot smaller than the internal
    /// tolerance is encountered.
    pub fn new(a: &Matrix) -> Result<Self, LinalgError> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        let n = a.rows();
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut perm_sign = 1.0;

        for k in 0..n {
            // Find the pivot row: largest magnitude in column k at or below row k.
            let mut pivot_row = k;
            let mut pivot_val = lu[(k, k)].abs();
            for i in (k + 1)..n {
                let v = lu[(i, k)].abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = i;
                }
            }
            if pivot_val < PIVOT_TOL {
                return Err(LinalgError::Singular);
            }
            if pivot_row != k {
                for j in 0..n {
                    let tmp = lu[(k, j)];
                    lu[(k, j)] = lu[(pivot_row, j)];
                    lu[(pivot_row, j)] = tmp;
                }
                perm.swap(k, pivot_row);
                perm_sign = -perm_sign;
            }
            let pivot = lu[(k, k)];
            for i in (k + 1)..n {
                let factor = lu[(i, k)] / pivot;
                lu[(i, k)] = factor;
                for j in (k + 1)..n {
                    let delta = factor * lu[(k, j)];
                    lu[(i, j)] -= delta;
                }
            }
        }

        Ok(Self {
            lu,
            perm,
            perm_sign,
        })
    }

    /// Dimension of the factorised matrix.
    pub fn dim(&self) -> usize {
        self.lu.rows()
    }

    /// Solves `A * x = b` using the stored factorisation.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `b.len()` differs from the
    /// matrix dimension.
    pub fn solve(&self, b: &Vector) -> Result<Vector, LinalgError> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::ShapeMismatch {
                op: "LU solve",
                lhs: (n, n),
                rhs: (b.len(), 1),
            });
        }
        // Forward substitution with the permuted right-hand side: L * y = P * b.
        let mut y = Vector::zeros(n);
        for i in 0..n {
            let mut sum = b[self.perm[i]];
            for j in 0..i {
                sum -= self.lu[(i, j)] * y[j];
            }
            y[i] = sum;
        }
        // Backward substitution: U * x = y.
        let mut x = Vector::zeros(n);
        for i in (0..n).rev() {
            let mut sum = y[i];
            for j in (i + 1)..n {
                sum -= self.lu[(i, j)] * x[j];
            }
            x[i] = sum / self.lu[(i, i)];
        }
        Ok(x)
    }

    /// Solves `A * X = B` column by column.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `B` has a different number of
    /// rows than the factorised matrix.
    pub fn solve_matrix(&self, b: &Matrix) -> Result<Matrix, LinalgError> {
        let n = self.dim();
        if b.rows() != n {
            return Err(LinalgError::ShapeMismatch {
                op: "LU matrix solve",
                lhs: (n, n),
                rhs: b.shape(),
            });
        }
        let mut out = Matrix::zeros(n, b.cols());
        for j in 0..b.cols() {
            let col = self.solve(&b.col(j))?;
            for i in 0..n {
                out[(i, j)] = col[i];
            }
        }
        Ok(out)
    }

    /// Computes the inverse of the factorised matrix.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from [`LuDecomposition::solve_matrix`]; the
    /// factorisation itself already guarantees non-singularity.
    pub fn inverse(&self) -> Result<Matrix, LinalgError> {
        self.solve_matrix(&Matrix::identity(self.dim()))
    }

    /// Determinant of the factorised matrix (product of U's diagonal with the
    /// permutation sign).
    pub fn determinant(&self) -> f64 {
        let mut det = self.perm_sign;
        for i in 0..self.dim() {
            det *= self.lu[(i, i)];
        }
        det
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn solve_known_system() {
        let a =
            Matrix::from_rows(&[&[3.0, 2.0, -1.0], &[2.0, -2.0, 4.0], &[-1.0, 0.5, -1.0]]).unwrap();
        let b = Vector::from_slice(&[1.0, -2.0, 0.0]);
        let x = a.solve(&b).unwrap();
        assert!(approx_eq(x[0], 1.0, 1e-10));
        assert!(approx_eq(x[1], -2.0, 1e-10));
        assert!(approx_eq(x[2], -2.0, 1e-10));
    }

    #[test]
    fn singular_matrix_is_rejected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]).unwrap();
        assert!(matches!(a.lu(), Err(LinalgError::Singular)));
    }

    #[test]
    fn rectangular_matrix_is_rejected() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(a.lu(), Err(LinalgError::NotSquare { .. })));
    }

    #[test]
    fn solve_rejects_wrong_rhs_length() {
        let a = Matrix::identity(3);
        let lu = a.lu().unwrap();
        assert!(matches!(
            lu.solve(&Vector::zeros(2)),
            Err(LinalgError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        let x = a.solve(&Vector::from_slice(&[2.0, 3.0])).unwrap();
        assert!(approx_eq(x[0], 3.0, 1e-12));
        assert!(approx_eq(x[1], 2.0, 1e-12));
    }

    #[test]
    fn determinant_tracks_permutation_sign() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        assert!(approx_eq(a.lu().unwrap().determinant(), -1.0, 1e-12));
        let b = Matrix::from_diag(&[2.0, 3.0, 4.0]);
        assert!(approx_eq(b.lu().unwrap().determinant(), 24.0, 1e-12));
    }

    #[test]
    fn inverse_round_trip() {
        let a = Matrix::from_rows(&[&[4.0, 7.0], &[2.0, 6.0]]).unwrap();
        let inv = a.inverse().unwrap();
        let eye = a.matmul(&inv).unwrap();
        assert!((eye - Matrix::identity(2)).norm_fro() < 1e-12);
    }

    #[test]
    fn solve_matrix_rejects_row_mismatch() {
        let a = Matrix::identity(2);
        let lu = a.lu().unwrap();
        assert!(lu.solve_matrix(&Matrix::zeros(3, 2)).is_err());
    }
}
