use crate::{LinalgError, Matrix};

/// Options controlling the fixed-point iterations in [`solve_dare`] and
/// [`solve_discrete_lyapunov`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RiccatiOptions {
    /// Maximum number of fixed-point iterations before giving up.
    pub max_iterations: usize,
    /// Convergence tolerance on the Frobenius norm of successive iterates.
    pub tolerance: f64,
}

impl Default for RiccatiOptions {
    fn default() -> Self {
        Self {
            max_iterations: 10_000,
            tolerance: 1e-12,
        }
    }
}

/// Solves the discrete algebraic Riccati equation (DARE)
///
/// ```text
/// P = Aᵀ P A − Aᵀ P B (R + Bᵀ P B)⁻¹ Bᵀ P A + Q
/// ```
///
/// by fixed-point iteration starting from `P = Q`. The solution is used both
/// for LQR gain design (with `A`, `B` the plant matrices) and for the
/// steady-state Kalman filter (with `Aᵀ`, `Cᵀ` in place of `A`, `B`).
///
/// # Errors
///
/// - [`LinalgError::NotSquare`] / [`LinalgError::ShapeMismatch`] when the
///   matrix dimensions are inconsistent,
/// - [`LinalgError::Singular`] when `R + Bᵀ P B` cannot be inverted,
/// - [`LinalgError::NoConvergence`] when the iteration budget is exhausted
///   (e.g. for an unstabilisable pair).
///
/// # Example
///
/// ```
/// use cps_linalg::{solve_dare, Matrix, RiccatiOptions};
///
/// # fn main() -> Result<(), cps_linalg::LinalgError> {
/// let a = Matrix::from_rows(&[&[1.0, 0.1], &[0.0, 1.0]])?;
/// let b = Matrix::from_rows(&[&[0.0], &[0.1]])?;
/// let q = Matrix::identity(2);
/// let r = Matrix::from_diag(&[1.0]);
/// let p = solve_dare(&a, &b, &q, &r, RiccatiOptions::default())?;
/// assert!(p.is_finite());
/// # Ok(())
/// # }
/// ```
pub fn solve_dare(
    a: &Matrix,
    b: &Matrix,
    q: &Matrix,
    r: &Matrix,
    options: RiccatiOptions,
) -> Result<Matrix, LinalgError> {
    let n = a.rows();
    if !a.is_square() {
        return Err(LinalgError::NotSquare {
            rows: a.rows(),
            cols: a.cols(),
        });
    }
    if b.rows() != n {
        return Err(LinalgError::ShapeMismatch {
            op: "DARE input map",
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    let m = b.cols();
    if q.shape() != (n, n) {
        return Err(LinalgError::ShapeMismatch {
            op: "DARE state cost",
            lhs: a.shape(),
            rhs: q.shape(),
        });
    }
    if r.shape() != (m, m) {
        return Err(LinalgError::ShapeMismatch {
            op: "DARE input cost",
            lhs: (m, m),
            rhs: r.shape(),
        });
    }

    let a_t = a.transpose();
    let b_t = b.transpose();
    let mut p = q.clone();
    for iteration in 0..options.max_iterations {
        // P_{k+1} = Aᵀ P A − Aᵀ P B (R + Bᵀ P B)⁻¹ Bᵀ P A + Q
        let pa = p.matmul(a)?;
        let pb = p.matmul(b)?;
        let atpa = a_t.matmul(&pa)?;
        let atpb = a_t.matmul(&pb)?;
        let btpb = b_t.matmul(&pb)?;
        let gram = &btpb + r;
        let btpa = b_t.matmul(&pa)?;
        let correction = atpb.matmul(&gram.lu()?.solve_matrix(&btpa)?)?;
        let next = &(&atpa - &correction) + q;
        let delta = (&next - &p).norm_fro();
        p = next;
        if !p.is_finite() {
            return Err(LinalgError::NoConvergence {
                iterations: iteration + 1,
                residual: f64::INFINITY,
            });
        }
        if delta <= options.tolerance {
            return Ok(p);
        }
    }
    Err(LinalgError::NoConvergence {
        iterations: options.max_iterations,
        residual: f64::NAN,
    })
}

/// Solves the discrete Lyapunov equation `P = A P Aᵀ + Q` by fixed-point
/// iteration (requires `A` to be Schur stable).
///
/// Used to compute steady-state state covariances for noise-driven closed
/// loops.
///
/// # Errors
///
/// - [`LinalgError::NotSquare`] / [`LinalgError::ShapeMismatch`] for
///   inconsistent dimensions,
/// - [`LinalgError::NoConvergence`] when `A` is not stable enough for the
///   iteration to converge within the budget.
pub fn solve_discrete_lyapunov(
    a: &Matrix,
    q: &Matrix,
    options: RiccatiOptions,
) -> Result<Matrix, LinalgError> {
    if !a.is_square() {
        return Err(LinalgError::NotSquare {
            rows: a.rows(),
            cols: a.cols(),
        });
    }
    if q.shape() != a.shape() {
        return Err(LinalgError::ShapeMismatch {
            op: "discrete Lyapunov",
            lhs: a.shape(),
            rhs: q.shape(),
        });
    }
    let a_t = a.transpose();
    let mut p = q.clone();
    for iteration in 0..options.max_iterations {
        let apa = a.matmul(&p)?.matmul(&a_t)?;
        let next = &apa + q;
        let delta = (&next - &p).norm_fro();
        p = next;
        if !p.is_finite() {
            return Err(LinalgError::NoConvergence {
                iterations: iteration + 1,
                residual: f64::INFINITY,
            });
        }
        if delta <= options.tolerance {
            return Ok(p);
        }
    }
    Err(LinalgError::NoConvergence {
        iterations: options.max_iterations,
        residual: f64::NAN,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn scalar_dare_matches_closed_form() {
        // Scalar case: a = 0.9, b = 1, q = 1, r = 1.
        // P = a²P − a²P²/(1+P) + q  has a positive root we can verify numerically.
        let a = Matrix::from_diag(&[0.9]);
        let b = Matrix::from_diag(&[1.0]);
        let q = Matrix::from_diag(&[1.0]);
        let r = Matrix::from_diag(&[1.0]);
        let p = solve_dare(&a, &b, &q, &r, RiccatiOptions::default()).unwrap();
        let p00 = p[(0, 0)];
        let rhs = 0.81 * p00 - 0.81 * p00 * p00 / (1.0 + p00) + 1.0;
        assert!(
            approx_eq(p00, rhs, 1e-8),
            "fixed point violated: {p00} vs {rhs}"
        );
        assert!(p00 > 0.0);
    }

    #[test]
    fn dare_solution_satisfies_equation_for_two_states() {
        let a = Matrix::from_rows(&[&[1.0, 0.1], &[0.0, 1.0]]).unwrap();
        let b = Matrix::from_rows(&[&[0.005], &[0.1]]).unwrap();
        let q = Matrix::identity(2);
        let r = Matrix::from_diag(&[0.5]);
        let p = solve_dare(&a, &b, &q, &r, RiccatiOptions::default()).unwrap();

        let a_t = a.transpose();
        let b_t = b.transpose();
        let pa = p.matmul(&a).unwrap();
        let pb = p.matmul(&b).unwrap();
        let gram = &b_t.matmul(&pb).unwrap() + &r;
        let correction = a_t
            .matmul(&pb)
            .unwrap()
            .matmul(
                &gram
                    .lu()
                    .unwrap()
                    .solve_matrix(&b_t.matmul(&pa).unwrap())
                    .unwrap(),
            )
            .unwrap();
        let rhs = &(&a_t.matmul(&pa).unwrap() - &correction) + &q;
        assert!((rhs - p).norm_fro() < 1e-6);
    }

    #[test]
    fn dare_rejects_shape_mismatches() {
        let a = Matrix::identity(2);
        let b = Matrix::zeros(3, 1);
        let q = Matrix::identity(2);
        let r = Matrix::identity(1);
        assert!(solve_dare(&a, &b, &q, &r, RiccatiOptions::default()).is_err());
        assert!(solve_dare(&Matrix::zeros(2, 3), &b, &q, &r, RiccatiOptions::default()).is_err());
    }

    #[test]
    fn lyapunov_solution_satisfies_equation() {
        let a = Matrix::from_rows(&[&[0.5, 0.1], &[0.0, 0.3]]).unwrap();
        let q = Matrix::identity(2);
        let p = solve_discrete_lyapunov(&a, &q, RiccatiOptions::default()).unwrap();
        let rhs = &a.matmul(&p).unwrap().matmul(&a.transpose()).unwrap() + &q;
        assert!((rhs - p).norm_fro() < 1e-9);
    }

    #[test]
    fn lyapunov_diverges_for_unstable_a() {
        let a = Matrix::from_diag(&[1.5]);
        let q = Matrix::identity(1);
        let err = solve_discrete_lyapunov(
            &a,
            &q,
            RiccatiOptions {
                max_iterations: 500,
                tolerance: 1e-12,
            },
        )
        .unwrap_err();
        assert!(matches!(err, LinalgError::NoConvergence { .. }));
    }

    #[test]
    fn lyapunov_rejects_shape_mismatch() {
        let a = Matrix::identity(2);
        let q = Matrix::identity(3);
        assert!(solve_discrete_lyapunov(&a, &q, RiccatiOptions::default()).is_err());
    }
}
