use std::error::Error;
use std::fmt;

/// Errors produced by the linear-algebra routines in this crate.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum LinalgError {
    /// Two operands have incompatible shapes for the requested operation.
    ShapeMismatch {
        /// Human-readable description of the operation that failed.
        op: &'static str,
        /// Shape of the left operand as `(rows, cols)`.
        lhs: (usize, usize),
        /// Shape of the right operand as `(rows, cols)`.
        rhs: (usize, usize),
    },
    /// The operation requires a square matrix but received a rectangular one.
    NotSquare {
        /// Number of rows of the offending matrix.
        rows: usize,
        /// Number of columns of the offending matrix.
        cols: usize,
    },
    /// A factorisation or solve encountered a (numerically) singular matrix.
    Singular,
    /// An iterative solver failed to converge within its iteration budget.
    NoConvergence {
        /// Number of iterations performed before giving up.
        iterations: usize,
        /// Residual norm when the iteration stopped.
        residual: f64,
    },
    /// The input data is malformed (e.g. ragged rows, empty dimension).
    InvalidInput(String),
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::ShapeMismatch { op, lhs, rhs } => write!(
                f,
                "shape mismatch in {op}: left is {}x{}, right is {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            LinalgError::NotSquare { rows, cols } => {
                write!(f, "operation requires a square matrix, got {rows}x{cols}")
            }
            LinalgError::Singular => write!(f, "matrix is singular to working precision"),
            LinalgError::NoConvergence {
                iterations,
                residual,
            } => write!(
                f,
                "iteration did not converge after {iterations} steps (residual {residual:.3e})"
            ),
            LinalgError::InvalidInput(msg) => write!(f, "invalid input: {msg}"),
        }
    }
}

impl Error for LinalgError {}
