use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Neg, Sub};

use crate::{LinalgError, LuDecomposition, Vector};

/// Shared row·vector reduction: every matrix-vector kernel (allocating or
/// `_into`) funnels through this one summation so their results are
/// bit-identical by construction.
#[inline]
fn row_dot(row: &[f64], v: &[f64]) -> f64 {
    row.iter().zip(v.iter()).map(|(a, b)| a * b).sum()
}

/// A dense, row-major matrix of `f64` values.
///
/// `Matrix` is deliberately small and predictable: it stores its elements in a
/// single `Vec<f64>`, implements the usual arithmetic operators for references
/// and values, and defers factorisation-based operations (solve, inverse,
/// determinant) to [`LuDecomposition`].
///
/// # Example
///
/// ```
/// use cps_linalg::Matrix;
///
/// # fn main() -> Result<(), cps_linalg::LinalgError> {
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]])?;
/// let b = Matrix::identity(2);
/// let c = &a * &b;
/// assert_eq!(c, a);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a square matrix with `diag` on its main diagonal.
    pub fn from_diag(diag: &[f64]) -> Self {
        let mut m = Self::zeros(diag.len(), diag.len());
        for (i, &d) in diag.iter().enumerate() {
            m[(i, i)] = d;
        }
        m
    }

    /// Creates a matrix from a slice of row slices.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidInput`] if the rows are ragged or the
    /// input is empty.
    pub fn from_rows(rows: &[&[f64]]) -> Result<Self, LinalgError> {
        if rows.is_empty() || rows[0].is_empty() {
            return Err(LinalgError::InvalidInput(
                "matrix must have at least one row and one column".to_string(),
            ));
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, row) in rows.iter().enumerate() {
            if row.len() != cols {
                return Err(LinalgError::InvalidInput(format!(
                    "row {i} has {} entries, expected {cols}",
                    row.len()
                )));
            }
            data.extend_from_slice(row);
        }
        Ok(Self {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Creates a matrix from a closure evaluated at every `(row, col)` index.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Self { rows, cols, data }
    }

    /// Creates a single-column matrix from a vector.
    pub fn from_column(v: &Vector) -> Self {
        Self {
            rows: v.len(),
            cols: 1,
            data: v.as_slice().to_vec(),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Shape as `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Returns `true` when the matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrows the underlying row-major storage.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Returns row `i` as a vector.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rows()`.
    pub fn row(&self, i: usize) -> Vector {
        assert!(i < self.rows, "row index {i} out of bounds");
        Vector::from_slice(&self.data[i * self.cols..(i + 1) * self.cols])
    }

    /// Returns column `j` as a vector.
    ///
    /// # Panics
    ///
    /// Panics if `j >= self.cols()`.
    pub fn col(&self, j: usize) -> Vector {
        assert!(j < self.cols, "column index {j} out of bounds");
        Vector::from_fn(self.rows, |i| self[(i, j)])
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Sum of diagonal entries.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn trace(&self) -> f64 {
        assert!(self.is_square(), "trace requires a square matrix");
        (0..self.rows).map(|i| self[(i, i)]).sum()
    }

    /// Frobenius norm (square root of the sum of squared entries).
    pub fn norm_fro(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Induced infinity norm (maximum absolute row sum).
    pub fn norm_inf(&self) -> f64 {
        (0..self.rows)
            .map(|i| {
                self.data[i * self.cols..(i + 1) * self.cols]
                    .iter()
                    .map(|x| x.abs())
                    .sum::<f64>()
            })
            .fold(0.0, f64::max)
    }

    /// Element-wise map producing a new matrix.
    pub fn map(&self, f: impl FnMut(f64) -> f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().copied().map(f).collect(),
        }
    }

    /// Scales every entry by `factor`.
    pub fn scale(&self, factor: f64) -> Matrix {
        self.map(|x| x * factor)
    }

    /// Returns `true` when every entry is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    /// Matrix-vector product `self * v`.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.cols()`.
    pub fn mul_vec(&self, v: &Vector) -> Vector {
        let mut out = Vector::zeros(self.rows);
        self.mul_vec_into(v, &mut out);
        out
    }

    /// Matrix-vector product `self * v` written into `out`, resizing `out`
    /// to `self.rows()` if needed. Allocation-free once `out` has the right
    /// length; bit-identical to [`Matrix::mul_vec`] (same summation order).
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.cols()`.
    pub fn mul_vec_into(&self, v: &Vector, out: &mut Vector) {
        assert_eq!(
            self.cols,
            v.len(),
            "matrix-vector product dimension mismatch"
        );
        out.resize_zeroed(self.rows);
        for (i, slot) in out.as_mut_slice().iter_mut().enumerate() {
            *slot = row_dot(&self.data[i * self.cols..(i + 1) * self.cols], v.as_slice());
        }
    }

    /// Accumulating matrix-vector product `out += self * v`. Each entry adds
    /// the fully reduced row dot product (the same `f64` that
    /// [`Matrix::mul_vec`] produces), so `out = a; m.mul_vec_add_into(v, &mut
    /// out)` is bit-identical to `&a + &m.mul_vec(v)`.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.cols()` or `out.len() != self.rows()`.
    pub fn mul_vec_add_into(&self, v: &Vector, out: &mut Vector) {
        assert_eq!(
            self.cols,
            v.len(),
            "matrix-vector product dimension mismatch"
        );
        assert_eq!(
            self.rows,
            out.len(),
            "matrix-vector accumulation dimension mismatch"
        );
        for (i, slot) in out.as_mut_slice().iter_mut().enumerate() {
            *slot += row_dot(&self.data[i * self.cols..(i + 1) * self.cols], v.as_slice());
        }
    }

    /// Matrix-matrix product `self * other`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] when the inner dimensions differ.
    pub fn matmul(&self, other: &Matrix) -> Result<Matrix, LinalgError> {
        if self.cols != other.rows {
            return Err(LinalgError::ShapeMismatch {
                op: "matrix multiplication",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self[(i, k)];
                if aik == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out[(i, j)] += aik * other[(k, j)];
                }
            }
        }
        Ok(out)
    }

    /// Raises a square matrix to a non-negative integer power.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotSquare`] for rectangular matrices.
    pub fn pow(&self, mut exponent: u32) -> Result<Matrix, LinalgError> {
        if !self.is_square() {
            return Err(LinalgError::NotSquare {
                rows: self.rows,
                cols: self.cols,
            });
        }
        let mut result = Matrix::identity(self.rows);
        let mut base = self.clone();
        while exponent > 0 {
            if exponent & 1 == 1 {
                result = result.matmul(&base)?;
            }
            exponent >>= 1;
            if exponent > 0 {
                base = base.matmul(&base)?;
            }
        }
        Ok(result)
    }

    /// Horizontally concatenates `self` and `other` (`[self | other]`).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if the row counts differ.
    pub fn hstack(&self, other: &Matrix) -> Result<Matrix, LinalgError> {
        if self.rows != other.rows {
            return Err(LinalgError::ShapeMismatch {
                op: "horizontal concatenation",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        Ok(Matrix::from_fn(
            self.rows,
            self.cols + other.cols,
            |i, j| {
                if j < self.cols {
                    self[(i, j)]
                } else {
                    other[(i, j - self.cols)]
                }
            },
        ))
    }

    /// Vertically concatenates `self` on top of `other`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if the column counts differ.
    pub fn vstack(&self, other: &Matrix) -> Result<Matrix, LinalgError> {
        if self.cols != other.cols {
            return Err(LinalgError::ShapeMismatch {
                op: "vertical concatenation",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        Ok(Matrix::from_fn(
            self.rows + other.rows,
            self.cols,
            |i, j| {
                if i < self.rows {
                    self[(i, j)]
                } else {
                    other[(i - self.rows, j)]
                }
            },
        ))
    }

    /// Computes the LU decomposition with partial pivoting.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotSquare`] for rectangular matrices and
    /// [`LinalgError::Singular`] when a zero pivot is encountered.
    pub fn lu(&self) -> Result<LuDecomposition, LinalgError> {
        LuDecomposition::new(self)
    }

    /// Solves `self * x = b` for `x`.
    ///
    /// # Errors
    ///
    /// Propagates factorisation errors and shape mismatches from
    /// [`LuDecomposition`].
    pub fn solve(&self, b: &Vector) -> Result<Vector, LinalgError> {
        self.lu()?.solve(b)
    }

    /// Computes the matrix inverse.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Singular`] for singular matrices and
    /// [`LinalgError::NotSquare`] for rectangular ones.
    pub fn inverse(&self) -> Result<Matrix, LinalgError> {
        self.lu()?.inverse()
    }

    /// Computes the determinant via LU decomposition.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotSquare`] for rectangular matrices. A singular
    /// matrix returns `Ok(0.0)`.
    pub fn determinant(&self) -> Result<f64, LinalgError> {
        match self.lu() {
            Ok(lu) => Ok(lu.determinant()),
            Err(LinalgError::Singular) => Ok(0.0),
            Err(e) => Err(e),
        }
    }

    /// Largest absolute eigenvalue estimated by power iteration on
    /// `self^T * self` (i.e. the spectral radius upper bound via the largest
    /// singular value). Used for stability heuristics and scaling decisions.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotSquare`] for rectangular matrices.
    pub fn spectral_radius_estimate(&self, iterations: usize) -> Result<f64, LinalgError> {
        if !self.is_square() {
            return Err(LinalgError::NotSquare {
                rows: self.rows,
                cols: self.cols,
            });
        }
        if self.rows == 0 {
            return Ok(0.0);
        }
        let mut v = Vector::filled(self.rows, 1.0 / (self.rows as f64).sqrt());
        let mut estimate = 0.0;
        for _ in 0..iterations.max(1) {
            let w = self.mul_vec(&v);
            let norm = w.norm_l2();
            if norm < 1e-300 {
                return Ok(0.0);
            }
            estimate = norm;
            v = w.scale(1.0 / norm);
        }
        Ok(estimate)
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            write!(f, "[")?;
            for j in 0..self.cols {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:.6}", self[(i, j)])?;
            }
            writeln!(f, "]")?;
        }
        Ok(())
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        assert!(i < self.rows && j < self.cols, "matrix index out of bounds");
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        assert!(i < self.rows && j < self.cols, "matrix index out of bounds");
        &mut self.data[i * self.cols + j]
    }
}

impl Add for &Matrix {
    type Output = Matrix;

    fn add(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "matrix addition shape mismatch");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(rhs.data.iter())
                .map(|(a, b)| a + b)
                .collect(),
        }
    }
}

impl Add for Matrix {
    type Output = Matrix;

    fn add(self, rhs: Matrix) -> Matrix {
        &self + &rhs
    }
}

impl Sub for &Matrix {
    type Output = Matrix;

    fn sub(self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.shape(),
            rhs.shape(),
            "matrix subtraction shape mismatch"
        );
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(rhs.data.iter())
                .map(|(a, b)| a - b)
                .collect(),
        }
    }
}

impl Sub for Matrix {
    type Output = Matrix;

    fn sub(self, rhs: Matrix) -> Matrix {
        &self - &rhs
    }
}

impl Mul for &Matrix {
    type Output = Matrix;

    fn mul(self, rhs: &Matrix) -> Matrix {
        self.matmul(rhs)
            .expect("matrix multiplication dimension mismatch")
    }
}

impl Mul for Matrix {
    type Output = Matrix;

    fn mul(self, rhs: Matrix) -> Matrix {
        &self * &rhs
    }
}

impl Mul<&Vector> for &Matrix {
    type Output = Vector;

    fn mul(self, rhs: &Vector) -> Vector {
        self.mul_vec(rhs)
    }
}

impl Mul<f64> for &Matrix {
    type Output = Matrix;

    fn mul(self, rhs: f64) -> Matrix {
        self.scale(rhs)
    }
}

impl Neg for &Matrix {
    type Output = Matrix;

    fn neg(self) -> Matrix {
        self.scale(-1.0)
    }
}

impl Neg for Matrix {
    type Output = Matrix;

    fn neg(self) -> Matrix {
        self.scale(-1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    fn sample() -> Matrix {
        Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap()
    }

    #[test]
    fn zeros_identity_diag() {
        assert_eq!(Matrix::zeros(2, 3).shape(), (2, 3));
        let i = Matrix::identity(3);
        assert_eq!(i[(0, 0)], 1.0);
        assert_eq!(i[(0, 1)], 0.0);
        let d = Matrix::from_diag(&[2.0, 5.0]);
        assert_eq!(d[(1, 1)], 5.0);
        assert_eq!(d[(1, 0)], 0.0);
    }

    #[test]
    fn from_rows_rejects_ragged_input() {
        let err = Matrix::from_rows(&[&[1.0, 2.0], &[3.0]]).unwrap_err();
        assert!(matches!(err, LinalgError::InvalidInput(_)));
        assert!(Matrix::from_rows(&[]).is_err());
    }

    #[test]
    fn transpose_and_trace() {
        let a = sample();
        let t = a.transpose();
        assert_eq!(t[(0, 1)], 3.0);
        assert_eq!(a.trace(), 5.0);
    }

    #[test]
    fn row_and_col_access() {
        let a = sample();
        assert_eq!(a.row(1).as_slice(), &[3.0, 4.0]);
        assert_eq!(a.col(0).as_slice(), &[1.0, 3.0]);
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = sample();
        let b = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c, Matrix::from_rows(&[&[2.0, 1.0], &[4.0, 3.0]]).unwrap());
    }

    #[test]
    fn matmul_rejects_bad_shapes() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(matches!(
            a.matmul(&b),
            Err(LinalgError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn mul_vec_matches_hand_computation() {
        let a = sample();
        let v = Vector::from_slice(&[1.0, 1.0]);
        assert_eq!(a.mul_vec(&v).as_slice(), &[3.0, 7.0]);
    }

    #[test]
    fn pow_zero_is_identity_and_pow_two_is_square() {
        let a = sample();
        assert_eq!(a.pow(0).unwrap(), Matrix::identity(2));
        assert_eq!(a.pow(2).unwrap(), a.matmul(&a).unwrap());
        assert_eq!(a.pow(3).unwrap(), a.matmul(&a).unwrap().matmul(&a).unwrap());
    }

    #[test]
    fn hstack_vstack() {
        let a = sample();
        let i = Matrix::identity(2);
        let h = a.hstack(&i).unwrap();
        assert_eq!(h.shape(), (2, 4));
        assert_eq!(h[(0, 2)], 1.0);
        let v = a.vstack(&i).unwrap();
        assert_eq!(v.shape(), (4, 2));
        assert_eq!(v[(2, 0)], 1.0);
        assert!(a.hstack(&Matrix::zeros(3, 1)).is_err());
        assert!(a.vstack(&Matrix::zeros(1, 3)).is_err());
    }

    #[test]
    fn norms() {
        let a = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, 4.0]]).unwrap();
        assert_eq!(a.norm_fro(), 5.0);
        assert_eq!(a.norm_inf(), 4.0);
    }

    #[test]
    fn determinant_and_inverse() {
        let a = sample();
        assert!(approx_eq(a.determinant().unwrap(), -2.0, 1e-12));
        let inv = a.inverse().unwrap();
        let prod = a.matmul(&inv).unwrap();
        assert!((prod - Matrix::identity(2)).norm_fro() < 1e-12);
    }

    #[test]
    fn determinant_of_singular_is_zero() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]).unwrap();
        assert!(approx_eq(a.determinant().unwrap(), 0.0, 1e-12));
    }

    #[test]
    fn spectral_radius_estimate_of_diagonal() {
        let a = Matrix::from_diag(&[0.5, 0.9]);
        let r = a.spectral_radius_estimate(200).unwrap();
        assert!(approx_eq(r, 0.9, 1e-6), "estimate {r}");
    }

    #[test]
    fn operators_on_values_and_refs_agree() {
        let a = sample();
        let b = Matrix::identity(2);
        assert_eq!(&a + &b, a.clone() + b.clone());
        assert_eq!(&a - &b, a.clone() - b.clone());
        assert_eq!(&a * &b, a.clone() * b.clone());
        assert_eq!(-&a, -a.clone());
    }

    #[test]
    fn is_finite_detects_inf() {
        let mut a = sample();
        assert!(a.is_finite());
        a[(0, 0)] = f64::INFINITY;
        assert!(!a.is_finite());
    }
}
