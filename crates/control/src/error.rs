use std::error::Error;
use std::fmt;

use cps_linalg::LinalgError;

/// Errors produced when constructing or analysing control-loop components.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ControlError {
    /// Plant/controller/estimator matrices have inconsistent dimensions.
    DimensionMismatch(String),
    /// A numerical routine from the linear-algebra substrate failed.
    Numerical(LinalgError),
    /// A plant or gain matrix contains a NaN or infinite entry. Rejected at
    /// construction so non-finite values cannot reach the SMT encoder, where
    /// they would poison every assertion built from the model.
    NonFinite(String),
}

impl fmt::Display for ControlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ControlError::DimensionMismatch(msg) => write!(f, "dimension mismatch: {msg}"),
            ControlError::Numerical(err) => write!(f, "numerical failure: {err}"),
            ControlError::NonFinite(msg) => write!(f, "non-finite entry: {msg}"),
        }
    }
}

impl Error for ControlError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ControlError::Numerical(err) => Some(err),
            _ => None,
        }
    }
}

impl From<LinalgError> for ControlError {
    fn from(err: LinalgError) -> Self {
        ControlError::Numerical(err)
    }
}
