use cps_linalg::Vector;

/// Norm applied to residue vectors before comparison with a threshold.
///
/// The paper writes `‖z_k‖` without fixing the norm; the formal synthesis
/// pipeline uses [`ResidueNorm::Linf`] so that threshold comparisons stay
/// linear, while simulation-based evaluation can use any of the three.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum ResidueNorm {
    /// Sum of absolute components.
    L1,
    /// Euclidean norm.
    L2,
    /// Maximum absolute component (default; keeps SMT encodings linear).
    #[default]
    Linf,
}

impl ResidueNorm {
    /// Applies the norm to a vector.
    pub fn apply(self, v: &Vector) -> f64 {
        match self {
            ResidueNorm::L1 => v.norm_l1(),
            ResidueNorm::L2 => v.norm_l2(),
            ResidueNorm::Linf => v.norm_inf(),
        }
    }

    /// The norm of `a − b` without materialising the difference vector —
    /// bit-identical to `self.apply(&(a - b))` (same per-component values in
    /// the same reduction order).
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn apply_diff(self, a: &Vector, b: &Vector) -> f64 {
        assert_eq!(
            a.len(),
            b.len(),
            "vector subtraction requires equal lengths"
        );
        let diffs = a.iter().zip(b.iter()).map(|(x, y)| x - y);
        match self {
            ResidueNorm::L1 => diffs.map(|d| d.abs()).sum(),
            ResidueNorm::L2 => diffs.map(|d| d * d).sum::<f64>().sqrt(),
            ResidueNorm::Linf => diffs.fold(0.0, |acc, d| acc.max(d.abs())),
        }
    }
}

/// The full record of one closed-loop rollout.
///
/// Index convention: `states()[k]`, `estimates()[k]`, `measurements()[k]`,
/// `controls()[k]` and `residues()[k]` all refer to sampling instant `k`,
/// with `k = 0` the initial condition; a rollout of `T` steps stores `T + 1`
/// states and `T` residues/controls/measurements.
#[derive(Debug, Clone, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Trace {
    states: Vec<Vector>,
    estimates: Vec<Vector>,
    measurements: Vec<Vector>,
    controls: Vec<Vector>,
    residues: Vec<Vector>,
}

impl Trace {
    /// Creates a trace from its component sequences.
    ///
    /// # Panics
    ///
    /// Panics if the sequences have inconsistent lengths (see the type-level
    /// index convention).
    pub fn new(
        states: Vec<Vector>,
        estimates: Vec<Vector>,
        measurements: Vec<Vector>,
        controls: Vec<Vector>,
        residues: Vec<Vector>,
    ) -> Self {
        assert_eq!(
            states.len(),
            estimates.len(),
            "state/estimate length mismatch"
        );
        assert_eq!(
            measurements.len(),
            controls.len(),
            "measurement/control length mismatch"
        );
        assert_eq!(
            measurements.len(),
            residues.len(),
            "measurement/residue length mismatch"
        );
        assert!(
            states.len() == measurements.len() + 1
                || (states.is_empty() && measurements.is_empty()),
            "a T-step trace stores T+1 states and T measurements"
        );
        Self {
            states,
            estimates,
            measurements,
            controls,
            residues,
        }
    }

    /// Number of simulated steps `T`.
    pub fn len(&self) -> usize {
        self.measurements.len()
    }

    /// Returns `true` for an empty rollout.
    pub fn is_empty(&self) -> bool {
        self.measurements.is_empty()
    }

    /// Plant states `x_0 … x_T`.
    pub fn states(&self) -> &[Vector] {
        &self.states
    }

    /// Estimator states `x̂_0 … x̂_T`.
    pub fn estimates(&self) -> &[Vector] {
        &self.estimates
    }

    /// (Possibly attacked) measurements `ỹ_0 … ỹ_{T−1}` as seen by the estimator.
    pub fn measurements(&self) -> &[Vector] {
        &self.measurements
    }

    /// Control inputs `u_0 … u_{T−1}`.
    pub fn controls(&self) -> &[Vector] {
        &self.controls
    }

    /// Residue vectors `z_0 … z_{T−1}`.
    pub fn residues(&self) -> &[Vector] {
        &self.residues
    }

    /// Residue norms `‖z_k‖` under the chosen norm.
    pub fn residue_norms(&self, norm: ResidueNorm) -> Vec<f64> {
        self.residue_norms_iter(norm).collect()
    }

    /// Allocation-free variant of [`Trace::residue_norms`]: yields `‖z_k‖`
    /// for `k = 0 … T−1` without building a `Vec`.
    pub fn residue_norms_iter(&self, norm: ResidueNorm) -> impl Iterator<Item = f64> + '_ {
        self.residues.iter().map(move |z| norm.apply(z))
    }

    /// Deviation of each state from `target`, measured with `norm`.
    pub fn state_deviations(&self, target: &Vector, norm: ResidueNorm) -> Vec<f64> {
        self.state_deviations_iter(target, norm).collect()
    }

    /// Allocation-free variant of [`Trace::state_deviations`]: yields
    /// `‖x_k − target‖` for `k = 0 … T` without building a `Vec` or the
    /// per-state difference vectors.
    pub fn state_deviations_iter<'a>(
        &'a self,
        target: &'a Vector,
        norm: ResidueNorm,
    ) -> impl Iterator<Item = f64> + 'a {
        self.states.iter().map(move |x| norm.apply_diff(x, target))
    }

    /// The sampling instant with the largest residue norm, with the norm value
    /// (the "pivot" used by the synthesis algorithms). Returns `None` for an
    /// empty trace.
    pub fn max_residue_instant(&self, norm: ResidueNorm) -> Option<(usize, f64)> {
        self.residue_norms_iter(norm)
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("residue norms are finite"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> Trace {
        let states = vec![
            Vector::from_slice(&[0.0]),
            Vector::from_slice(&[1.0]),
            Vector::from_slice(&[2.0]),
        ];
        let estimates = states.clone();
        let measurements = vec![Vector::from_slice(&[0.1]), Vector::from_slice(&[1.1])];
        let controls = vec![Vector::from_slice(&[0.5]), Vector::from_slice(&[0.4])];
        let residues = vec![Vector::from_slice(&[0.1]), Vector::from_slice(&[-0.3])];
        Trace::new(states, estimates, measurements, controls, residues)
    }

    #[test]
    fn lengths_and_accessors() {
        let trace = sample_trace();
        assert_eq!(trace.len(), 2);
        assert!(!trace.is_empty());
        assert_eq!(trace.states().len(), 3);
        assert_eq!(trace.controls().len(), 2);
    }

    #[test]
    #[should_panic(expected = "T+1 states")]
    fn inconsistent_lengths_are_rejected() {
        let states = vec![Vector::zeros(1)];
        let estimates = vec![Vector::zeros(1)];
        let measurements = vec![Vector::zeros(1)];
        let controls = vec![Vector::zeros(1)];
        let residues = vec![Vector::zeros(1)];
        let _ = Trace::new(states, estimates, measurements, controls, residues);
    }

    #[test]
    fn residue_norms_and_max_instant() {
        let trace = sample_trace();
        let norms = trace.residue_norms(ResidueNorm::Linf);
        assert_eq!(norms, vec![0.1, 0.3]);
        assert_eq!(trace.max_residue_instant(ResidueNorm::Linf), Some((1, 0.3)));
    }

    #[test]
    fn norms_differ_as_expected() {
        let v = Vector::from_slice(&[3.0, -4.0]);
        assert_eq!(ResidueNorm::L1.apply(&v), 7.0);
        assert_eq!(ResidueNorm::L2.apply(&v), 5.0);
        assert_eq!(ResidueNorm::Linf.apply(&v), 4.0);
        assert_eq!(ResidueNorm::default(), ResidueNorm::Linf);
    }

    #[test]
    fn state_deviations_measure_distance_to_target() {
        let trace = sample_trace();
        let deviations = trace.state_deviations(&Vector::from_slice(&[2.0]), ResidueNorm::Linf);
        assert_eq!(deviations, vec![2.0, 1.0, 0.0]);
    }

    #[test]
    fn apply_diff_matches_allocating_difference_bit_for_bit() {
        let a = Vector::from_slice(&[1.25, -3.5, 0.75]);
        let b = Vector::from_slice(&[-0.5, 2.0, 0.75]);
        for norm in [ResidueNorm::L1, ResidueNorm::L2, ResidueNorm::Linf] {
            assert_eq!(
                norm.apply_diff(&a, &b).to_bits(),
                norm.apply(&(&a - &b)).to_bits()
            );
        }
    }

    #[test]
    fn iterator_variants_match_vec_variants() {
        let trace = sample_trace();
        let norm = ResidueNorm::L2;
        assert_eq!(
            trace.residue_norms_iter(norm).collect::<Vec<_>>(),
            trace.residue_norms(norm)
        );
        let target = Vector::from_slice(&[2.0]);
        assert_eq!(
            trace
                .state_deviations_iter(&target, norm)
                .collect::<Vec<_>>(),
            trace.state_deviations(&target, norm)
        );
    }

    #[test]
    fn empty_trace_is_supported() {
        let trace = Trace::default();
        assert!(trace.is_empty());
        assert_eq!(trace.max_residue_instant(ResidueNorm::L2), None);
    }
}
