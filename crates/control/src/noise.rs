use cps_linalg::{SplitMix64, Vector};

/// Independent zero-mean Gaussian process and measurement noise.
///
/// The paper's plant model uses `w_k ~ N(0, Q)` and `v_k ~ N(0, R)`; this
/// type keeps the per-component standard deviations (i.e. diagonal
/// covariances), which is what the evaluation section's "suitably small range"
/// noise amounts to.
///
/// # Example
///
/// ```
/// use cps_control::NoiseModel;
///
/// let noise = NoiseModel::uniform_std(2, 1, 0.01, 0.02);
/// let (w, v) = noise.sample(42, 0);
/// assert_eq!(w.len(), 2);
/// assert_eq!(v.len(), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct NoiseModel {
    process_std: Vec<f64>,
    measurement_std: Vec<f64>,
}

impl NoiseModel {
    /// Creates a noise model from per-component standard deviations.
    pub fn new(process_std: Vec<f64>, measurement_std: Vec<f64>) -> Self {
        Self {
            process_std,
            measurement_std,
        }
    }

    /// A noise-free model for a plant with `num_states` states and
    /// `num_outputs` outputs.
    pub fn none(num_states: usize, num_outputs: usize) -> Self {
        Self {
            process_std: vec![0.0; num_states],
            measurement_std: vec![0.0; num_outputs],
        }
    }

    /// A model with the same standard deviation for every state component and
    /// every measurement component.
    pub fn uniform_std(
        num_states: usize,
        num_outputs: usize,
        process_std: f64,
        measurement_std: f64,
    ) -> Self {
        Self {
            process_std: vec![process_std; num_states],
            measurement_std: vec![measurement_std; num_outputs],
        }
    }

    /// Returns `true` when both noise sources are identically zero.
    pub fn is_none(&self) -> bool {
        self.process_std.iter().all(|s| *s == 0.0) && self.measurement_std.iter().all(|s| *s == 0.0)
    }

    /// Per-component process-noise standard deviations.
    pub fn process_std(&self) -> &[f64] {
        &self.process_std
    }

    /// Per-component measurement-noise standard deviations.
    pub fn measurement_std(&self) -> &[f64] {
        &self.measurement_std
    }

    /// Samples `(w_k, v_k)` for sampling instant `step` of the rollout with
    /// the given `seed`. The same `(seed, step)` pair always produces the same
    /// noise, which keeps simulations reproducible and lets paired experiments
    /// (with and without attack) share a noise realisation.
    pub fn sample(&self, seed: u64, step: usize) -> (Vector, Vector) {
        let mut w = Vector::zeros(self.process_std.len());
        let mut v = Vector::zeros(self.measurement_std.len());
        self.sample_into(seed, step, &mut w, &mut v);
        (w, v)
    }

    /// [`NoiseModel::sample`] written into caller-provided vectors, resizing
    /// them if needed — allocation-free in steady state and bit-identical to
    /// the allocating form (same RNG stream, same draw order: all process
    /// components first, then all measurement components).
    pub fn sample_into(&self, seed: u64, step: usize, w: &mut Vector, v: &mut Vector) {
        // Avalanche-mix the step before combining with the seed. A linear mix
        // (`step * G`) is NOT enough: G is also SplitMix64's state increment,
        // so per-step states would lie on the same additive orbit and nearby
        // steps would replay shifted copies of each other's stream.
        let step_mix = SplitMix64::new(step as u64).next_u64();
        let mut rng = SplitMix64::new(seed ^ step_mix);
        w.resize_zeroed(self.process_std.len());
        for (slot, std) in w.as_mut_slice().iter_mut().zip(&self.process_std) {
            *slot = gaussian(&mut rng) * std;
        }
        v.resize_zeroed(self.measurement_std.len());
        for (slot, std) in v.as_mut_slice().iter_mut().zip(&self.measurement_std) {
            *slot = gaussian(&mut rng) * std;
        }
    }
}

/// Standard normal sample via the Box–Muller transform (avoids a dependency on
/// `rand_distr`, which is not in the sanctioned crate set).
fn gaussian(rng: &mut SplitMix64) -> f64 {
    let u1: f64 = rng.next_f64().max(f64::EPSILON);
    let u2: f64 = rng.next_f64();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_model_produces_zero_noise() {
        let noise = NoiseModel::none(3, 2);
        assert!(noise.is_none());
        let (w, v) = noise.sample(1, 5);
        assert_eq!(w.as_slice(), &[0.0, 0.0, 0.0]);
        assert_eq!(v.as_slice(), &[0.0, 0.0]);
    }

    #[test]
    fn sampling_is_deterministic_per_seed_and_step() {
        let noise = NoiseModel::uniform_std(2, 1, 0.1, 0.2);
        let (w1, v1) = noise.sample(7, 3);
        let (w2, v2) = noise.sample(7, 3);
        assert_eq!(w1, w2);
        assert_eq!(v1, v2);
        let (w3, _) = noise.sample(7, 4);
        assert_ne!(w1, w3, "different steps should give different noise");
        let (w4, _) = noise.sample(8, 3);
        assert_ne!(w1, w4, "different seeds should give different noise");
    }

    #[test]
    fn sample_statistics_are_plausible() {
        let noise = NoiseModel::uniform_std(1, 1, 1.0, 0.0);
        let n = 4000;
        let mut sum = 0.0;
        let mut sum_sq = 0.0;
        for step in 0..n {
            let (w, _) = noise.sample(123, step);
            sum += w[0];
            sum_sq += w[0] * w[0];
        }
        let mean = sum / n as f64;
        let var = sum_sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.1, "sample mean {mean} too far from zero");
        assert!(
            (var - 1.0).abs() < 0.15,
            "sample variance {var} too far from one"
        );
    }

    #[test]
    fn per_step_streams_do_not_replay_each_other() {
        // Regression: with a linear `seed ^ step * G` reseed the raw stream of
        // step k+2 was an exact 2-draw-shifted copy of step k's stream (always
        // for seed 1, ~5 % of (seed, step) pairs in general), so gaussian i+1
        // of step k reappeared verbatim as gaussian i of step k+2.
        let noise = NoiseModel::uniform_std(2, 1, 1.0, 1.0);
        for seed in [0, 1, 2, 123] {
            for step in 0..40 {
                let (w, _) = noise.sample(seed, step);
                let (w_next, _) = noise.sample(seed, step + 2);
                assert_ne!(
                    w[1], w_next[0],
                    "seed {seed} step {step}: shifted stream replay"
                );
            }
        }
    }

    #[test]
    fn sample_into_matches_sample_bit_for_bit() {
        let noise = NoiseModel::uniform_std(3, 2, 0.1, 0.2);
        let mut w = Vector::zeros(0);
        let mut v = Vector::zeros(0);
        for seed in [0, 7, 42] {
            for step in 0..20 {
                let (w_ref, v_ref) = noise.sample(seed, step);
                noise.sample_into(seed, step, &mut w, &mut v);
                assert_eq!(w, w_ref);
                assert_eq!(v, v_ref);
            }
        }
    }

    #[test]
    fn accessors_expose_stds() {
        let noise = NoiseModel::new(vec![0.1, 0.2], vec![0.3]);
        assert_eq!(noise.process_std(), &[0.1, 0.2]);
        assert_eq!(noise.measurement_std(), &[0.3]);
        assert!(!noise.is_none());
    }
}
