use cps_linalg::{expm, Matrix, Vector};

use crate::ControlError;

/// A discrete-time linear time-invariant plant
/// `x_{k+1} = A·x_k + B·u_k`, `y_k = C·x_k + D·u_k`.
///
/// # Example
///
/// ```
/// use cps_control::StateSpace;
/// use cps_linalg::{Matrix, Vector};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let sys = StateSpace::new(
///     Matrix::from_diag(&[0.9]),
///     Matrix::from_diag(&[1.0]),
///     Matrix::from_diag(&[1.0]),
///     Matrix::zeros(1, 1),
/// )?;
/// let next = sys.step(&Vector::from_slice(&[2.0]), &Vector::from_slice(&[0.5]));
/// assert!((next[0] - 2.3).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct StateSpace {
    a: Matrix,
    b: Matrix,
    c: Matrix,
    d: Matrix,
}

impl StateSpace {
    /// Creates a discrete-time plant from its four matrices.
    ///
    /// # Errors
    ///
    /// Returns [`ControlError::DimensionMismatch`] if the matrices are not
    /// conformable (`A` must be `n×n`, `B` `n×m`, `C` `p×n`, `D` `p×m`) and
    /// [`ControlError::NonFinite`] if any entry is NaN or infinite.
    pub fn new(a: Matrix, b: Matrix, c: Matrix, d: Matrix) -> Result<Self, ControlError> {
        for (name, m) in [("A", &a), ("B", &b), ("C", &c), ("D", &d)] {
            crate::require_finite(name, m)?;
        }
        if !a.is_square() {
            return Err(ControlError::DimensionMismatch(format!(
                "A must be square, got {}x{}",
                a.rows(),
                a.cols()
            )));
        }
        let n = a.rows();
        if b.rows() != n {
            return Err(ControlError::DimensionMismatch(format!(
                "B must have {n} rows, got {}",
                b.rows()
            )));
        }
        if c.cols() != n {
            return Err(ControlError::DimensionMismatch(format!(
                "C must have {n} columns, got {}",
                c.cols()
            )));
        }
        if d.rows() != c.rows() || d.cols() != b.cols() {
            return Err(ControlError::DimensionMismatch(format!(
                "D must be {}x{}, got {}x{}",
                c.rows(),
                b.cols(),
                d.rows(),
                d.cols()
            )));
        }
        Ok(Self { a, b, c, d })
    }

    /// Number of state variables.
    pub fn num_states(&self) -> usize {
        self.a.rows()
    }

    /// Number of control inputs.
    pub fn num_inputs(&self) -> usize {
        self.b.cols()
    }

    /// Number of measured outputs.
    pub fn num_outputs(&self) -> usize {
        self.c.rows()
    }

    /// State transition matrix `A`.
    pub fn a(&self) -> &Matrix {
        &self.a
    }

    /// Input map `B`.
    pub fn b(&self) -> &Matrix {
        &self.b
    }

    /// Output map `C`.
    pub fn c(&self) -> &Matrix {
        &self.c
    }

    /// Feed-through matrix `D`.
    pub fn d(&self) -> &Matrix {
        &self.d
    }

    /// One noiseless state update `A·x + B·u`.
    ///
    /// # Panics
    ///
    /// Panics if `x` or `u` have the wrong length.
    pub fn step(&self, x: &Vector, u: &Vector) -> Vector {
        &self.a.mul_vec(x) + &self.b.mul_vec(u)
    }

    /// [`StateSpace::step`] written into `out` without allocating once `out`
    /// has length `n`. Each entry is `(A·x)_i + (B·u)_i` with both dot
    /// products fully reduced first, so the result is bit-identical to the
    /// allocating form.
    ///
    /// # Panics
    ///
    /// Panics if `x` or `u` have the wrong length.
    pub fn step_into(&self, x: &Vector, u: &Vector, out: &mut Vector) {
        self.a.mul_vec_into(x, out);
        self.b.mul_vec_add_into(u, out);
    }

    /// Noiseless output `C·x + D·u`.
    ///
    /// # Panics
    ///
    /// Panics if `x` or `u` have the wrong length.
    pub fn output(&self, x: &Vector, u: &Vector) -> Vector {
        &self.c.mul_vec(x) + &self.d.mul_vec(u)
    }

    /// [`StateSpace::output`] written into `out` without allocating once
    /// `out` has length `p`; bit-identical to the allocating form (same
    /// argument as [`StateSpace::step_into`]).
    ///
    /// # Panics
    ///
    /// Panics if `x` or `u` have the wrong length.
    pub fn output_into(&self, x: &Vector, u: &Vector, out: &mut Vector) {
        self.c.mul_vec_into(x, out);
        self.d.mul_vec_add_into(u, out);
    }

    /// Estimated spectral radius of `A` (power iteration); values below one
    /// indicate an open-loop stable plant.
    pub fn spectral_radius(&self) -> f64 {
        self.a
            .spectral_radius_estimate(200)
            .expect("A is square by construction")
    }
}

/// A continuous-time LTI plant `ẋ = A·x + B·u`, `y = C·x + D·u`, convertible
/// to a discrete [`StateSpace`] by zero-order-hold sampling.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ContinuousStateSpace {
    a: Matrix,
    b: Matrix,
    c: Matrix,
    d: Matrix,
}

impl ContinuousStateSpace {
    /// Creates a continuous-time plant (same dimension rules as
    /// [`StateSpace::new`]).
    ///
    /// # Errors
    ///
    /// Returns [`ControlError::DimensionMismatch`] for non-conformable inputs.
    pub fn new(a: Matrix, b: Matrix, c: Matrix, d: Matrix) -> Result<Self, ControlError> {
        // Reuse the discrete constructor's validation.
        let checked = StateSpace::new(a, b, c, d)?;
        Ok(Self {
            a: checked.a,
            b: checked.b,
            c: checked.c,
            d: checked.d,
        })
    }

    /// Continuous-time state matrix `A`.
    pub fn a(&self) -> &Matrix {
        &self.a
    }

    /// Continuous-time input map `B`.
    pub fn b(&self) -> &Matrix {
        &self.b
    }

    /// Output map `C` (unchanged by discretisation).
    pub fn c(&self) -> &Matrix {
        &self.c
    }

    /// Feed-through matrix `D` (unchanged by discretisation).
    pub fn d(&self) -> &Matrix {
        &self.d
    }

    /// Discretises the plant with a zero-order hold at sampling period `ts`
    /// seconds using the standard augmented-matrix exponential
    /// `exp([[A, B], [0, 0]]·ts) = [[A_d, B_d], [0, I]]`.
    ///
    /// # Errors
    ///
    /// Propagates numerical failures from the matrix exponential.
    pub fn discretize(&self, ts: f64) -> Result<StateSpace, ControlError> {
        let n = self.a.rows();
        let m = self.b.cols();
        let top = self.a.hstack(&self.b)?;
        let bottom = Matrix::zeros(m, n + m);
        let augmented = top.vstack(&bottom)?.scale(ts);
        let phi = expm(&augmented)?;
        let mut a_d = Matrix::zeros(n, n);
        let mut b_d = Matrix::zeros(n, m);
        for i in 0..n {
            for j in 0..n {
                a_d[(i, j)] = phi[(i, j)];
            }
            for j in 0..m {
                b_d[(i, j)] = phi[(i, n + j)];
            }
        }
        Ok(StateSpace {
            a: a_d,
            b: b_d,
            c: self.c.clone(),
            d: self.d.clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cps_linalg::approx_eq;

    #[test]
    fn constructor_validates_dimensions() {
        let a = Matrix::identity(2);
        let b = Matrix::zeros(2, 1);
        let c = Matrix::zeros(1, 2);
        let d = Matrix::zeros(1, 1);
        assert!(StateSpace::new(a.clone(), b.clone(), c.clone(), d.clone()).is_ok());
        assert!(StateSpace::new(Matrix::zeros(2, 3), b.clone(), c.clone(), d.clone()).is_err());
        assert!(StateSpace::new(a.clone(), Matrix::zeros(3, 1), c.clone(), d.clone()).is_err());
        assert!(StateSpace::new(a.clone(), b.clone(), Matrix::zeros(1, 3), d.clone()).is_err());
        assert!(StateSpace::new(a, b, c, Matrix::zeros(2, 2)).is_err());
    }

    #[test]
    fn constructor_rejects_non_finite_entries() {
        let b = Matrix::zeros(2, 1);
        let c = Matrix::zeros(1, 2);
        let d = Matrix::zeros(1, 1);
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let a = Matrix::from_diag(&[1.0, bad]);
            assert!(matches!(
                StateSpace::new(a, b.clone(), c.clone(), d.clone()),
                Err(ControlError::NonFinite(_))
            ));
        }
    }

    #[test]
    fn dimensions_are_reported() {
        let sys = StateSpace::new(
            Matrix::identity(3),
            Matrix::zeros(3, 2),
            Matrix::zeros(4, 3),
            Matrix::zeros(4, 2),
        )
        .unwrap();
        assert_eq!(sys.num_states(), 3);
        assert_eq!(sys.num_inputs(), 2);
        assert_eq!(sys.num_outputs(), 4);
    }

    #[test]
    fn step_and_output_match_hand_computation() {
        let sys = StateSpace::new(
            Matrix::from_rows(&[&[1.0, 1.0], &[0.0, 1.0]]).unwrap(),
            Matrix::from_rows(&[&[0.5], &[1.0]]).unwrap(),
            Matrix::from_rows(&[&[1.0, 0.0]]).unwrap(),
            Matrix::from_diag(&[0.1]),
        )
        .unwrap();
        let x = Vector::from_slice(&[1.0, 2.0]);
        let u = Vector::from_slice(&[2.0]);
        assert_eq!(sys.step(&x, &u).as_slice(), &[4.0, 4.0]);
        let y = sys.output(&x, &u);
        assert!(approx_eq(y[0], 1.2, 1e-12));
    }

    #[test]
    fn discretization_of_integrator_matches_analytic_form() {
        // Continuous double integrator: A = [[0,1],[0,0]], B = [[0],[1]].
        // ZOH with period T: A_d = [[1,T],[0,1]], B_d = [[T²/2],[T]].
        let cont = ContinuousStateSpace::new(
            Matrix::from_rows(&[&[0.0, 1.0], &[0.0, 0.0]]).unwrap(),
            Matrix::from_rows(&[&[0.0], &[1.0]]).unwrap(),
            Matrix::from_rows(&[&[1.0, 0.0]]).unwrap(),
            Matrix::zeros(1, 1),
        )
        .unwrap();
        let ts = 0.1;
        let disc = cont.discretize(ts).unwrap();
        assert!(approx_eq(disc.a()[(0, 1)], ts, 1e-9));
        assert!(approx_eq(disc.b()[(0, 0)], ts * ts / 2.0, 1e-9));
        assert!(approx_eq(disc.b()[(1, 0)], ts, 1e-9));
        assert_eq!(disc.c(), cont.c());
    }

    #[test]
    fn discretization_of_stable_scalar_plant() {
        // ẋ = -x + u sampled at T: A_d = e^{-T}, B_d = 1 - e^{-T}.
        let cont = ContinuousStateSpace::new(
            Matrix::from_diag(&[-1.0]),
            Matrix::from_diag(&[1.0]),
            Matrix::from_diag(&[1.0]),
            Matrix::zeros(1, 1),
        )
        .unwrap();
        let ts = 0.5;
        let disc = cont.discretize(ts).unwrap();
        assert!(approx_eq(disc.a()[(0, 0)], (-ts).exp(), 1e-9));
        assert!(approx_eq(disc.b()[(0, 0)], 1.0 - (-ts).exp(), 1e-9));
    }

    #[test]
    fn spectral_radius_reflects_stability() {
        let stable = StateSpace::new(
            Matrix::from_diag(&[0.5, 0.8]),
            Matrix::zeros(2, 1),
            Matrix::zeros(1, 2),
            Matrix::zeros(1, 1),
        )
        .unwrap();
        assert!(stable.spectral_radius() < 1.0);
        let unstable = StateSpace::new(
            Matrix::from_diag(&[1.2, 0.3]),
            Matrix::zeros(2, 1),
            Matrix::zeros(1, 2),
            Matrix::zeros(1, 1),
        )
        .unwrap();
        assert!(unstable.spectral_radius() > 1.0);
    }
}
