//! LTI plants, estimators, controllers and closed-loop simulation with
//! sensor attacks.
//!
//! Paper mapping: §II of *Koley et al. (DATE 2020)* — the system model, the
//! false-data-injection attack model and the residue signal that the
//! detectors of later sections threshold.
//!
//! The crate models the control-loop structure assumed by the paper:
//!
//! ```text
//! x_{k+1} = A·x_k + B·u_k + w_k          (plant)
//! y_k     = C·x_k + D·u_k + v_k          (sensors)
//! ỹ_k     = y_k + a_k                    (false-data injection)
//! z_k     = ỹ_k − C·x̂_k − D·u_k          (residue)
//! x̂_{k+1} = A·x̂_k + B·u_k + L·z_k        (Kalman-filter estimator)
//! u_k     = u_eq − K·(x̂_k − x_des)       (state-feedback controller)
//! ```
//!
//! - [`StateSpace`] / [`ContinuousStateSpace`] — plant models and zero-order-
//!   hold discretisation,
//! - [`kalman_gain`] / [`lqr_gain`] — steady-state estimator and controller
//!   design via the DARE solver from [`cps_linalg`],
//! - [`ClosedLoop`] — the assembled loop, with [`ClosedLoop::simulate`]
//!   producing a [`Trace`] under configurable noise and sensor attacks, and
//!   [`ClosedLoop::simulate_into`] streaming [`StepRecord`]s through reusable
//!   [`StepBuffers`] for allocation-free evaluation hot loops,
//! - [`SensorAttack`] — additive false-data injection sequences,
//! - [`NoiseModel`] — independent Gaussian process/measurement noise,
//! - [`ResidueNorm`] — the norm applied to residue vectors by detectors.
//!
//! # Example
//!
//! ```
//! use cps_control::{ClosedLoop, NoiseModel, Reference, StateSpace};
//! use cps_linalg::{Matrix, Vector};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Double integrator with position measurement.
//! let plant = StateSpace::new(
//!     Matrix::from_rows(&[&[1.0, 0.1], &[0.0, 1.0]])?,
//!     Matrix::from_rows(&[&[0.005], &[0.1]])?,
//!     Matrix::from_rows(&[&[1.0, 0.0]])?,
//!     Matrix::zeros(1, 1),
//! )?;
//! let k = cps_control::lqr_gain(&plant, &Matrix::identity(2), &Matrix::from_diag(&[1.0]))?;
//! let l = cps_control::kalman_gain(
//!     &plant,
//!     &Matrix::identity(2).scale(1e-4),
//!     &Matrix::from_diag(&[1e-4]),
//! )?;
//! let closed_loop = ClosedLoop::new(plant, k, l)?.with_reference(Reference::state_target(
//!     Vector::from_slice(&[1.0, 0.0]),
//! ));
//! let trace = closed_loop.simulate(&Vector::zeros(2), 100, &NoiseModel::none(2, 1), None, 0);
//! assert!((trace.states().last().unwrap()[0] - 1.0).abs() < 0.05);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod closed_loop;
mod design;
mod error;
mod noise;
mod state_space;
mod trace;

pub use closed_loop::{ClosedLoop, Reference, SensorAttack, StepBuffers, StepRecord};
pub use design::{kalman_gain, lqr_gain};
pub use error::ControlError;
pub use noise::NoiseModel;
pub use state_space::{ContinuousStateSpace, StateSpace};
pub use trace::{ResidueNorm, Trace};

/// Rejects matrices with NaN/infinite entries at construction boundaries, so
/// non-finite model data fails fast instead of reaching the SMT encoder.
pub(crate) fn require_finite(name: &str, m: &cps_linalg::Matrix) -> Result<(), ControlError> {
    match m.as_slice().iter().position(|v| !v.is_finite()) {
        Some(i) => Err(ControlError::NonFinite(format!(
            "{name} entry ({}, {}) is {}",
            i / m.cols().max(1),
            i % m.cols().max(1),
            m.as_slice()[i]
        ))),
        None => Ok(()),
    }
}
