use cps_linalg::{solve_dare, Matrix, RiccatiOptions};

use crate::{ControlError, StateSpace};

/// Designs the infinite-horizon discrete LQR gain `K` for the plant, i.e. the
/// gain minimising `Σ xᵀQx + uᵀRu` under `u_k = −K·x_k`.
///
/// # Errors
///
/// Returns [`ControlError::DimensionMismatch`] for non-conformable weights and
/// propagates Riccati-solver failures (e.g. unstabilisable plants) as
/// [`ControlError::Numerical`].
///
/// # Example
///
/// ```
/// use cps_control::{lqr_gain, StateSpace};
/// use cps_linalg::Matrix;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let plant = StateSpace::new(
///     Matrix::from_diag(&[1.1]),
///     Matrix::from_diag(&[1.0]),
///     Matrix::from_diag(&[1.0]),
///     Matrix::zeros(1, 1),
/// )?;
/// let k = lqr_gain(&plant, &Matrix::identity(1), &Matrix::identity(1))?;
/// // The closed loop A − B·K must be stable even though A is not.
/// assert!((plant.a()[(0, 0)] - k[(0, 0)]).abs() < 1.0);
/// # Ok(())
/// # }
/// ```
pub fn lqr_gain(plant: &StateSpace, q: &Matrix, r: &Matrix) -> Result<Matrix, ControlError> {
    let n = plant.num_states();
    let m = plant.num_inputs();
    if q.shape() != (n, n) {
        return Err(ControlError::DimensionMismatch(format!(
            "state cost Q must be {n}x{n}, got {}x{}",
            q.rows(),
            q.cols()
        )));
    }
    if r.shape() != (m, m) {
        return Err(ControlError::DimensionMismatch(format!(
            "input cost R must be {m}x{m}, got {}x{}",
            r.rows(),
            r.cols()
        )));
    }
    let p = solve_dare(plant.a(), plant.b(), q, r, RiccatiOptions::default())?;
    // K = (R + BᵀPB)⁻¹ BᵀPA
    let bt = plant.b().transpose();
    let btpb = bt.matmul(&p.matmul(plant.b())?)?;
    let btpa = bt.matmul(&p.matmul(plant.a())?)?;
    let gram = &btpb + r;
    Ok(gram.lu()?.solve_matrix(&btpa)?)
}

/// Designs the steady-state Kalman (predictor) gain `L` for the plant, where
/// `Q` is the process-noise covariance and `R` the measurement-noise
/// covariance. The estimator update is `x̂_{k+1} = A·x̂_k + B·u_k + L·z_k`.
///
/// # Errors
///
/// Returns [`ControlError::DimensionMismatch`] for non-conformable covariances
/// and propagates Riccati-solver failures as [`ControlError::Numerical`].
pub fn kalman_gain(plant: &StateSpace, q: &Matrix, r: &Matrix) -> Result<Matrix, ControlError> {
    let n = plant.num_states();
    let p_out = plant.num_outputs();
    if q.shape() != (n, n) {
        return Err(ControlError::DimensionMismatch(format!(
            "process noise covariance must be {n}x{n}, got {}x{}",
            q.rows(),
            q.cols()
        )));
    }
    if r.shape() != (p_out, p_out) {
        return Err(ControlError::DimensionMismatch(format!(
            "measurement noise covariance must be {p_out}x{p_out}, got {}x{}",
            r.rows(),
            r.cols()
        )));
    }
    // Duality: the estimation Riccati equation is the control DARE on (Aᵀ, Cᵀ).
    let p = solve_dare(
        &plant.a().transpose(),
        &plant.c().transpose(),
        q,
        r,
        RiccatiOptions::default(),
    )?;
    // L = A·P·Cᵀ (C·P·Cᵀ + R)⁻¹
    let pct = p.matmul(&plant.c().transpose())?;
    let innovation = &plant.c().matmul(&pct)? + r;
    let apct = plant.a().matmul(&pct)?;
    // Solve (C P Cᵀ + R)ᵀ Xᵀ = (A P Cᵀ)ᵀ, i.e. X = A P Cᵀ (C P Cᵀ + R)⁻¹.
    let solved = innovation
        .transpose()
        .lu()?
        .solve_matrix(&apct.transpose())?;
    Ok(solved.transpose())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cps_linalg::Vector;

    fn double_integrator() -> StateSpace {
        StateSpace::new(
            Matrix::from_rows(&[&[1.0, 0.1], &[0.0, 1.0]]).unwrap(),
            Matrix::from_rows(&[&[0.005], &[0.1]]).unwrap(),
            Matrix::from_rows(&[&[1.0, 0.0]]).unwrap(),
            Matrix::zeros(1, 1),
        )
        .unwrap()
    }

    #[test]
    fn lqr_stabilizes_double_integrator() {
        let plant = double_integrator();
        let k = lqr_gain(&plant, &Matrix::identity(2), &Matrix::from_diag(&[1.0])).unwrap();
        assert_eq!(k.shape(), (1, 2));
        let closed = plant.a() - &plant.b().matmul(&k).unwrap();
        assert!(
            closed.spectral_radius_estimate(500).unwrap() < 1.0,
            "closed loop must be stable"
        );
    }

    #[test]
    fn lqr_rejects_bad_weight_shapes() {
        let plant = double_integrator();
        assert!(lqr_gain(&plant, &Matrix::identity(3), &Matrix::identity(1)).is_err());
        assert!(lqr_gain(&plant, &Matrix::identity(2), &Matrix::identity(2)).is_err());
    }

    #[test]
    fn kalman_gain_produces_stable_estimator() {
        let plant = double_integrator();
        let l = kalman_gain(
            &plant,
            &Matrix::identity(2).scale(1e-3),
            &Matrix::from_diag(&[1e-2]),
        )
        .unwrap();
        assert_eq!(l.shape(), (2, 1));
        // Estimator error dynamics A − L·C must be stable.
        let error_dyn = plant.a() - &l.matmul(plant.c()).unwrap();
        assert!(error_dyn.spectral_radius_estimate(500).unwrap() < 1.0);
    }

    #[test]
    fn kalman_rejects_bad_covariance_shapes() {
        let plant = double_integrator();
        assert!(kalman_gain(&plant, &Matrix::identity(1), &Matrix::identity(1)).is_err());
        assert!(kalman_gain(&plant, &Matrix::identity(2), &Matrix::identity(2)).is_err());
    }

    #[test]
    fn estimator_converges_to_true_state_without_noise() {
        let plant = double_integrator();
        let l = kalman_gain(
            &plant,
            &Matrix::identity(2).scale(1e-3),
            &Matrix::from_diag(&[1e-2]),
        )
        .unwrap();
        // Run plant and estimator side by side with zero input and no noise.
        let mut x = Vector::from_slice(&[1.0, -0.5]);
        let mut xhat = Vector::zeros(2);
        let u = Vector::zeros(1);
        for _ in 0..300 {
            let y = plant.output(&x, &u);
            let yhat = plant.output(&xhat, &u);
            let z = &y - &yhat;
            xhat = &plant.step(&xhat, &u) + &l.mul_vec(&z);
            x = plant.step(&x, &u);
        }
        let error = (&x - &xhat).norm_l2();
        assert!(error < 1e-3, "estimator error {error} too large");
    }
}
