use cps_linalg::{Matrix, Vector};

use crate::{ControlError, NoiseModel, StateSpace, Trace};

/// Reusable per-step scratch vectors for [`ClosedLoop::simulate_into`].
///
/// A `StepBuffers` owns every intermediate of the closed-loop update (state,
/// estimate, control, noise, measurement, residue, next state/estimate). The
/// buffers are sized lazily on first use; once warm, a rollout performs zero
/// heap allocations for plants with at most [`cps_linalg::INLINE_CAP`]
/// states/inputs/outputs — and even larger plants allocate only on the first
/// rollout. Reuse one instance across rollouts (the FAR hot loop keeps one per
/// evaluation lane).
#[derive(Debug, Clone, Default)]
pub struct StepBuffers {
    x: Vector,
    xhat: Vector,
    err: Vector,
    u: Vector,
    w: Vector,
    v: Vector,
    y: Vector,
    y_hat: Vector,
    z: Vector,
    x_next: Vector,
    xhat_next: Vector,
}

impl StepBuffers {
    /// Creates empty buffers (sized lazily by the first rollout).
    pub fn new() -> Self {
        Self::default()
    }

    /// The current plant state `x_k` — after [`ClosedLoop::simulate_into`]
    /// returns, the final state `x_T` (or `x_k` of the stopping step when the
    /// observer ended the rollout early).
    pub fn state(&self) -> &Vector {
        &self.x
    }

    /// The current estimator state `x̂_k` (final estimate after a completed
    /// rollout).
    pub fn estimate(&self) -> &Vector {
        &self.xhat
    }
}

/// One streamed simulation step handed to the [`ClosedLoop::simulate_into`]
/// observer. All fields borrow from the caller's [`StepBuffers`] and are only
/// valid for the duration of the callback; clone what you need to keep.
#[derive(Debug)]
pub struct StepRecord<'a> {
    /// Sampling instant `k` (counting from zero).
    pub k: usize,
    /// Plant state `x_k` at the start of the step.
    pub state: &'a Vector,
    /// Estimator state `x̂_k` at the start of the step.
    pub estimate: &'a Vector,
    /// Control input `u_k`.
    pub control: &'a Vector,
    /// (Possibly attacked) measurement `ỹ_k` as seen by the estimator.
    pub measurement: &'a Vector,
    /// Residue `z_k = ỹ_k − ŷ_k`.
    pub residue: &'a Vector,
    /// Next plant state `x_{k+1}`.
    pub next_state: &'a Vector,
    /// Next estimator state `x̂_{k+1}`.
    pub next_estimate: &'a Vector,
}

/// Set-point of the closed loop: the state target `x_des` and the equilibrium
/// input `u_eq` around which the state-feedback law regulates,
/// `u_k = u_eq − K·(x̂_k − x_des)`.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Reference {
    x_des: Vector,
    u_eq: Vector,
}

impl Reference {
    /// Regulation to the origin with zero equilibrium input.
    pub fn origin(num_states: usize, num_inputs: usize) -> Self {
        Self {
            x_des: Vector::zeros(num_states),
            u_eq: Vector::zeros(num_inputs),
        }
    }

    /// A state target with zero equilibrium input (sufficient when the target
    /// is an equilibrium of the autonomous plant, e.g. integrator chains).
    pub fn state_target(x_des: Vector) -> Self {
        Self {
            x_des,
            u_eq: Vector::zeros(0),
        }
    }

    /// A state target together with an explicit equilibrium input.
    pub fn with_equilibrium_input(x_des: Vector, u_eq: Vector) -> Self {
        Self { x_des, u_eq }
    }

    /// The state target `x_des`.
    pub fn x_des(&self) -> &Vector {
        &self.x_des
    }

    /// The equilibrium input `u_eq`.
    pub fn u_eq(&self) -> &Vector {
        &self.u_eq
    }
}

/// An additive false-data-injection attack on the sensor measurements:
/// `ỹ_k = y_k + a_k` for `k = 0 … T−1`.
///
/// # Example
///
/// ```
/// use cps_control::SensorAttack;
/// use cps_linalg::Vector;
///
/// let attack = SensorAttack::new(vec![Vector::from_slice(&[0.0]), Vector::from_slice(&[0.5])]);
/// assert_eq!(attack.len(), 2);
/// assert_eq!(attack.injection(1)[0], 0.5);
/// assert_eq!(attack.injection(7).as_slice(), &[0.0]); // past the end: no injection
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SensorAttack {
    injections: Vec<Vector>,
}

impl SensorAttack {
    /// Creates an attack from the per-step injection vectors.
    pub fn new(injections: Vec<Vector>) -> Self {
        Self { injections }
    }

    /// An attack that injects nothing for `steps` steps on `num_outputs`
    /// sensors (useful as a baseline).
    pub fn zeros(steps: usize, num_outputs: usize) -> Self {
        Self {
            injections: vec![Vector::zeros(num_outputs); steps],
        }
    }

    /// Number of steps covered by the attack.
    pub fn len(&self) -> usize {
        self.injections.len()
    }

    /// Returns `true` when the attack covers no steps.
    pub fn is_empty(&self) -> bool {
        self.injections.is_empty()
    }

    /// The injection added at step `k`; steps beyond the recorded horizon
    /// inject nothing.
    pub fn injection(&self, k: usize) -> Vector {
        self.injections
            .get(k)
            .cloned()
            .unwrap_or_else(|| Vector::zeros(self.injections.first().map_or(0, Vector::len)))
    }

    /// Borrowed, allocation-free variant of [`SensorAttack::injection`]:
    /// `None` beyond the recorded horizon (where `injection` materialises a
    /// zero vector instead).
    pub fn injection_at(&self, k: usize) -> Option<&Vector> {
        self.injections.get(k)
    }

    /// All injection vectors.
    pub fn injections(&self) -> &[Vector] {
        &self.injections
    }

    /// Largest absolute injected value over all steps and sensors.
    pub fn max_magnitude(&self) -> f64 {
        self.injections
            .iter()
            .map(|a| a.norm_inf())
            .fold(0.0, f64::max)
    }
}

/// The assembled closed loop: plant, state-feedback gain `K`, estimator gain
/// `L` and reference.
///
/// [`ClosedLoop::simulate`] reproduces exactly the update order that the SMT
/// encoder in the `secure-cps` crate unrolls, so simulated residues and
/// symbolically derived residues agree (up to noise).
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ClosedLoop {
    plant: StateSpace,
    controller_gain: Matrix,
    estimator_gain: Matrix,
    reference: Reference,
}

impl ClosedLoop {
    /// Creates a closed loop from a plant and pre-designed gains.
    ///
    /// # Errors
    ///
    /// Returns [`ControlError::DimensionMismatch`] if `K` is not `m×n` or `L`
    /// is not `n×p` for an `n`-state, `m`-input, `p`-output plant, and
    /// [`ControlError::NonFinite`] if a gain entry is NaN or infinite.
    pub fn new(
        plant: StateSpace,
        controller_gain: Matrix,
        estimator_gain: Matrix,
    ) -> Result<Self, ControlError> {
        crate::require_finite("controller gain K", &controller_gain)?;
        crate::require_finite("estimator gain L", &estimator_gain)?;
        let (n, m, p) = (plant.num_states(), plant.num_inputs(), plant.num_outputs());
        if controller_gain.shape() != (m, n) {
            return Err(ControlError::DimensionMismatch(format!(
                "controller gain must be {m}x{n}, got {}x{}",
                controller_gain.rows(),
                controller_gain.cols()
            )));
        }
        if estimator_gain.shape() != (n, p) {
            return Err(ControlError::DimensionMismatch(format!(
                "estimator gain must be {n}x{p}, got {}x{}",
                estimator_gain.rows(),
                estimator_gain.cols()
            )));
        }
        let reference = Reference::origin(n, m);
        Ok(Self {
            plant,
            controller_gain,
            estimator_gain,
            reference,
        })
    }

    /// Replaces the reference (builder style).
    ///
    /// A reference created by [`Reference::state_target`] has an empty
    /// equilibrium input, which is expanded to the correct size here.
    pub fn with_reference(mut self, reference: Reference) -> Self {
        let u_eq = if reference.u_eq.is_empty() {
            Vector::zeros(self.plant.num_inputs())
        } else {
            reference.u_eq
        };
        self.reference = Reference {
            x_des: reference.x_des,
            u_eq,
        };
        self
    }

    /// The plant model.
    pub fn plant(&self) -> &StateSpace {
        &self.plant
    }

    /// The state-feedback gain `K`.
    pub fn controller_gain(&self) -> &Matrix {
        &self.controller_gain
    }

    /// The estimator gain `L`.
    pub fn estimator_gain(&self) -> &Matrix {
        &self.estimator_gain
    }

    /// The active reference.
    pub fn reference(&self) -> &Reference {
        &self.reference
    }

    /// The control law `u = u_eq − K·(x̂ − x_des)`.
    pub fn control_law(&self, estimate: &Vector) -> Vector {
        let error = estimate - self.reference.x_des();
        self.reference.u_eq() - &self.controller_gain.mul_vec(&error)
    }

    /// Simulates `steps` closed-loop iterations from `initial_state`.
    ///
    /// * `noise` — process/measurement noise model (use [`NoiseModel::none`]
    ///   for a deterministic rollout);
    /// * `attack` — optional false-data injection added to the measurements
    ///   before they reach the estimator;
    /// * `seed` — noise seed, making rollouts reproducible and allowing a
    ///   paired attacked/attack-free comparison on the same noise realisation.
    ///
    /// Implemented on top of [`ClosedLoop::simulate_into`]; the retired
    /// allocating loop survives as [`ClosedLoop::simulate_reference`] and the
    /// two are asserted bit-identical by the differential test suite.
    pub fn simulate(
        &self,
        initial_state: &Vector,
        steps: usize,
        noise: &NoiseModel,
        attack: Option<&SensorAttack>,
        seed: u64,
    ) -> Trace {
        let mut states = Vec::with_capacity(steps + 1);
        let mut estimates = Vec::with_capacity(steps + 1);
        let mut measurements = Vec::with_capacity(steps);
        let mut controls = Vec::with_capacity(steps);
        let mut residues = Vec::with_capacity(steps);

        states.push(initial_state.clone());
        estimates.push(Vector::zeros(self.plant.num_states()));

        let mut buffers = StepBuffers::new();
        self.simulate_into(
            initial_state,
            steps,
            noise,
            attack,
            seed,
            &mut buffers,
            |step| {
                measurements.push(step.measurement.clone());
                controls.push(step.control.clone());
                residues.push(step.residue.clone());
                states.push(step.next_state.clone());
                estimates.push(step.next_estimate.clone());
                true
            },
        );

        Trace::new(states, estimates, measurements, controls, residues)
    }

    /// Streaming rollout: runs the same closed-loop update as
    /// [`ClosedLoop::simulate`] but hands each step to `observe` instead of
    /// materialising a [`Trace`], reusing the caller's [`StepBuffers`] so a
    /// warm steady state performs zero heap allocations.
    ///
    /// `observe` receives a [`StepRecord`] borrowing the step's vectors and
    /// returns `true` to continue; returning `false` stops the rollout after
    /// the current step (the FAR engine stops a trial the moment its monitor
    /// alarm fires). Returns the number of executed steps.
    ///
    /// Every arithmetic operation happens in the same order and association
    /// as in [`ClosedLoop::simulate_reference`], so streamed quantities are
    /// bit-identical to the materialised trace.
    ///
    /// # Panics
    ///
    /// Panics if `initial_state` has the wrong dimension.
    pub fn simulate_into<F>(
        &self,
        initial_state: &Vector,
        steps: usize,
        noise: &NoiseModel,
        attack: Option<&SensorAttack>,
        seed: u64,
        buffers: &mut StepBuffers,
        mut observe: F,
    ) -> usize
    where
        F: FnMut(&StepRecord<'_>) -> bool,
    {
        let n = self.plant.num_states();
        assert_eq!(initial_state.len(), n, "initial state has wrong dimension");

        buffers.x.copy_from(initial_state);
        buffers.xhat.resize_zeroed(n);
        buffers.xhat.as_mut_slice().fill(0.0);

        for k in 0..steps {
            // u_k = u_eq − K·(x̂_k − x_des)
            buffers
                .err
                .assign_diff(&buffers.xhat, self.reference.x_des());
            self.controller_gain
                .mul_vec_into(&buffers.err, &mut buffers.u);
            buffers.u.rsub_from(self.reference.u_eq());

            noise.sample_into(seed, k, &mut buffers.w, &mut buffers.v);

            // Sensor measurement ỹ_k = C·x + D·u + v (+ attacker injection).
            self.plant
                .output_into(&buffers.x, &buffers.u, &mut buffers.y);
            buffers.y += &buffers.v;
            if let Some(injection) = attack.and_then(|a| a.injection_at(k)) {
                if !injection.is_empty() {
                    buffers.y += injection;
                }
            }
            self.plant
                .output_into(&buffers.xhat, &buffers.u, &mut buffers.y_hat);
            buffers.z.assign_diff(&buffers.y, &buffers.y_hat);

            // Plant and estimator updates (the estimator sees only ỹ via z).
            self.plant
                .step_into(&buffers.x, &buffers.u, &mut buffers.x_next);
            buffers.x_next += &buffers.w;
            self.plant
                .step_into(&buffers.xhat, &buffers.u, &mut buffers.xhat_next);
            self.estimator_gain
                .mul_vec_add_into(&buffers.z, &mut buffers.xhat_next);

            let keep_going = observe(&StepRecord {
                k,
                state: &buffers.x,
                estimate: &buffers.xhat,
                control: &buffers.u,
                measurement: &buffers.y,
                residue: &buffers.z,
                next_state: &buffers.x_next,
                next_estimate: &buffers.xhat_next,
            });

            std::mem::swap(&mut buffers.x, &mut buffers.x_next);
            std::mem::swap(&mut buffers.xhat, &mut buffers.xhat_next);

            if !keep_going {
                return k + 1;
            }
        }
        steps
    }

    /// The pre-streaming allocating rollout, kept verbatim as the
    /// differential baseline for [`ClosedLoop::simulate`] /
    /// [`ClosedLoop::simulate_into`]: the `streaming_runtime` test suite
    /// asserts the two produce bit-identical traces on every benchmark plant.
    pub fn simulate_reference(
        &self,
        initial_state: &Vector,
        steps: usize,
        noise: &NoiseModel,
        attack: Option<&SensorAttack>,
        seed: u64,
    ) -> Trace {
        let n = self.plant.num_states();
        assert_eq!(initial_state.len(), n, "initial state has wrong dimension");

        let mut states = Vec::with_capacity(steps + 1);
        let mut estimates = Vec::with_capacity(steps + 1);
        let mut measurements = Vec::with_capacity(steps);
        let mut controls = Vec::with_capacity(steps);
        let mut residues = Vec::with_capacity(steps);

        let mut x = initial_state.clone();
        let mut xhat = Vector::zeros(n);
        states.push(x.clone());
        estimates.push(xhat.clone());

        for k in 0..steps {
            let u = self.control_law(&xhat);
            let (w, v) = noise.sample(seed, k);

            // Sensor measurement, optionally falsified by the attacker.
            let mut y = &self.plant.output(&x, &u) + &v;
            if let Some(attack) = attack {
                let injection = attack.injection(k);
                if !injection.is_empty() {
                    y += &injection;
                }
            }
            let y_hat = self.plant.output(&xhat, &u);
            let z = &y - &y_hat;

            // Plant and estimator updates (the estimator sees only ỹ via z).
            let x_next = &self.plant.step(&x, &u) + &w;
            let xhat_next = &self.plant.step(&xhat, &u) + &self.estimator_gain.mul_vec(&z);

            measurements.push(y);
            controls.push(u);
            residues.push(z);
            states.push(x_next.clone());
            estimates.push(xhat_next.clone());
            x = x_next;
            xhat = xhat_next;
        }

        Trace::new(states, estimates, measurements, controls, residues)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{kalman_gain, lqr_gain, ResidueNorm};

    fn double_integrator_loop() -> ClosedLoop {
        let plant = StateSpace::new(
            Matrix::from_rows(&[&[1.0, 0.1], &[0.0, 1.0]]).unwrap(),
            Matrix::from_rows(&[&[0.005], &[0.1]]).unwrap(),
            Matrix::from_rows(&[&[1.0, 0.0]]).unwrap(),
            Matrix::zeros(1, 1),
        )
        .unwrap();
        let k = lqr_gain(&plant, &Matrix::identity(2), &Matrix::from_diag(&[1.0])).unwrap();
        let l = kalman_gain(
            &plant,
            &Matrix::identity(2).scale(1e-4),
            &Matrix::from_diag(&[1e-4]),
        )
        .unwrap();
        ClosedLoop::new(plant, k, l).unwrap()
    }

    #[test]
    fn constructor_validates_gain_shapes() {
        let plant = StateSpace::new(
            Matrix::identity(2),
            Matrix::zeros(2, 1),
            Matrix::zeros(1, 2),
            Matrix::zeros(1, 1),
        )
        .unwrap();
        assert!(ClosedLoop::new(plant.clone(), Matrix::zeros(2, 2), Matrix::zeros(2, 1)).is_err());
        assert!(ClosedLoop::new(plant.clone(), Matrix::zeros(1, 2), Matrix::zeros(1, 1)).is_err());
        assert!(ClosedLoop::new(plant, Matrix::zeros(1, 2), Matrix::zeros(2, 1)).is_ok());
    }

    #[test]
    fn regulation_to_origin_converges() {
        let closed_loop = double_integrator_loop();
        let trace = closed_loop.simulate(
            &Vector::from_slice(&[1.0, 0.0]),
            200,
            &NoiseModel::none(2, 1),
            None,
            0,
        );
        let final_state = trace.states().last().unwrap();
        assert!(
            final_state.norm_inf() < 0.05,
            "did not regulate: {final_state}"
        );
    }

    #[test]
    fn tracking_a_state_target_converges() {
        let closed_loop = double_integrator_loop()
            .with_reference(Reference::state_target(Vector::from_slice(&[2.0, 0.0])));
        let trace = closed_loop.simulate(&Vector::zeros(2), 300, &NoiseModel::none(2, 1), None, 0);
        let final_state = trace.states().last().unwrap();
        assert!(
            (final_state[0] - 2.0).abs() < 0.05,
            "did not track: {final_state}"
        );
    }

    #[test]
    fn residues_are_zero_without_noise_and_attack_from_known_state() {
        let closed_loop = double_integrator_loop();
        // Starting the plant at the estimator's initial value (origin) keeps
        // the residue identically zero in a noise-free, attack-free run.
        let trace = closed_loop.simulate(&Vector::zeros(2), 50, &NoiseModel::none(2, 1), None, 0);
        let max_residue = trace
            .residue_norms(ResidueNorm::Linf)
            .into_iter()
            .fold(0.0, f64::max);
        assert!(max_residue < 1e-12);
    }

    #[test]
    fn attack_increases_residues_and_perturbs_the_state() {
        let closed_loop = double_integrator_loop();
        let steps = 60;
        let attack = SensorAttack::new(
            (0..steps)
                .map(|k| Vector::from_slice(&[if k >= 10 { 0.5 } else { 0.0 }]))
                .collect(),
        );
        let clean =
            closed_loop.simulate(&Vector::zeros(2), steps, &NoiseModel::none(2, 1), None, 0);
        let attacked = closed_loop.simulate(
            &Vector::zeros(2),
            steps,
            &NoiseModel::none(2, 1),
            Some(&attack),
            0,
        );
        let clean_max = clean
            .residue_norms(ResidueNorm::Linf)
            .into_iter()
            .fold(0.0, f64::max);
        let attacked_max = attacked
            .residue_norms(ResidueNorm::Linf)
            .into_iter()
            .fold(0.0, f64::max);
        assert!(attacked_max > clean_max + 0.1);
        // The false data drives the physical state away from the origin.
        let clean_final = clean.states().last().unwrap().norm_inf();
        let attacked_final = attacked.states().last().unwrap().norm_inf();
        assert!(attacked_final > clean_final);
    }

    #[test]
    fn noise_produces_nonzero_but_bounded_residues() {
        let closed_loop = double_integrator_loop();
        let trace = closed_loop.simulate(
            &Vector::zeros(2),
            100,
            &NoiseModel::uniform_std(2, 1, 1e-4, 1e-3),
            None,
            42,
        );
        let norms = trace.residue_norms(ResidueNorm::Linf);
        assert!(norms.iter().any(|z| *z > 0.0));
        assert!(norms.iter().all(|z| *z < 0.1));
    }

    #[test]
    fn same_seed_gives_identical_rollout() {
        let closed_loop = double_integrator_loop();
        let noise = NoiseModel::uniform_std(2, 1, 1e-3, 1e-3);
        let a = closed_loop.simulate(&Vector::zeros(2), 30, &noise, None, 9);
        let b = closed_loop.simulate(&Vector::zeros(2), 30, &noise, None, 9);
        assert_eq!(a, b);
        let c = closed_loop.simulate(&Vector::zeros(2), 30, &noise, None, 10);
        assert_ne!(a, c);
    }

    #[test]
    fn streaming_simulate_matches_reference_bit_for_bit() {
        let closed_loop = double_integrator_loop();
        let noise = NoiseModel::uniform_std(2, 1, 1e-3, 1e-3);
        let steps = 40;
        let attack = SensorAttack::new(
            (0..20)
                .map(|k| Vector::from_slice(&[0.02 * k as f64]))
                .collect(),
        );
        for seed in [0, 7, 1234] {
            for attack in [None, Some(&attack)] {
                let streamed = closed_loop.simulate(
                    &Vector::from_slice(&[0.5, -0.25]),
                    steps,
                    &noise,
                    attack,
                    seed,
                );
                let reference = closed_loop.simulate_reference(
                    &Vector::from_slice(&[0.5, -0.25]),
                    steps,
                    &noise,
                    attack,
                    seed,
                );
                assert_eq!(streamed, reference);
            }
        }
    }

    #[test]
    fn simulate_into_observer_can_stop_early() {
        let closed_loop = double_integrator_loop();
        let noise = NoiseModel::uniform_std(2, 1, 1e-3, 1e-3);
        let mut buffers = StepBuffers::new();
        let mut seen = Vec::new();
        let executed = closed_loop.simulate_into(
            &Vector::zeros(2),
            50,
            &noise,
            None,
            3,
            &mut buffers,
            |step| {
                seen.push(step.residue.clone());
                step.k < 9
            },
        );
        assert_eq!(executed, 10);
        assert_eq!(seen.len(), 10);
        let reference = closed_loop.simulate_reference(&Vector::zeros(2), 50, &noise, None, 3);
        assert_eq!(seen.as_slice(), &reference.residues()[..10]);
        // After the early stop the buffers hold the state of the stopping step.
        assert_eq!(buffers.state(), &reference.states()[10]);
        assert_eq!(buffers.estimate(), &reference.estimates()[10]);
    }

    #[test]
    fn buffers_final_state_matches_trace_after_full_rollout() {
        let closed_loop = double_integrator_loop();
        let noise = NoiseModel::uniform_std(2, 1, 1e-4, 1e-3);
        let mut buffers = StepBuffers::new();
        let executed = closed_loop.simulate_into(
            &Vector::zeros(2),
            30,
            &noise,
            None,
            11,
            &mut buffers,
            |_| true,
        );
        assert_eq!(executed, 30);
        let trace = closed_loop.simulate_reference(&Vector::zeros(2), 30, &noise, None, 11);
        assert_eq!(buffers.state(), trace.states().last().unwrap());
        assert_eq!(buffers.estimate(), trace.estimates().last().unwrap());
    }

    #[test]
    fn attack_accessors() {
        let attack = SensorAttack::zeros(3, 2);
        assert_eq!(attack.len(), 3);
        assert!(!attack.is_empty());
        assert_eq!(attack.max_magnitude(), 0.0);
        assert_eq!(attack.injection(2).len(), 2);
        assert_eq!(attack.injections().len(), 3);
        assert_eq!(attack.injection_at(2), Some(&Vector::zeros(2)));
        assert_eq!(attack.injection_at(3), None);
    }
}
