//! Shared helpers for the figure/table regeneration benches.
//!
//! Each Criterion bench in `benches/` regenerates the data series of one
//! figure or table of the paper (printed to stdout as CSV-like rows) and then
//! times a representative kernel of that experiment. The printed series are
//! what `ARCHITECTURE.md` ("Experiments") records; the timings are secondary.
//!
//! Paper mapping: `fig1_trajectory` → Fig. 1a/1b (motivational example),
//! `fig2_vsc_attack` → Fig. 2 (VSC attack trace, §IV), `fig3_threshold_synthesis`
//! → Fig. 3 (synthesised variable thresholds), `far_comparison` → the §IV
//! false-alarm-rate table, `convergence` → the Algorithm 2 vs 3 round counts,
//! and `solver_ablation` → an SMT-vs-LP comparison beyond the paper.
//!
//! Run them with `cargo bench` (the offline `criterion` stand-in prints median
//! and min–max wall-clock times; see `crates/criterion_shim`).
//!
//! # Example
//!
//! ```
//! let config = cps_bench::bench_config();
//! // The bench configuration trades tight convergence for CEGIS round counts
//! // in the tens, so a full synthesis run stays bench-friendly.
//! assert!(config.convergence_margin >= 0.25);
//! let benchmark = cps_bench::synthesis_benchmark();
//! assert_eq!(benchmark.name, "trajectory-tracking");
//! ```

use cps_models::Benchmark;
use secure_cps::{AttackSynthesizer, MonitorEncoding, PartialThreshold, SynthesisConfig};

/// Synthesis configuration used by the benches: exact dead-zone semantics for
/// small horizons, with a convergence margin that keeps CEGIS round counts in
/// the tens.
pub fn bench_config() -> SynthesisConfig {
    SynthesisConfig {
        convergence_margin: 0.25,
        ..SynthesisConfig::default()
    }
}

/// Synthesis configuration for full-horizon VSC queries under the **exact**
/// dead-zone semantics, encoded with the `O(T·k)` sequential-counter
/// construction (`MonitorEncoding::Exact`). Since PR 2 the incremental
/// theory core decides the paper's 50-sample query in seconds.
pub fn vsc_exact_config() -> SynthesisConfig {
    SynthesisConfig {
        convergence_margin: 0.25,
        ..SynthesisConfig::default()
    }
}

/// Synthesis configuration for full-horizon VSC queries with the conjunctive
/// monitor under-approximation (see `MonitorEncoding::ConjunctiveAfter`) —
/// kept for comparison against [`vsc_exact_config`].
pub fn vsc_scale_config() -> SynthesisConfig {
    SynthesisConfig {
        monitor_encoding: MonitorEncoding::ConjunctiveAfter(5),
        convergence_margin: 0.1,
        ..SynthesisConfig::default()
    }
}

/// The benchmark used for the synthesis-pipeline experiments (E6–E8). The
/// paper uses the VSC; the bundled DPLL(T) solver cannot decide the exact
/// dead-zone encoding of a monitor-equipped benchmark at a 40–50 sample
/// horizon within a bench-friendly budget (the paper itself allots 12 hours
/// per Z3 call), so the CEGIS pipeline is exercised end-to-end on the
/// trajectory-tracking benchmark and the VSC is used for the
/// attack-demonstration experiments (E3–E5). See `ARCHITECTURE.md` ("Experiments") for the
/// fidelity discussion.
pub fn synthesis_benchmark() -> Benchmark {
    cps_models::trajectory_tracking().expect("benchmark builds")
}

/// Reproduces round 1 of `PivotSynthesizer::run` for a prepared Algorithm 1
/// instance: the undefended counterexample's residue pivot, shrunk by the
/// convergence margin, becomes the first installed threshold. This is the
/// query shape of every CEGIS certificate round; the `unsat_certificate` and
/// `solver_ablation` benches share it so they keep timing the same query.
///
/// # Panics
///
/// Panics if the undefended query errors or comes back UNSAT (the benches
/// only call this on attackable benchmarks).
pub fn first_round_threshold(synth: &AttackSynthesizer<'_>) -> PartialThreshold {
    let attack = synth
        .synthesize(None)
        .expect("query decided")
        .expect("the undefended benchmark is attackable");
    let (pivot, value) = attack.pivot();
    let mut th: PartialThreshold = vec![None; synth.horizon()];
    th[pivot] = Some((value * (1.0 - synth.config().convergence_margin)).max(1e-6));
    th
}

/// Prints one CSV row with a label prefix so bench output can be grepped.
pub fn print_row(figure: &str, row: &str) {
    println!("[{figure}] {row}");
}
