//! E3/E4/E5 — Fig. 2a/2b/2c: stealthy attack on the VSC that bypasses the
//! stock range/gradient/relation monitors.
//!
//! The exact dead-zone encoding is used at a reduced horizon (the bundled
//! DPLL(T) solver is exponential in the number of dead-zone windows); the
//! full 50-sample horizon is exercised with the conjunctive monitor
//! under-approximation, which certifies that monitor-respecting attackers
//! cannot defeat the loop at that scale.

use cps_bench::{bench_config, print_row, vsc_scale_config};
use criterion::{criterion_group, criterion_main, Criterion};
use secure_cps::{AttackSynthesizer, SynthesisConfig};

const VX: f64 = 15.0;
const REDUCED_HORIZON: usize = 10;

fn regenerate() {
    let benchmark = cps_models::vsc().expect("model builds");

    // Reduced-horizon exact query: the attack of Fig. 2.
    let config = SynthesisConfig {
        horizon_override: Some(REDUCED_HORIZON),
        ..bench_config()
    };
    let synthesizer = AttackSynthesizer::new(&benchmark, config);
    match synthesizer.synthesize(None).expect("query decided") {
        Some(attack) => {
            let trace = &attack.trace;
            let alarmed = benchmark.monitors.evaluate(trace.measurements()).alarmed();
            print_row(
                "fig2",
                &format!(
                    "exact encoding, T={REDUCED_HORIZON}: stealthy attack found (monitors alarmed: {alarmed})"
                ),
            );
            print_row(
                "fig2",
                "k, true_gamma, measured_gamma, measured_ay, gamma_est_from_ay, residue_norm",
            );
            for k in 0..trace.len() {
                let x = &trace.states()[k];
                let y = &trace.measurements()[k];
                print_row(
                    "fig2",
                    &format!(
                        "{k}, {:.4}, {:.4}, {:.4}, {:.4}, {:.4}",
                        x[1],
                        y[0],
                        y[1],
                        y[1] / VX,
                        attack.residue_norms[k]
                    ),
                );
            }
        }
        None => print_row(
            "fig2",
            "exact encoding: no stealthy attack at the reduced horizon",
        ),
    }

    // Full-horizon conjunctive query (certificate for dead-zone-free attackers).
    let full = AttackSynthesizer::new(&benchmark, vsc_scale_config());
    let outcome = full.synthesize(None).expect("query decided");
    print_row(
        "fig2",
        &format!(
            "conjunctive encoding, T={}: stealthy attack exists = {}",
            benchmark.horizon,
            outcome.is_some()
        ),
    );
}

fn bench(c: &mut Criterion) {
    regenerate();
    let benchmark = cps_models::vsc().expect("model builds");
    let config = SynthesisConfig {
        horizon_override: Some(REDUCED_HORIZON),
        ..bench_config()
    };
    let synthesizer = AttackSynthesizer::new(&benchmark, config);
    let mut group = c.benchmark_group("fig2_vsc_attack");
    group.sample_size(10);
    group.bench_function("vsc_attack_synthesis_exact_reduced_horizon", |b| {
        b.iter(|| synthesizer.synthesize(None).expect("query decided"))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
