//! E3/E4/E5 — Fig. 2a/2b/2c: stealthy attack on the VSC that bypasses the
//! stock range/gradient/relation monitors.
//!
//! Since PR 2 the exact dead-zone semantics is encoded with the `O(T·k)`
//! sequential-counter construction and decided by the incremental sparse
//! DPLL(T) core, so the paper's **full 50-sample horizon** runs to completion
//! here (the paper allots 12 hours per Z3 call for the same query). The
//! reduced-horizon query and the conjunctive under-approximation are kept for
//! comparison with the PR-1 numbers.

use cps_bench::{bench_config, print_row, vsc_exact_config, vsc_scale_config};
use criterion::{criterion_group, criterion_main, Criterion};
use secure_cps::{AttackSynthesizer, SynthesisConfig};

const VX: f64 = 15.0;
const REDUCED_HORIZON: usize = 10;

fn regenerate() {
    let benchmark = cps_models::vsc().expect("model builds");

    // Full-horizon exact query: the paper's Fig. 2 attack, T = 50.
    let full_exact = AttackSynthesizer::new(&benchmark, vsc_exact_config());
    match full_exact.synthesize(None).expect("query decided") {
        Some(attack) => {
            let trace = &attack.trace;
            let alarmed = benchmark.monitors.evaluate(trace.measurements()).alarmed();
            let verified = full_exact.verify_attack(&attack, None);
            print_row(
                "fig2",
                &format!(
                    "exact encoding, T={}: stealthy attack found (monitors alarmed: {alarmed}, \
                     verified: {verified})",
                    benchmark.horizon
                ),
            );
            print_row(
                "fig2",
                "k, true_gamma, measured_gamma, measured_ay, gamma_est_from_ay, residue_norm",
            );
            for k in 0..trace.len() {
                let x = &trace.states()[k];
                let y = &trace.measurements()[k];
                print_row(
                    "fig2",
                    &format!(
                        "{k}, {:.4}, {:.4}, {:.4}, {:.4}, {:.4}",
                        x[1],
                        y[0],
                        y[1],
                        y[1] / VX,
                        attack.residue_norms[k]
                    ),
                );
            }
        }
        None => print_row(
            "fig2",
            "exact encoding: no stealthy attack at the full horizon",
        ),
    }
    let stats = full_exact.last_solver_stats();
    print_row(
        "fig2",
        &format!(
            "exact T=50 solver stats: decisions={}, conflicts={}, theory_checks={}, pivots={}, \
             simplex_time={:?}",
            stats.decisions,
            stats.conflicts,
            stats.theory_checks,
            stats.pivots,
            stats.simplex_time()
        ),
    );

    // Reduced-horizon exact query (the PR-1 operating point).
    let config = SynthesisConfig {
        horizon_override: Some(REDUCED_HORIZON),
        ..bench_config()
    };
    let reduced = AttackSynthesizer::new(&benchmark, config);
    let outcome = reduced.synthesize(None).expect("query decided");
    print_row(
        "fig2",
        &format!(
            "exact encoding, T={REDUCED_HORIZON}: stealthy attack exists = {}",
            outcome.is_some()
        ),
    );

    // Conjunctive under-approximation (certificate for dead-zone-free attackers).
    let conjunctive = AttackSynthesizer::new(&benchmark, vsc_scale_config());
    let outcome = conjunctive.synthesize(None).expect("query decided");
    print_row(
        "fig2",
        &format!(
            "conjunctive encoding, T={}: stealthy attack exists = {}",
            benchmark.horizon,
            outcome.is_some()
        ),
    );
}

fn bench(c: &mut Criterion) {
    regenerate();
    let benchmark = cps_models::vsc().expect("model builds");
    let config = SynthesisConfig {
        horizon_override: Some(REDUCED_HORIZON),
        ..bench_config()
    };
    let reduced = AttackSynthesizer::new(&benchmark, config);
    let full = AttackSynthesizer::new(&benchmark, vsc_exact_config());
    let mut group = c.benchmark_group("fig2_vsc_attack");
    group.sample_size(10);
    group.bench_function("vsc_attack_synthesis_exact_reduced_horizon", |b| {
        b.iter(|| reduced.synthesize(None).expect("query decided"))
    });
    group.sample_size(3);
    group.bench_function("vsc_attack_synthesis_exact_full_horizon", |b| {
        b.iter(|| full.synthesize(None).expect("query decided"))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
