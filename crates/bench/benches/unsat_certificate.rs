//! UNSAT certificates at the paper's scale: one threshold-constrained
//! `PivotSynthesizer` round on the VSC at the **full 50-sample horizon**.
//!
//! This is the query that gates the paper's CEGIS loop (Algorithm 2, line 6):
//! after the first counterexample installs a threshold at its residue pivot,
//! the next Algorithm 1 call must either produce a new stealthy attack or
//! certify that none remains. PR 2 made the unconstrained (SAT) side of the
//! T=50 query decide in seconds, but the threshold-constrained round blew
//! past 8 minutes; the conflict-generalising theory engine (bound
//! propagation + implication-graph explanations + violation queue) is what
//! makes it tractable. The bench prints the verdict, verifies it (a found
//! attack must re-verify under exact runtime semantics; an UNSAT certificate
//! is cross-checked by the solver's explanation validation), and reports the
//! new `SolverStats` counters so the conflict-generalisation quality is
//! visible alongside the wall-clock number.

use std::time::Instant;

use cps_bench::{first_round_threshold, print_row, vsc_exact_config};
use cps_smt::SolverStats;
use criterion::{criterion_group, criterion_main, Criterion};
use secure_cps::{AttackSynthesizer, PartialThreshold};

fn stats_row(label: &str, stats: SolverStats) {
    print_row(
        "unsat_certificate",
        &format!(
            "{label}: decisions={}, conflicts={}, theory_checks={}, theory_conflicts={}, \
             pivots={}, queue_pops={}, implied_bounds={}, propagated_literals={}, \
             mean_explanation_len={:.1}, rebuilds={}, simplex_time={:?}",
            stats.decisions,
            stats.conflicts,
            stats.theory_checks,
            stats.theory_conflicts,
            stats.pivots,
            stats.queue_pops,
            stats.implied_bounds,
            stats.propagated_literals,
            stats.mean_explanation_len(),
            stats.theory_rebuilds,
            stats.simplex_time(),
        ),
    );
}

fn regenerate(synth: &AttackSynthesizer<'_>, th: &PartialThreshold) {
    let started = Instant::now();
    let outcome = synth.synthesize(Some(th)).expect("query decided");
    let elapsed = started.elapsed();
    match &outcome {
        Some(attack) => {
            let verified = synth.verify_attack(attack, Some(th));
            print_row(
                "unsat_certificate",
                &format!(
                    "threshold-constrained round, T={}: counterexample found in {elapsed:?} \
                     (verified: {verified})",
                    synth.horizon()
                ),
            );
            assert!(verified, "counterexample must verify under exact semantics");
        }
        None => print_row(
            "unsat_certificate",
            &format!(
                "threshold-constrained round, T={}: certified UNSAT in {elapsed:?}",
                synth.horizon()
            ),
        ),
    }
    stats_row("threshold-constrained round", synth.last_solver_stats());
}

/// A tight staircase far below the attack's reachable residues: the round
/// must come back UNSAT — the pure certificate side of the CEGIS loop.
fn tight_threshold(synth: &AttackSynthesizer<'_>) -> PartialThreshold {
    vec![Some(1e-4); synth.horizon()]
}

fn regenerate_certificate(synth: &AttackSynthesizer<'_>, th: &PartialThreshold) {
    let started = Instant::now();
    let outcome = synth.synthesize(Some(th)).expect("query decided");
    let elapsed = started.elapsed();
    assert!(
        outcome.is_none(),
        "a 1e-4 residue budget leaves no room for a successful attack"
    );
    print_row(
        "unsat_certificate",
        &format!(
            "tight staircase, T={}: certified UNSAT in {elapsed:?}",
            synth.horizon()
        ),
    );
    stats_row("tight staircase", synth.last_solver_stats());
}

fn bench(c: &mut Criterion) {
    let benchmark = cps_models::vsc().expect("model builds");
    let synth = AttackSynthesizer::new(&benchmark, vsc_exact_config());
    let th = first_round_threshold(&synth);
    regenerate(&synth, &th);
    let tight = tight_threshold(&synth);
    regenerate_certificate(&synth, &tight);
    let mut group = c.benchmark_group("unsat_certificate");
    group.sample_size(3);
    group.bench_function("vsc_t50_pivot_round", |b| {
        b.iter(|| synth.synthesize(Some(&th)).expect("query decided"))
    });
    group.bench_function("vsc_t50_unsat_certificate", |b| {
        b.iter(|| {
            assert!(synth
                .synthesize(Some(&tight))
                .expect("query decided")
                .is_none())
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
