//! Ablation — the solver hot path, in three directions:
//!
//! 1. full DPLL(T) attack synthesis (Algorithm 1) versus the LP-only
//!    under-approximation, on the trajectory-tracking benchmark;
//! 2. the incremental sparse theory core (persistent simplex synced with the
//!    SAT trail) versus the PR-1 from-scratch baseline that rebuilds the
//!    tableau on every theory check, on the VSC dead-zone query where theory
//!    churn dominates;
//! 3. theory-level bound propagation (`SolverConfig::theory_propagation`) on
//!    versus off, on the unconstrained VSC query and on the
//!    threshold-constrained round where UNSAT-side conflict generalisation
//!    dominates. The two ablation flags are independent: the from-scratch
//!    row also runs with propagation off so it stays the faithful PR-1
//!    baseline.
//!
//! Solver statistics (theory checks, pivots, queue pops, implied bounds,
//! propagated literals, explanation lengths, simplex time) are printed for
//! each configuration so speedups are attributable to the theory core rather
//! than the SAT search.

use cps_bench::{bench_config, first_round_threshold, print_row, vsc_exact_config};
use cps_smt::{SolverConfig, SolverStats};
use criterion::{criterion_group, criterion_main, Criterion};
use secure_cps::{AttackSynthesizer, LpAttackSynthesizer, SynthesisConfig};

const VSC_ABLATION_HORIZON: usize = 12;

fn stats_row(label: &str, stats: SolverStats) {
    print_row(
        "ablation",
        &format!(
            "{label}: theory_checks={}, theory_conflicts={}, pivots={}, queue_pops={}, \
             implied_bounds={}, propagated_literals={}, mean_explanation_len={:.1}, \
             rebuilds={}, simplex_time={:?}, decisions={}, conflicts={}",
            stats.theory_checks,
            stats.theory_conflicts,
            stats.pivots,
            stats.queue_pops,
            stats.implied_bounds,
            stats.propagated_literals,
            stats.mean_explanation_len(),
            stats.theory_rebuilds,
            stats.simplex_time(),
            stats.decisions,
            stats.conflicts,
        ),
    );
}

fn vsc_ablation_config(incremental: bool, propagation: bool) -> SynthesisConfig {
    // The from-scratch baseline keeps PR-1's check cadence (one theory check
    // per 32 decisions): a per-decision cadence only makes sense when checks
    // are incremental, and pairing rebuild-per-check with it would handicap
    // the baseline and overstate the incrementality speedup.
    let partial_check_interval = if incremental { 1 } else { 32 };
    SynthesisConfig {
        horizon_override: Some(VSC_ABLATION_HORIZON),
        solver: SolverConfig {
            incremental_theory: incremental,
            partial_check_interval,
            theory_propagation: propagation,
            ..SolverConfig::default()
        },
        ..vsc_exact_config()
    }
}

fn regenerate() {
    let benchmark = cps_models::trajectory_tracking().expect("model builds");
    let config = bench_config();
    let smt = AttackSynthesizer::new(&benchmark, config);
    let lp = LpAttackSynthesizer::new(&benchmark, config);
    let smt_attack = smt.synthesize(None).expect("query decided");
    let lp_attack = lp.synthesize(None);
    print_row(
        "ablation",
        &format!(
            "undefended loop: smt_attack_found={}, lp_attack_found={}",
            smt_attack.is_some(),
            lp_attack.is_some()
        ),
    );
    stats_row("trajectory smt query", smt.last_solver_stats());
    if let (Some(smt_attack), Some(lp_attack)) = (&smt_attack, &lp_attack) {
        print_row(
            "ablation",
            &format!(
                "peak residue: smt={:.4}, lp={:.4}",
                smt_attack.pivot().1,
                lp_attack.pivot().1
            ),
        );
    }

    // Theory-core ablation on the VSC exact dead-zone query. The from-scratch
    // row disables propagation too, making it the faithful PR-1 discipline.
    let vsc = cps_models::vsc().expect("model builds");
    for (label, incremental, propagation) in [
        ("incremental+propagation", true, true),
        ("incremental", true, false),
        ("from_scratch", false, false),
    ] {
        let synthesizer =
            AttackSynthesizer::new(&vsc, vsc_ablation_config(incremental, propagation));
        let found = synthesizer
            .synthesize(None)
            .expect("query decided")
            .is_some();
        print_row(
            "ablation",
            &format!("vsc exact T={VSC_ABLATION_HORIZON} ({label}): attack_found={found}"),
        );
        stats_row(
            &format!("vsc exact T={VSC_ABLATION_HORIZON} ({label})"),
            synthesizer.last_solver_stats(),
        );
    }

    // Propagation ablation on the threshold-constrained CEGIS round — the
    // UNSAT-leaning query shape where conflict generalisation pays off.
    for (label, propagation) in [("propagation_on", true), ("propagation_off", false)] {
        let synthesizer = AttackSynthesizer::new(&vsc, vsc_ablation_config(true, propagation));
        let th = first_round_threshold(&synthesizer);
        let found = synthesizer
            .synthesize(Some(&th))
            .expect("query decided")
            .is_some();
        print_row(
            "ablation",
            &format!(
                "vsc threshold round T={VSC_ABLATION_HORIZON} ({label}): attack_found={found}"
            ),
        );
        stats_row(
            &format!("vsc threshold round T={VSC_ABLATION_HORIZON} ({label})"),
            synthesizer.last_solver_stats(),
        );
    }
}

fn bench(c: &mut Criterion) {
    regenerate();
    let benchmark = cps_models::trajectory_tracking().expect("model builds");
    let config = bench_config();
    let smt = AttackSynthesizer::new(&benchmark, config);
    let lp = LpAttackSynthesizer::new(&benchmark, config);
    let vsc = cps_models::vsc().expect("model builds");
    let vsc_incremental = AttackSynthesizer::new(&vsc, vsc_ablation_config(true, true));
    let vsc_no_propagation = AttackSynthesizer::new(&vsc, vsc_ablation_config(true, false));
    let vsc_from_scratch = AttackSynthesizer::new(&vsc, vsc_ablation_config(false, false));
    let th = first_round_threshold(&vsc_incremental);
    let mut group = c.benchmark_group("solver_ablation");
    group.sample_size(10);
    group.bench_function("smt_attack_synthesis", |b| {
        b.iter(|| smt.synthesize(None).expect("query decided"))
    });
    group.bench_function("lp_attack_synthesis", |b| b.iter(|| lp.synthesize(None)));
    group.bench_function("vsc_exact_incremental_simplex", |b| {
        b.iter(|| vsc_incremental.synthesize(None).expect("query decided"))
    });
    group.bench_function("vsc_exact_from_scratch_simplex", |b| {
        b.iter(|| vsc_from_scratch.synthesize(None).expect("query decided"))
    });
    group.bench_function("vsc_threshold_round_propagation_on", |b| {
        b.iter(|| {
            vsc_incremental
                .synthesize(Some(&th))
                .expect("query decided")
        })
    });
    group.bench_function("vsc_threshold_round_propagation_off", |b| {
        b.iter(|| {
            vsc_no_propagation
                .synthesize(Some(&th))
                .expect("query decided")
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
