//! Ablation — full DPLL(T) attack synthesis (Algorithm 1) versus the
//! LP-only under-approximation, on the trajectory-tracking benchmark.

use cps_bench::{bench_config, print_row};
use criterion::{criterion_group, criterion_main, Criterion};
use secure_cps::{AttackSynthesizer, LpAttackSynthesizer};

fn regenerate() {
    let benchmark = cps_models::trajectory_tracking().expect("model builds");
    let config = bench_config();
    let smt = AttackSynthesizer::new(&benchmark, config);
    let lp = LpAttackSynthesizer::new(&benchmark, config);
    let smt_attack = smt.synthesize(None).expect("query decided");
    let lp_attack = lp.synthesize(None);
    print_row(
        "ablation",
        &format!(
            "undefended loop: smt_attack_found={}, lp_attack_found={}",
            smt_attack.is_some(),
            lp_attack.is_some()
        ),
    );
    if let (Some(smt_attack), Some(lp_attack)) = (&smt_attack, &lp_attack) {
        print_row(
            "ablation",
            &format!(
                "peak residue: smt={:.4}, lp={:.4}",
                smt_attack.pivot().1,
                lp_attack.pivot().1
            ),
        );
    }
}

fn bench(c: &mut Criterion) {
    regenerate();
    let benchmark = cps_models::trajectory_tracking().expect("model builds");
    let config = bench_config();
    let smt = AttackSynthesizer::new(&benchmark, config);
    let lp = LpAttackSynthesizer::new(&benchmark, config);
    let mut group = c.benchmark_group("solver_ablation");
    group.sample_size(10);
    group.bench_function("smt_attack_synthesis", |b| {
        b.iter(|| smt.synthesize(None).expect("query decided"))
    });
    group.bench_function("lp_attack_synthesis", |b| b.iter(|| lp.synthesize(None)));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
