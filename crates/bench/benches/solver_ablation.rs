//! Ablation — the solver hot path, in three directions:
//!
//! 1. full DPLL(T) attack synthesis (Algorithm 1) versus the LP-only
//!    under-approximation, on the trajectory-tracking benchmark;
//! 2. the incremental sparse theory core (persistent simplex synced with the
//!    SAT trail) versus the PR-1 from-scratch baseline that rebuilds the
//!    tableau on every theory check, on the VSC dead-zone query where theory
//!    churn dominates;
//! 3. theory-level bound propagation (`SolverConfig::theory_propagation`) on
//!    versus off, on the unconstrained VSC query and on the
//!    threshold-constrained round where UNSAT-side conflict generalisation
//!    dominates. The two ablation flags are independent: the from-scratch
//!    row also runs with propagation off so it stays the faithful PR-1
//!    baseline.
//!
//! Solver statistics (theory checks, pivots, queue pops, implied bounds,
//! propagated literals, explanation lengths, simplex time) are printed for
//! each configuration so speedups are attributable to the theory core rather
//! than the SAT search.
//!
//! PR 6 adds two scale-out directions:
//!
//! 4. Luby restarts + clause-DB reduction (`SolverConfig::restarts`,
//!    `SolverConfig::clause_db_reduction`) on versus off, on the
//!    threshold-constrained round where conflicts actually accumulate;
//! 5. warm-started incremental CEGIS rounds
//!    (`SolverConfig::incremental_rounds`: one solver per synthesis run,
//!    round constraints in push/pop scopes) versus a fresh solver per round,
//!    over a 10-round threshold synthesis. The honest wall-clock ratio is
//!    printed — at this horizon search time dominates the re-encoding that
//!    warm starting saves, so the ratio is modest by design (warm starting is
//!    *bit-identical* to fresh rounds; it can only save encoding work).
//!
//! PR 7 adds the robustness overhead row:
//!
//! 6. budget checking (`vsc_exact_governed_budget_checks`): the T=12 exact
//!    query with a [`Budget`] armed on **every** axis — far-future deadline,
//!    ample conflict and pivot caps — so each cooperative checkpoint runs its
//!    full check but never trips. The gap to `vsc_exact_incremental_simplex`
//!    is the whole cost of deadline/cancellation-safe solving (<1 % target).

use std::time::{Duration, Instant};

use cps_bench::{bench_config, first_round_threshold, print_row, vsc_exact_config};
use cps_smt::{Budget, SolverConfig, SolverStats};
use criterion::{criterion_group, criterion_main, Criterion};
use secure_cps::{AttackSynthesizer, LpAttackSynthesizer, PivotSynthesizer, SynthesisConfig};

const VSC_ABLATION_HORIZON: usize = 12;
const CEGIS_ROUNDS: usize = 10;

fn stats_row(label: &str, stats: SolverStats) {
    print_row(
        "ablation",
        &format!(
            "{label}: theory_checks={}, theory_conflicts={}, pivots={}, queue_pops={}, \
             implied_bounds={}, propagated_literals={}, mean_explanation_len={:.1}, \
             rebuilds={}, simplex_time={:?}, decisions={}, conflicts={}, restarts={}, \
             clauses_deleted={}, scopes_reused={}",
            stats.theory_checks,
            stats.theory_conflicts,
            stats.pivots,
            stats.queue_pops,
            stats.implied_bounds,
            stats.propagated_literals,
            stats.mean_explanation_len(),
            stats.theory_rebuilds,
            stats.simplex_time(),
            stats.decisions,
            stats.conflicts,
            stats.restarts,
            stats.clauses_deleted,
            stats.scopes_reused,
        ),
    );
}

fn vsc_ablation_config(incremental: bool, propagation: bool) -> SynthesisConfig {
    // The from-scratch baseline keeps PR-1's check cadence (one theory check
    // per 32 decisions): a per-decision cadence only makes sense when checks
    // are incremental, and pairing rebuild-per-check with it would handicap
    // the baseline and overstate the incrementality speedup. It likewise
    // keeps PR-1's restart/reduction discipline (none): a restart throws
    // away search progress that rebuild-per-check theory checks paid dearly
    // for, so scale-out on that corner measures a configuration nobody
    // ships rather than the historical baseline.
    let partial_check_interval = if incremental { 1 } else { 32 };
    SynthesisConfig {
        horizon_override: Some(VSC_ABLATION_HORIZON),
        solver: SolverConfig {
            incremental_theory: incremental,
            partial_check_interval,
            theory_propagation: propagation,
            restarts: incremental,
            clause_db_reduction: incremental,
            ..SolverConfig::default()
        },
        ..vsc_exact_config()
    }
}

/// Scale-out ablation corner: the incremental theory core with restarts and
/// clause-DB reduction toggled together (they share the conflict-driven
/// trigger path, and the paired test grid covers the mixed corners).
fn vsc_scale_out_config(scale_out: bool) -> SynthesisConfig {
    let mut config = vsc_ablation_config(true, true);
    config.solver.restarts = scale_out;
    config.solver.clause_db_reduction = scale_out;
    config
}

/// Ten-round threshold-synthesis config, warm-started or fresh-per-round.
fn vsc_cegis_config(incremental_rounds: bool) -> SynthesisConfig {
    let mut config = vsc_ablation_config(true, true);
    config.solver.incremental_rounds = incremental_rounds;
    config
}

fn run_cegis(vsc: &cps_models::Benchmark, incremental_rounds: bool) -> secure_cps::SynthesisReport {
    PivotSynthesizer::new(vsc, vsc_cegis_config(incremental_rounds))
        .with_max_rounds(CEGIS_ROUNDS)
        .run()
        .expect("synthesis runs")
}

fn regenerate() {
    let benchmark = cps_models::trajectory_tracking().expect("model builds");
    let config = bench_config();
    let smt = AttackSynthesizer::new(&benchmark, config);
    let lp = LpAttackSynthesizer::new(&benchmark, config);
    let smt_attack = smt.synthesize(None).expect("query decided");
    let lp_attack = lp.synthesize(None);
    print_row(
        "ablation",
        &format!(
            "undefended loop: smt_attack_found={}, lp_attack_found={}",
            smt_attack.is_some(),
            lp_attack.is_some()
        ),
    );
    stats_row("trajectory smt query", smt.last_solver_stats());
    if let (Some(smt_attack), Some(lp_attack)) = (&smt_attack, &lp_attack) {
        print_row(
            "ablation",
            &format!(
                "peak residue: smt={:.4}, lp={:.4}",
                smt_attack.pivot().1,
                lp_attack.pivot().1
            ),
        );
    }

    // Theory-core ablation on the VSC exact dead-zone query. The from-scratch
    // row disables propagation too, making it the faithful PR-1 discipline.
    let vsc = cps_models::vsc().expect("model builds");
    for (label, incremental, propagation) in [
        ("incremental+propagation", true, true),
        ("incremental", true, false),
        ("from_scratch", false, false),
    ] {
        let synthesizer =
            AttackSynthesizer::new(&vsc, vsc_ablation_config(incremental, propagation));
        let found = synthesizer
            .synthesize(None)
            .expect("query decided")
            .is_some();
        print_row(
            "ablation",
            &format!("vsc exact T={VSC_ABLATION_HORIZON} ({label}): attack_found={found}"),
        );
        stats_row(
            &format!("vsc exact T={VSC_ABLATION_HORIZON} ({label})"),
            synthesizer.last_solver_stats(),
        );
    }

    // Propagation ablation on the threshold-constrained CEGIS round — the
    // UNSAT-leaning query shape where conflict generalisation pays off.
    for (label, propagation) in [("propagation_on", true), ("propagation_off", false)] {
        let synthesizer = AttackSynthesizer::new(&vsc, vsc_ablation_config(true, propagation));
        let th = first_round_threshold(&synthesizer);
        let found = synthesizer
            .synthesize(Some(&th))
            .expect("query decided")
            .is_some();
        print_row(
            "ablation",
            &format!(
                "vsc threshold round T={VSC_ABLATION_HORIZON} ({label}): attack_found={found}"
            ),
        );
        stats_row(
            &format!("vsc threshold round T={VSC_ABLATION_HORIZON} ({label})"),
            synthesizer.last_solver_stats(),
        );
    }

    // Scale-out ablation on the threshold-constrained round: restarts and
    // clause-DB reduction only matter where conflicts accumulate, and this is
    // the most conflict-heavy query in the suite.
    for (label, scale_out) in [("scale_out_on", true), ("scale_out_off", false)] {
        let synthesizer = AttackSynthesizer::new(&vsc, vsc_scale_out_config(scale_out));
        let th = first_round_threshold(&synthesizer);
        let found = synthesizer
            .synthesize(Some(&th))
            .expect("query decided")
            .is_some();
        print_row(
            "ablation",
            &format!(
                "vsc threshold round T={VSC_ABLATION_HORIZON} ({label}): attack_found={found}"
            ),
        );
        stats_row(
            &format!("vsc threshold round T={VSC_ABLATION_HORIZON} ({label})"),
            synthesizer.last_solver_stats(),
        );
    }

    // Warm-started CEGIS rounds versus a fresh solver per round, over a
    // 10-round threshold synthesis. The two runs are bit-identical in every
    // synthesized threshold (locked down by the differential test suites), so
    // the wall-clock ratio below is a pure encoding-reuse measurement.
    let fresh_started = Instant::now();
    let fresh = run_cegis(&vsc, false);
    let fresh_elapsed = fresh_started.elapsed();
    let warm_started = Instant::now();
    let warm = run_cegis(&vsc, true);
    let warm_elapsed = warm_started.elapsed();
    assert_eq!(
        warm.partial, fresh.partial,
        "warm-started CEGIS diverged from fresh rounds"
    );
    print_row(
        "ablation",
        &format!(
            "vsc cegis {CEGIS_ROUNDS}-round T={VSC_ABLATION_HORIZON}: rounds={}, converged={}, \
             fresh={fresh_elapsed:?}, warm={warm_elapsed:?}, speedup={:.2}x, scopes_reused={}",
            warm.rounds,
            warm.converged,
            fresh_elapsed.as_secs_f64() / warm_elapsed.as_secs_f64().max(1e-9),
            warm.solver_stats.scopes_reused,
        ),
    );
    stats_row(
        &format!("vsc cegis {CEGIS_ROUNDS}-round T={VSC_ABLATION_HORIZON} (warm)"),
        warm.solver_stats,
    );
    stats_row(
        &format!("vsc cegis {CEGIS_ROUNDS}-round T={VSC_ABLATION_HORIZON} (fresh)"),
        fresh.solver_stats,
    );
}

fn bench(c: &mut Criterion) {
    regenerate();
    let benchmark = cps_models::trajectory_tracking().expect("model builds");
    let config = bench_config();
    let smt = AttackSynthesizer::new(&benchmark, config);
    let lp = LpAttackSynthesizer::new(&benchmark, config);
    let vsc = cps_models::vsc().expect("model builds");
    let vsc_incremental = AttackSynthesizer::new(&vsc, vsc_ablation_config(true, true));
    let vsc_no_propagation = AttackSynthesizer::new(&vsc, vsc_ablation_config(true, false));
    let vsc_from_scratch = AttackSynthesizer::new(&vsc, vsc_ablation_config(false, false));
    let th = first_round_threshold(&vsc_incremental);
    let mut group = c.benchmark_group("solver_ablation");
    group.sample_size(10);
    group.bench_function("smt_attack_synthesis", |b| {
        b.iter(|| smt.synthesize(None).expect("query decided"))
    });
    group.bench_function("lp_attack_synthesis", |b| b.iter(|| lp.synthesize(None)));
    group.bench_function("vsc_exact_incremental_simplex", |b| {
        b.iter(|| vsc_incremental.synthesize(None).expect("query decided"))
    });
    // Runs back-to-back with the ungoverned row above so the pair shares
    // cache/thermal state — the honest way to read a sub-1% delta.
    let vsc_governed = AttackSynthesizer::new(&vsc, vsc_ablation_config(true, true));
    vsc_governed.set_budget(
        Budget::unlimited()
            .with_timeout(Duration::from_secs(86_400))
            .with_conflict_cap(u64::MAX / 2)
            .with_pivot_cap(u64::MAX / 2),
    );
    group.bench_function("vsc_exact_governed_budget_checks", |b| {
        b.iter(|| vsc_governed.synthesize(None).expect("query decided"))
    });
    group.bench_function("vsc_exact_from_scratch_simplex", |b| {
        b.iter(|| vsc_from_scratch.synthesize(None).expect("query decided"))
    });
    group.bench_function("vsc_threshold_round_propagation_on", |b| {
        b.iter(|| {
            vsc_incremental
                .synthesize(Some(&th))
                .expect("query decided")
        })
    });
    group.bench_function("vsc_threshold_round_propagation_off", |b| {
        b.iter(|| {
            vsc_no_propagation
                .synthesize(Some(&th))
                .expect("query decided")
        })
    });
    // Each iteration constructs its own synthesizer: warm starting lives
    // inside one synthesis run, so per-run construction (encoding included)
    // is exactly the cost being compared.
    group.bench_function("vsc_cegis_10round_warm", |b| {
        b.iter(|| run_cegis(&vsc, true))
    });
    group.bench_function("vsc_cegis_10round_fresh", |b| {
        b.iter(|| run_cegis(&vsc, false))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
