//! E1/E2 — Fig. 1a/1b: trajectory deviation and residues under no-noise /
//! noise / attack, with static vs variable thresholds.

use cps_bench::{bench_config, print_row};
use cps_control::{NoiseModel, ResidueNorm};
use cps_detectors::{Detector, ThresholdDetector, ThresholdSpec};
use criterion::{criterion_group, criterion_main, Criterion};
use secure_cps::AttackSynthesizer;

fn regenerate() {
    let benchmark = cps_models::trajectory_tracking().expect("model builds");
    let horizon = benchmark.horizon;
    let plant = benchmark.closed_loop.plant();
    let no_noise = NoiseModel::none(plant.num_states(), plant.num_outputs());

    let clean =
        benchmark
            .closed_loop
            .simulate(&benchmark.initial_state, horizon, &no_noise, None, 0);
    let noisy = benchmark.closed_loop.simulate(
        &benchmark.initial_state,
        horizon,
        &benchmark.noise,
        None,
        1,
    );
    let synthesizer = AttackSynthesizer::new(&benchmark, bench_config());
    let attack = synthesizer
        .synthesize(None)
        .expect("query decided")
        .expect("undefended loop attackable");
    let attacked = benchmark.closed_loop.simulate(
        &benchmark.initial_state,
        horizon,
        &benchmark.noise,
        Some(&attack.attack),
        1,
    );

    let target = benchmark.performance.target();
    print_row(
        "fig1a",
        "k, deviation_no_noise, deviation_noise, deviation_attack",
    );
    for k in 0..=horizon {
        print_row(
            "fig1a",
            &format!(
                "{k}, {:.4}, {:.4}, {:.4}",
                clean.states()[k][0] - target,
                noisy.states()[k][0] - target,
                attacked.states()[k][0] - target
            ),
        );
    }

    let noise_res = noisy.residue_norms(ResidueNorm::Linf);
    let attack_res = attacked.residue_norms(ResidueNorm::Linf);
    let noise_peak = noise_res.iter().cloned().fold(0.0, f64::max);
    let attack_peak = attack_res.iter().cloned().fold(0.0, f64::max);
    let small = ThresholdSpec::constant(0.6 * noise_peak, horizon);
    let large = ThresholdSpec::constant(1.2 * attack_peak, horizon);
    let variable = ThresholdSpec::variable(
        (0..horizon)
            .map(|k| {
                let f = k as f64 / (horizon - 1) as f64;
                1.2 * attack_peak * (1.0 - f) + 1.5 * noise_peak * f
            })
            .collect(),
    );
    print_row("fig1b", "k, residue_noise, residue_attack, th, Th, vth");
    for k in 0..horizon {
        print_row(
            "fig1b",
            &format!(
                "{k}, {:.4}, {:.4}, {:.4}, {:.4}, {:.4}",
                noise_res[k],
                attack_res[k],
                small.value_at(k),
                large.value_at(k),
                variable.value_at(k)
            ),
        );
    }
    for (name, spec) in [("th_small", small), ("Th_large", large), ("vth", variable)] {
        let detector = ThresholdDetector::new(spec, ResidueNorm::Linf);
        print_row(
            "fig1b",
            &format!(
                "{name}: alarm_on_noise={:?}, alarm_on_attack={:?}",
                detector.first_alarm(&noisy),
                detector.first_alarm(&attacked)
            ),
        );
    }
}

fn bench(c: &mut Criterion) {
    regenerate();
    let benchmark = cps_models::trajectory_tracking().expect("model builds");
    let synthesizer = AttackSynthesizer::new(&benchmark, bench_config());
    let mut group = c.benchmark_group("fig1_trajectory");
    group.sample_size(10);
    group.bench_function("attack_synthesis_undefended", |b| {
        b.iter(|| synthesizer.synthesize(None).expect("query decided"))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
