//! E6 — Fig. 3: the variable threshold vectors produced by Algorithm 2
//! (pivot-based) and Algorithm 3 (step-wise).

use cps_bench::{bench_config, print_row, synthesis_benchmark};
use criterion::{criterion_group, criterion_main, Criterion};
use secure_cps::{PivotSynthesizer, StepwiseSynthesizer};

fn regenerate() {
    let benchmark = synthesis_benchmark();
    let config = bench_config();
    let pivot = PivotSynthesizer::new(&benchmark, config)
        .with_max_rounds(400)
        .run()
        .expect("synthesis runs");
    let stepwise = StepwiseSynthesizer::new(&benchmark, config)
        .with_max_rounds(400)
        .run()
        .expect("synthesis runs");
    print_row(
        "fig3",
        &format!(
            "benchmark={}, pivot converged={} rounds={}, stepwise converged={} rounds={}",
            benchmark.name, pivot.converged, pivot.rounds, stepwise.converged, stepwise.rounds
        ),
    );
    print_row("fig3", "k, pivot_threshold, stepwise_threshold");
    for k in 0..benchmark.horizon {
        let fmt = |v: &Option<f64>| match v {
            Some(value) => format!("{value:.4}"),
            None => "inf".to_string(),
        };
        print_row(
            "fig3",
            &format!(
                "{k}, {}, {}",
                fmt(&pivot.partial[k]),
                fmt(&stepwise.partial[k])
            ),
        );
    }
}

fn bench(c: &mut Criterion) {
    regenerate();
    let benchmark = synthesis_benchmark();
    let config = bench_config();
    let mut group = c.benchmark_group("fig3_threshold_synthesis");
    group.sample_size(10);
    group.bench_function("stepwise_synthesis_full", |b| {
        b.iter(|| {
            StepwiseSynthesizer::new(&benchmark, config)
                .with_max_rounds(400)
                .run()
                .expect("synthesis runs")
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
