//! Streaming detection runtime throughput: traces/s and steps/s of the
//! allocation-free `FarExperiment` engine over the five-plant benchmark zoo.
//!
//! Each plant is driven through a full FAR experiment (noise rollouts, the
//! pfc / monitor filter and a fused three-detector scan) with the batched
//! parallel lanes at their default width. The group reports two throughput
//! rows per plant — trials per second and simulated closed-loop steps per
//! second — via the criterion shim's `Throughput` support, so
//! `scripts/bench_snapshot.sh` tracks them in the higher-is-better direction.

use cps_control::ResidueNorm;
use cps_detectors::{Chi2Detector, CusumDetector, Detector, ThresholdDetector, ThresholdSpec};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use secure_cps::FarExperiment;

/// Trials per experiment run. Large enough that per-run setup (thread spawn,
/// scanner allocation) is amortised and the steady-state streaming loop
/// dominates the measurement.
const TRIALS: usize = 512;
const SEED: u64 = 0xC0FFEE;

fn bench(c: &mut Criterion) {
    let zoo = cps_models::all_benchmarks().expect("benchmark zoo builds");
    for benchmark in &zoo {
        let threshold = ThresholdDetector::new(
            ThresholdSpec::constant(0.05, benchmark.horizon),
            ResidueNorm::Linf,
        );
        let chi2 = Chi2Detector::new(5, 0.01, ResidueNorm::L2);
        let cusum = CusumDetector::new(0.02, 0.08, ResidueNorm::Linf);
        let detectors: [(&str, &dyn Detector); 3] =
            [("static", &threshold), ("chi2", &chi2), ("cusum", &cusum)];
        let experiment = FarExperiment::new(benchmark, TRIALS, SEED);

        let mut group = c.benchmark_group("streaming_far");
        group.sample_size(10);
        group.throughput(Throughput::Elements(TRIALS as u64));
        group.bench_function(format!("{}_traces_per_s", benchmark.name), |b| {
            b.iter(|| experiment.run(&detectors))
        });
        // Same engine, normalised by simulated steps instead of trials:
        // comparable across plants with different horizons. (Monitor-alarmed
        // trials abort early, so this is an upper bound on steps actually
        // executed; the nominal noise level keeps discards rare.)
        group.throughput(Throughput::Elements((TRIALS * benchmark.horizon) as u64));
        group.bench_function(format!("{}_steps_per_s", benchmark.name), |b| {
            b.iter(|| experiment.run(&detectors))
        });
        group.finish();
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
