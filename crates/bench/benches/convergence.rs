//! E8 — convergence comparison: CEGIS rounds needed by Algorithm 2
//! (pivot-based) versus Algorithm 3 (step-wise). The paper reports 56 vs 37
//! rounds on the VSC; the expected *shape* is that the step-wise variant
//! needs no more rounds than the pivot-based one.

use cps_bench::{bench_config, print_row, synthesis_benchmark};
use criterion::{criterion_group, criterion_main, Criterion};
use secure_cps::{PivotSynthesizer, StepwiseSynthesizer};

fn regenerate() {
    let benchmark = synthesis_benchmark();
    let config = bench_config();
    let pivot = PivotSynthesizer::new(&benchmark, config)
        .with_max_rounds(400)
        .run()
        .expect("synthesis runs");
    let stepwise = StepwiseSynthesizer::new(&benchmark, config)
        .with_max_rounds(400)
        .run()
        .expect("synthesis runs");
    print_row(
        "convergence",
        &format!(
            "benchmark={}: pivot rounds={} (converged={}), stepwise rounds={} (converged={}) — paper: 56 vs 37",
            benchmark.name, pivot.rounds, pivot.converged, stepwise.rounds, stepwise.converged
        ),
    );
}

fn bench(c: &mut Criterion) {
    regenerate();
    let benchmark = synthesis_benchmark();
    let config = bench_config();
    let mut group = c.benchmark_group("convergence");
    group.sample_size(10);
    group.bench_function("pivot_synthesis_full", |b| {
        b.iter(|| {
            PivotSynthesizer::new(&benchmark, config)
                .with_max_rounds(400)
                .run()
                .expect("synthesis runs")
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
