//! E7 — the FAR table of §IV: false-alarm rates of the Algorithm 2 and
//! Algorithm 3 detectors versus the provably safe static threshold
//! (paper: 61.5 %, 45.6 %, 98.9 %).

use cps_bench::{bench_config, print_row, synthesis_benchmark};
use cps_control::ResidueNorm;
use cps_detectors::{Chi2Detector, CusumDetector, Detector, ThresholdDetector};
use criterion::{criterion_group, criterion_main, Criterion};
use secure_cps::{
    synthesize_static_threshold, FarExperiment, PivotSynthesizer, StepwiseSynthesizer,
};

const TRIALS: usize = 300;

fn regenerate() {
    let benchmark = synthesis_benchmark();
    let config = bench_config();
    let pivot = PivotSynthesizer::new(&benchmark, config)
        .with_max_rounds(400)
        .run()
        .expect("synthesis runs");
    let stepwise = StepwiseSynthesizer::new(&benchmark, config)
        .with_max_rounds(400)
        .run()
        .expect("synthesis runs");
    let (static_spec, _) =
        synthesize_static_threshold(&benchmark, config, 8).expect("bisection runs");

    let pivot_detector = ThresholdDetector::new(pivot.threshold_spec(), ResidueNorm::Linf);
    let stepwise_detector = ThresholdDetector::new(stepwise.threshold_spec(), ResidueNorm::Linf);
    let static_detector = ThresholdDetector::new(static_spec.clone(), ResidueNorm::Linf);
    // Extra baselines beyond the paper.
    let chi2 = Chi2Detector::new(5, static_spec.value_at(0).powi(2) * 2.0, ResidueNorm::Linf);
    let cusum = CusumDetector::new(
        static_spec.value_at(0) * 0.5,
        static_spec.value_at(0) * 2.0,
        ResidueNorm::Linf,
    );

    let experiment = FarExperiment::new(&benchmark, TRIALS, 2026);
    let report = experiment.run(&[
        ("algorithm-2-pivot", &pivot_detector as &dyn Detector),
        ("algorithm-3-stepwise", &stepwise_detector),
        ("static-baseline", &static_detector),
        ("chi-squared", &chi2),
        ("cusum", &cusum),
    ]);
    print_row(
        "far",
        &format!(
            "benchmark={}, generated={}, kept={}",
            benchmark.name, report.generated, report.kept
        ),
    );
    print_row(
        "far",
        "detector, false_alarm_rate (paper: 0.615 / 0.456 / 0.989)",
    );
    for (name, rate) in &report.rates {
        print_row("far", &format!("{name}, {rate:.3}"));
    }
}

fn bench(c: &mut Criterion) {
    regenerate();
    let benchmark = synthesis_benchmark();
    let experiment = FarExperiment::new(&benchmark, 50, 7);
    let detector = ThresholdDetector::new(
        cps_detectors::ThresholdSpec::constant(0.05, benchmark.horizon),
        ResidueNorm::Linf,
    );
    let mut group = c.benchmark_group("far_comparison");
    group.sample_size(10);
    group.bench_function("far_50_noise_rollouts", |b| {
        b.iter(|| experiment.run(&[("static", &detector as &dyn Detector)]))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
