//! Graceful-degradation acceptance tests: synthesis runs interrupted by a
//! wall-clock deadline, a cancellation token, or a conflict budget must end
//! with a typed [`ConvergenceStatus::Interrupted`] report carrying the
//! best-so-far staircase and per-round solver statistics — never a panic, a
//! hang, or a silently discarded round.

use std::time::Duration;

use cps_smt::{Budget, InterruptReason};
use secure_cps::{
    ConvergenceStatus, PivotSynthesizer, StepwiseSynthesizer, SynthesisConfig, SynthesisError,
};

/// A horizon large enough that a single CEGIS query takes well over a
/// millisecond, so a tight deadline reliably lands mid-solve.
const LONG_HORIZON: usize = 50;

fn long_config() -> SynthesisConfig {
    SynthesisConfig {
        horizon_override: Some(LONG_HORIZON),
        ..SynthesisConfig::default()
    }
}

#[test]
fn tight_deadline_yields_interrupted_report_with_round_stats() {
    let benchmark = cps_models::vsc().unwrap();
    let config = SynthesisConfig {
        timeout: Some(Duration::from_micros(50)),
        ..long_config()
    };
    let synthesizer = PivotSynthesizer::new(&benchmark, config);
    let report = synthesizer
        .run()
        .expect("an interruption degrades gracefully instead of erroring");

    assert!(
        matches!(report.status, ConvergenceStatus::Interrupted { .. }),
        "a 50 microsecond deadline cannot finish a T={LONG_HORIZON} synthesis, got {:?}",
        report.status
    );
    assert!(!report.converged);
    assert!(
        !report.round_stats.is_empty(),
        "the interrupted query still contributes its per-round stats entry"
    );
    assert_eq!(report.partial.len(), LONG_HORIZON);
    if let ConvergenceStatus::Interrupted { reason, .. } = report.status {
        assert_eq!(reason, InterruptReason::Deadline);
    }
}

#[test]
fn pre_cancelled_token_interrupts_pivot_synthesis() {
    let benchmark = cps_models::trajectory_tracking().unwrap();
    let config = SynthesisConfig {
        convergence_margin: 0.25,
        ..SynthesisConfig::default()
    };
    let synthesizer = PivotSynthesizer::new(&benchmark, config).with_max_rounds(400);
    synthesizer.attack_synthesizer().cancel_token().cancel();
    let report = synthesizer.run().expect("cancellation degrades gracefully");
    assert!(
        matches!(
            report.status,
            ConvergenceStatus::Interrupted {
                round: 0,
                reason: InterruptReason::Cancelled,
            }
        ),
        "got {:?}",
        report.status
    );

    // Clearing the token makes the same synthesizer usable again.
    synthesizer.attack_synthesizer().cancel_token().reset();
    let report = synthesizer.run().expect("synthesis runs after reset");
    assert!(report.converged, "got {:?}", report.status);
}

#[test]
fn conflict_budget_interrupts_stepwise_synthesis() {
    let benchmark = cps_models::vsc().unwrap();
    let synthesizer = StepwiseSynthesizer::new(&benchmark, long_config());
    synthesizer
        .attack_synthesizer()
        .set_budget(Budget::unlimited().with_conflict_cap(1));
    let report = synthesizer.run().expect("budget exhaustion degrades");
    assert!(
        matches!(
            report.status,
            ConvergenceStatus::Interrupted {
                reason: InterruptReason::ConflictBudget,
                ..
            }
        ),
        "got {:?}",
        report.status
    );
    assert!(!report.round_stats.is_empty());
}

#[test]
fn interrupted_run_retried_with_real_budget_converges_identically() {
    let benchmark = cps_models::trajectory_tracking().unwrap();
    let config = SynthesisConfig {
        convergence_margin: 0.25,
        ..SynthesisConfig::default()
    };

    // Reference: an uninterrupted run on a fresh synthesizer.
    let reference = PivotSynthesizer::new(&benchmark, config)
        .with_max_rounds(400)
        .run()
        .expect("reference synthesis runs");
    assert!(reference.converged);

    // Interrupted run: starved of conflicts, then retried on the SAME
    // synthesizer with the budget lifted. The warm solver re-derives all
    // search state from its clause database, so the retry must agree
    // bit-for-bit with the fresh reference.
    let synthesizer = PivotSynthesizer::new(&benchmark, config).with_max_rounds(400);
    synthesizer
        .attack_synthesizer()
        .set_budget(Budget::unlimited().with_conflict_cap(1));
    let starved = synthesizer.run().expect("starved run degrades");
    assert!(matches!(
        starved.status,
        ConvergenceStatus::Interrupted { .. }
    ));

    synthesizer
        .attack_synthesizer()
        .set_budget(Budget::unlimited());
    let retried = synthesizer.run().expect("retried synthesis runs");
    assert!(retried.converged);
    assert_eq!(retried.rounds, reference.rounds);
    assert_eq!(
        retried.partial, reference.partial,
        "bit-identical staircase"
    );
}

#[test]
fn panicked_error_formats_payload() {
    // `SynthesisError::Panicked` is user-visible; check the Display plumbing
    // without needing to provoke an organic solver panic.
    let err = SynthesisError::Panicked("index out of bounds".into());
    assert!(err.to_string().contains("index out of bounds"));
}
