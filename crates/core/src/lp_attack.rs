use cps_control::SensorAttack;
use cps_linalg::Vector;
use cps_models::{Benchmark, PerformanceCriterion};
use cps_smt::{maximize, Constraint, LinExpr, OptimizeOutcome};

use crate::{SynthesisConfig, SynthesizedAttack, UnrolledLoop};

/// LP-only attack synthesis — the solver ablation discussed in `ARCHITECTURE.md`.
///
/// Instead of the full Boolean/theory query of Algorithm 1, this synthesizer
/// keeps only the *conjunctive* stealth constraints (residue bounds, attack
/// bounds, and the plant monitors applied at **every** instant, i.e. without
/// the dead-zone disjunction) and then pushes the terminal state as far from
/// the target as a linear program allows. It under-approximates the attacker
/// (any attack it finds is also found by Algorithm 1, but not vice versa) and
/// is orders of magnitude faster, which makes it useful both as a quick
/// screening pass and as a benchmark comparison point.
#[derive(Debug)]
pub struct LpAttackSynthesizer<'a> {
    benchmark: &'a Benchmark,
    unrolled: UnrolledLoop,
}

impl<'a> LpAttackSynthesizer<'a> {
    /// Prepares the LP synthesizer (the unrolling is shared with Algorithm 1's
    /// encoding).
    pub fn new(benchmark: &'a Benchmark, config: SynthesisConfig) -> Self {
        let horizon = config.horizon_override.unwrap_or(benchmark.horizon);
        Self {
            benchmark,
            unrolled: UnrolledLoop::with_horizon(benchmark, horizon),
        }
    }

    /// The analysis horizon used.
    pub fn horizon(&self) -> usize {
        self.unrolled.horizon()
    }

    /// Attempts to find a stealthy successful attack by linear programming.
    ///
    /// Returns `None` when even the most damaging conjunctively-stealthy
    /// injection cannot violate the performance criterion — which, unlike an
    /// `UNSAT` answer from Algorithm 1, is *not* a proof that no stealthy
    /// attack exists (the dead-zone freedom is given away).
    pub fn synthesize(&self, threshold: Option<&[Option<f64>]>) -> Option<SynthesizedAttack> {
        let constraints = self.stealth_constraints(threshold);
        let state_idx = self.benchmark.performance.state_index();
        let final_expr = self.unrolled.final_state()[state_idx].clone();

        // Push the constrained terminal component in the direction(s) that
        // violate the performance criterion.
        let objectives: Vec<LinExpr> = match &self.benchmark.performance {
            PerformanceCriterion::ReachBand { .. } => {
                vec![final_expr.clone(), final_expr.clone().scale(-1.0)]
            }
            PerformanceCriterion::ReachFraction { target, .. } => {
                if *target >= 0.0 {
                    vec![final_expr.clone().scale(-1.0)]
                } else {
                    vec![final_expr.clone()]
                }
            }
        };

        for objective in objectives {
            let outcome = maximize(self.unrolled.vars().len(), &constraints, &objective);
            let assignment = match outcome {
                OptimizeOutcome::Optimal(_, assignment) => assignment,
                OptimizeOutcome::Unbounded | OptimizeOutcome::Infeasible => continue,
            };
            let attack = self.attack_from_assignment(&assignment);
            let candidate = self.package(attack);
            let final_state = candidate.trace.states().last().expect("non-empty trace");
            if !self.benchmark.performance.satisfied_by(final_state) {
                return Some(candidate);
            }
        }
        None
    }

    /// Conjunctive stealth constraints: residue bounds, attack bounds and the
    /// monitors enforced at every instant (no dead-zone slack).
    fn stealth_constraints(&self, threshold: Option<&[Option<f64>]>) -> Vec<Constraint> {
        let horizon = self.unrolled.horizon();
        let mut constraints = Vec::new();

        if let Some(threshold) = threshold {
            for (k, entry) in threshold.iter().enumerate().take(horizon) {
                if let Some(bound) = entry {
                    if !bound.is_finite() {
                        continue;
                    }
                    for j in 0..self.unrolled.num_residue_components() {
                        let z = self.unrolled.residue(k, j).clone();
                        constraints.push(z.clone().lt(*bound));
                        constraints.push(z.gt(-*bound));
                    }
                }
            }
        }

        let symbols = self.unrolled.measurement_symbols();
        for k in 0..horizon {
            let ok = self.benchmark.monitors.encode_ok_at(k, &symbols);
            collect_atoms(&ok, &mut constraints);
        }

        let bound = self.benchmark.attack_bound;
        for k in 0..horizon {
            for i in 0..self.unrolled.attacked_sensors().len() {
                let a = LinExpr::var(self.unrolled.attack_var(k, i));
                constraints.push(a.clone().le(bound));
                constraints.push(a.ge(-bound));
            }
        }
        constraints
    }

    fn attack_from_assignment(&self, assignment: &[f64]) -> SensorAttack {
        let outputs = self.benchmark.num_outputs();
        let injections = (0..self.unrolled.horizon())
            .map(|k| {
                let mut injection = Vector::zeros(outputs);
                for (i, sensor) in self.unrolled.attacked_sensors().iter().enumerate() {
                    injection[*sensor] = assignment[self.unrolled.attack_var(k, i).index()];
                }
                injection
            })
            .collect();
        SensorAttack::new(injections)
    }

    fn package(&self, attack: SensorAttack) -> SynthesizedAttack {
        let plant = self.benchmark.closed_loop.plant();
        let trace = self.benchmark.closed_loop.simulate(
            &self.benchmark.initial_state,
            self.unrolled.horizon(),
            &cps_control::NoiseModel::none(plant.num_states(), plant.num_outputs()),
            Some(&attack),
            0,
        );
        let residue_norms = trace.residue_norms(cps_control::ResidueNorm::Linf);
        SynthesizedAttack {
            attack,
            trace,
            residue_norms,
        }
    }
}

/// Flattens a purely conjunctive monitor formula into its atomic constraints.
/// Monitor "ok" formulas are conjunctions of atoms by construction; anything
/// else would indicate a monitor kind this LP ablation cannot express and is
/// ignored (making the LP attacker slightly stronger, never weaker).
fn collect_atoms(formula: &cps_smt::Formula, out: &mut Vec<Constraint>) {
    match formula {
        cps_smt::Formula::Atom(c) => out.push(c.clone()),
        cps_smt::Formula::And(parts) => {
            for p in parts {
                collect_atoms(p, out);
            }
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AttackSynthesizer;

    #[test]
    fn lp_attack_exists_for_the_undefended_trajectory_loop() {
        let benchmark = cps_models::trajectory_tracking().unwrap();
        let lp = LpAttackSynthesizer::new(&benchmark, SynthesisConfig::default());
        let attack = lp
            .synthesize(None)
            .expect("LP should find an attack on the undefended loop");
        let final_state = attack.trace.states().last().unwrap();
        assert!(!benchmark.performance.satisfied_by(final_state));
    }

    #[test]
    fn lp_attacks_are_a_subset_of_smt_attacks() {
        // Whenever the LP finds an attack, the full Algorithm 1 query must
        // also be satisfiable (the LP attacker is strictly weaker).
        let benchmark = cps_models::trajectory_tracking().unwrap();
        let config = SynthesisConfig::default();
        let lp = LpAttackSynthesizer::new(&benchmark, config);
        let smt = AttackSynthesizer::new(&benchmark, config);
        let threshold: Vec<Option<f64>> = vec![Some(0.3); benchmark.horizon];
        if lp.synthesize(Some(&threshold)).is_some() {
            assert!(smt.synthesize(Some(&threshold)).unwrap().is_some());
        }
    }

    #[test]
    fn lp_respects_tight_thresholds() {
        let benchmark = cps_models::trajectory_tracking().unwrap();
        let lp = LpAttackSynthesizer::new(&benchmark, SynthesisConfig::default());
        let tight: Vec<Option<f64>> = vec![Some(1e-4); benchmark.horizon];
        assert!(lp.synthesize(Some(&tight)).is_none());
    }
}
