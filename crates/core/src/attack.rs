use cps_control::{NoiseModel, ResidueNorm, SensorAttack, Trace};
use cps_detectors::ThresholdSpec;
use cps_linalg::Vector;
use cps_models::Benchmark;
use cps_smt::{
    BoolVarPool, Budget, CancelToken, CheckResult, Formula, LinExpr, SmtError, SmtSolver,
    SolverConfig, SolverStats,
};
use std::cell::{Cell, RefCell};
use std::time::Duration;

use crate::UnrolledLoop;

/// How the plant monitors (`mdc`) are encoded in the attack-synthesis query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MonitorEncoding {
    /// Faithful encoding of the dead-zone semantics: the attacker may violate
    /// monitor checks as long as no `dead_zone` consecutive instants are
    /// violating. Uses the `O(T·k)` sequential-counter construction
    /// ([`cps_monitors::MonitorSuite::encode_stealth_counter`]), which scales
    /// to the paper's 50-sample VSC horizon.
    #[default]
    Exact,
    /// The pre-sequential-counter exact encoding: one enumerated window of
    /// `dead_zone` alternatives per instant, each cloning the per-step
    /// monitor formulas. Same semantics as [`MonitorEncoding::Exact`] but
    /// combinatorial — kept as a differential-testing and ablation baseline;
    /// practical up to horizons of a dozen samples.
    ExactNaive,
    /// Conjunctive under-approximation of the attacker: monitor checks must
    /// hold at *every* instant from the given start index onwards (the prefix
    /// is left unconstrained so the loop's own startup transient is not
    /// misclassified as an attack). Queries become pure conjunctions and scale
    /// to the paper's 50-sample horizon; any attack found this way is also a
    /// valid attack under the exact semantics, but the `UNSAT` certificate
    /// only covers attackers that never exploit the dead zone. See
    /// `ARCHITECTURE.md` ("Fidelity notes") for the substitution note.
    ConjunctiveAfter(usize),
}

/// Configuration of the attack-synthesis query (Algorithm 1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SynthesisConfig {
    /// SMT search budget per query (mirrors the paper's 12-hour Z3 timeout,
    /// expressed as a conflict budget instead of wall-clock time).
    pub solver: SolverConfig,
    /// Residue norm used when reporting the synthesized attack's residues and
    /// when the CEGIS algorithms pick pivots. The *encoding* always bounds
    /// each residue component individually (an ∞-norm detector), which keeps
    /// the query linear; see `ARCHITECTURE.md` ("Fidelity notes") for the substitution note.
    pub residue_norm: ResidueNorm,
    /// Optional horizon override (use a smaller `T` than the benchmark's for
    /// faster exploratory queries).
    pub horizon_override: Option<usize>,
    /// Relative margin applied when a CEGIS step installs a threshold at a
    /// counterexample's residue value: the threshold is set to
    /// `(1 − margin) · ‖z‖` instead of exactly `‖z‖`.
    ///
    /// The paper sets the threshold to the residue itself; because the next
    /// counterexample only has to undercut it by an infinitesimal amount, the
    /// loop can take arbitrarily many rounds to converge. A small margin
    /// (default 5 %) forces geometric progress while keeping the result sound
    /// — the synthesised detector is only ever *tighter* than the paper's,
    /// and the final `UNSAT` certificate is unchanged.
    pub convergence_margin: f64,
    /// How the plant monitors are encoded (see [`MonitorEncoding`]).
    pub monitor_encoding: MonitorEncoding,
    /// Robustness margin by which monitor-OK constraints are shrunk in the
    /// symbolic encoding. The solver parks models exactly on constraint
    /// boundaries; re-simulating such an attack reproduces measurements only
    /// up to float round-off (~1e-12), which can flip an on-the-bound instant
    /// into a runtime violation. The default `1e-6` keeps every
    /// symbolically-OK instant robustly OK at runtime while staying far below
    /// model fidelity; `UNSAT` certificates then cover attackers that keep
    /// this clearance.
    pub monitor_margin: f64,
    /// Wall-clock budget for a **whole** CEGIS run (the paper's 12-hour Z3
    /// timeout, made explicit). `None` (the default) leaves the run
    /// unbounded. When set, [`PivotSynthesizer::run`](crate::PivotSynthesizer)
    /// and [`StepwiseSynthesizer::run`](crate::StepwiseSynthesizer) convert it
    /// into an absolute deadline at run start; an interrupted run degrades
    /// gracefully, returning the best-so-far thresholds with
    /// [`ConvergenceStatus::Interrupted`](crate::ConvergenceStatus).
    pub timeout: Option<Duration>,
}

impl Default for SynthesisConfig {
    fn default() -> Self {
        Self {
            solver: SolverConfig::default(),
            residue_norm: ResidueNorm::Linf,
            horizon_override: None,
            convergence_margin: 0.05,
            monitor_encoding: MonitorEncoding::Exact,
            monitor_margin: 1e-6,
            timeout: None,
        }
    }
}

impl SynthesisConfig {
    /// Convenience constructor overriding the analysis horizon.
    pub fn with_horizon(horizon: usize) -> Self {
        Self {
            horizon_override: Some(horizon),
            ..Self::default()
        }
    }
}

/// A stealthy, successful attack returned by Algorithm 1.
#[derive(Debug, Clone, PartialEq)]
pub struct SynthesizedAttack {
    /// The per-step sensor injections.
    pub attack: SensorAttack,
    /// Noise-free closed-loop rollout under the attack.
    pub trace: Trace,
    /// Residue norms `‖z_k‖` along that rollout.
    pub residue_norms: Vec<f64>,
}

impl SynthesizedAttack {
    /// The sampling instant with the largest residue norm and its value (the
    /// pivot used by Algorithms 2 and 3).
    pub fn pivot(&self) -> (usize, f64) {
        self.residue_norms
            .iter()
            .copied()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .expect("non-empty horizon")
    }
}

/// Algorithm 1 — attack-vector synthesis.
///
/// Builds the SMT query
/// `(∀p. ‖z_p‖ < Th[p]) ∧ mdc ∧ ¬pfc` over the symbolic unrolling of the
/// closed loop and asks the [`SmtSolver`] for a model. A model is a concrete
/// false-data-injection sequence that stays below every detector threshold,
/// never trips the plant monitors, and still prevents the loop from meeting
/// its performance criterion.
#[derive(Debug)]
pub struct AttackSynthesizer<'a> {
    benchmark: &'a Benchmark,
    config: SynthesisConfig,
    unrolled: UnrolledLoop,
    /// Statistics of the most recent solver call (for perf attribution).
    last_stats: Cell<SolverStats>,
    /// Long-lived solver for warm-started CEGIS rounds
    /// ([`SolverConfig::incremental_rounds`]): the round-invariant encoding
    /// (monitor stealth, attack bounds, performance violation) is asserted
    /// once on first use, and each round's threshold constraints are wrapped
    /// in a `push`/`pop` scope. Stays `None` in fresh-per-round mode.
    warm_solver: RefCell<Option<SmtSolver>>,
    /// Resource budget installed on the query solver before every check.
    /// Because the deadline axis is absolute, one budget can bound a whole
    /// CEGIS run spanning many queries.
    budget: Cell<Budget>,
    /// Cancellation token shared with every query solver, so an external
    /// caller can abort a running synthesis from another thread.
    cancel: CancelToken,
}

impl<'a> AttackSynthesizer<'a> {
    /// Prepares the synthesizer for a benchmark (the symbolic unrolling is
    /// done once and reused across threshold candidates).
    pub fn new(benchmark: &'a Benchmark, config: SynthesisConfig) -> Self {
        let horizon = config.horizon_override.unwrap_or(benchmark.horizon);
        let unrolled = UnrolledLoop::with_horizon(benchmark, horizon);
        Self {
            benchmark,
            config,
            unrolled,
            last_stats: Cell::new(SolverStats::default()),
            warm_solver: RefCell::new(None),
            budget: Cell::new(Budget::unlimited()),
            cancel: CancelToken::new(),
        }
    }

    /// Installs the resource budget applied to every subsequent query. The
    /// deadline axis is absolute, so one budget bounds a whole CEGIS run.
    pub fn set_budget(&self, budget: Budget) {
        self.budget.set(budget);
    }

    /// The currently installed resource budget.
    pub fn budget(&self) -> Budget {
        self.budget.get()
    }

    /// A clone of the cancellation token observed by every query: calling
    /// [`CancelToken::cancel`] on it (from any thread) makes a running
    /// query unwind with
    /// [`InterruptReason::Cancelled`](cps_smt::InterruptReason) at its next
    /// cooperative checkpoint.
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// Drops the warm incremental solver, forcing the next query to rebuild
    /// it from the symbolic unrolling. Used by the CEGIS run boundary after
    /// catching a panic: whatever state the solver was in is discarded and
    /// provably rebuilt from the CNF. Results are unaffected — warm and
    /// fresh rounds are bit-identical by construction.
    pub fn reset_warm_solver(&self) {
        *self.warm_solver.borrow_mut() = None;
    }

    /// Solver statistics (theory checks, pivots, simplex time, …) of the most
    /// recent [`AttackSynthesizer::synthesize`] call, for perf attribution in
    /// benches and ablations.
    pub fn last_solver_stats(&self) -> SolverStats {
        self.last_stats.get()
    }

    /// The analysis horizon actually used.
    pub fn horizon(&self) -> usize {
        self.unrolled.horizon()
    }

    /// The configuration the synthesizer was created with.
    pub fn config(&self) -> SynthesisConfig {
        self.config
    }

    /// The benchmark under analysis.
    pub fn benchmark(&self) -> &Benchmark {
        self.benchmark
    }

    /// Runs Algorithm 1 against a (possibly partial) threshold vector.
    ///
    /// `threshold[k] = None` means no detector check at instant `k` (the
    /// paper's `Th[k] = 0`); `Some(v)` requires `‖z_k‖ < v` for stealthiness.
    /// Passing `None` for the whole vector checks whether the existing
    /// monitors alone can be bypassed.
    ///
    /// Returns `Ok(None)` when the solver proves that **no** stealthy
    /// successful attack exists — the guarantee the synthesis algorithms
    /// terminate on.
    ///
    /// # Errors
    ///
    /// Returns [`SmtError::Interrupted`] when the installed [`Budget`] (or
    /// the conflict cap of [`SolverConfig::max_conflicts`]) is spent, the
    /// deadline passes, or the [`CancelToken`] fires before the query is
    /// decided; the error carries the interrupt reason and the statistics
    /// gathered so far.
    pub fn synthesize(
        &self,
        threshold: Option<&[Option<f64>]>,
    ) -> Result<Option<SynthesizedAttack>, SmtError> {
        let round_assertions = self.threshold_assertions(threshold);
        // Warm and fresh paths run the *same* code over the same assertion
        // order (base encoding first, round thresholds inside a scope), so
        // their CNF — and therefore the whole search — is bit-identical. The
        // warm path merely skips re-encoding the base formulas.
        let outcome = if self.config.solver.incremental_rounds {
            let mut warm = self.warm_solver.borrow_mut();
            if warm.is_none() {
                *warm = Some(self.base_solver());
            }
            let solver = warm.as_mut().expect("warm solver just initialised");
            // Re-install each round: the budget may have been re-armed (e.g.
            // a run-level timeout) since the warm solver was built.
            solver.set_budget(self.budget.get());
            solver.set_cancel_token(self.cancel.clone());
            Self::check_round(solver, round_assertions, &self.last_stats)
        } else {
            let mut solver = self.base_solver();
            solver.set_budget(self.budget.get());
            solver.set_cancel_token(self.cancel.clone());
            Self::check_round(&mut solver, round_assertions, &self.last_stats)
        };
        match outcome? {
            CheckResult::Unsat => Ok(None),
            CheckResult::Sat(model) => {
                let attack = self.attack_from_model(model.values());
                let trace = self.simulate(&attack);
                let residue_norms = trace.residue_norms(self.config.residue_norm);
                Ok(Some(SynthesizedAttack {
                    attack,
                    trace,
                    residue_norms,
                }))
            }
        }
    }

    /// Checks one CEGIS round: the round-local assertions live in a scope
    /// that is popped before returning (also on the error path, so a
    /// budget-exhausted warm solver stays reusable).
    fn check_round(
        solver: &mut SmtSolver,
        round_assertions: Vec<Formula>,
        stats: &Cell<SolverStats>,
    ) -> Result<CheckResult, SmtError> {
        solver.push();
        for assertion in round_assertions {
            solver.assert(assertion);
        }
        let outcome = solver.check();
        stats.set(solver.stats());
        solver.pop();
        outcome
    }

    /// Builds a solver holding the round-invariant encoding: monitor stealth
    /// (mdc), attack magnitude limits and the performance violation (¬pfc).
    fn base_solver(&self) -> SmtSolver {
        let horizon = self.unrolled.horizon();
        let mut solver = SmtSolver::with_config(self.unrolled.vars_cloned(), self.config.solver);
        let mut assertions = Vec::new();

        // Monitor stealth (mdc): the plant monitors never raise an alarm.
        let symbols = self.unrolled.measurement_symbols();
        let mut bools = BoolVarPool::new();
        let margin = self.config.monitor_margin;
        match self.config.monitor_encoding {
            MonitorEncoding::Exact => {
                assertions.push(
                    self.benchmark
                        .monitors
                        .encode_stealth_counter(&symbols, &mut bools, margin),
                );
            }
            MonitorEncoding::ExactNaive => {
                assertions.push(
                    self.benchmark
                        .monitors
                        .encode_stealth_margin(&symbols, margin),
                );
            }
            MonitorEncoding::ConjunctiveAfter(start) => {
                for k in start.min(horizon)..horizon {
                    assertions.push(
                        self.benchmark
                            .monitors
                            .encode_ok_at_margin(k, &symbols, margin),
                    );
                }
            }
        }

        // Attack magnitude limits.
        let bound = self.benchmark.attack_bound;
        for k in 0..horizon {
            for i in 0..self.unrolled.attacked_sensors().len() {
                let a = LinExpr::var(self.unrolled.attack_var(k, i));
                assertions.push(Formula::atom(a.clone().le(bound)));
                assertions.push(Formula::atom(a.ge(-bound)));
            }
        }

        // The attacker's goal: the performance criterion is violated.
        assertions.push(
            self.benchmark
                .performance
                .encode_violation(self.unrolled.final_state()),
        );

        solver.assert(Formula::and(assertions));
        solver
    }

    /// Builds the round-local residue-stealth assertions: for every instant
    /// with an active threshold, every residue component stays strictly
    /// inside (−Th[k], +Th[k]).
    fn threshold_assertions(&self, threshold: Option<&[Option<f64>]>) -> Vec<Formula> {
        let horizon = self.unrolled.horizon();
        let mut assertions = Vec::new();
        if let Some(threshold) = threshold {
            for (k, entry) in threshold.iter().enumerate().take(horizon) {
                if let Some(bound) = entry {
                    if !bound.is_finite() {
                        continue;
                    }
                    for j in 0..self.unrolled.num_residue_components() {
                        let z = self.unrolled.residue(k, j).clone();
                        assertions.push(Formula::atom(z.clone().lt(*bound)));
                        assertions.push(Formula::atom(z.gt(-*bound)));
                    }
                }
            }
        }
        assertions
    }

    /// Builds the concrete [`SensorAttack`] from a solver model.
    fn attack_from_model(&self, values: &[f64]) -> SensorAttack {
        let p = self.benchmark.num_outputs();
        let injections = (0..self.unrolled.horizon())
            .map(|k| {
                let mut injection = Vector::zeros(p);
                for (i, sensor) in self.unrolled.attacked_sensors().iter().enumerate() {
                    injection[*sensor] = values[self.unrolled.attack_var(k, i).index()];
                }
                injection
            })
            .collect();
        SensorAttack::new(injections)
    }

    /// Noise-free rollout of the closed loop under a concrete attack.
    pub fn simulate(&self, attack: &SensorAttack) -> Trace {
        let plant = self.benchmark.closed_loop.plant();
        self.benchmark.closed_loop.simulate(
            &self.benchmark.initial_state,
            self.unrolled.horizon(),
            &NoiseModel::none(plant.num_states(), plant.num_outputs()),
            Some(attack),
            0,
        )
    }

    /// Verifies end to end that a synthesized attack is indeed stealthy w.r.t.
    /// the given threshold and monitors, and defeats the performance
    /// criterion (used by tests and by the CEGIS loops as a sanity check).
    pub fn verify_attack(
        &self,
        attack: &SynthesizedAttack,
        threshold: Option<&[Option<f64>]>,
    ) -> bool {
        // Residue stealth on the simulated (noise-free) trace.
        if let Some(threshold) = threshold {
            for (k, entry) in threshold
                .iter()
                .enumerate()
                .take(attack.residue_norms.len())
            {
                if let Some(bound) = entry {
                    if attack.residue_norms[k] >= *bound {
                        return false;
                    }
                }
            }
        }
        // Monitor stealth.
        if self
            .benchmark
            .monitors
            .evaluate(attack.trace.measurements())
            .alarmed()
        {
            return false;
        }
        // Performance violation.
        let final_state = attack.trace.states().last().expect("non-empty trace");
        !self.benchmark.performance.satisfied_by(final_state)
    }

    /// Converts a detector [`ThresholdSpec`] into the partial-threshold form
    /// accepted by [`AttackSynthesizer::synthesize`].
    pub fn spec_to_partial(&self, spec: &ThresholdSpec) -> Vec<Option<f64>> {
        (0..self.unrolled.horizon())
            .map(|k| {
                let v = spec.value_at(k);
                if v.is_finite() {
                    Some(v)
                } else {
                    None
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trajectory_synth() -> (cps_models::Benchmark, SynthesisConfig) {
        (
            cps_models::trajectory_tracking().unwrap(),
            SynthesisConfig::default(),
        )
    }

    #[test]
    fn attack_exists_without_any_detector() {
        let (benchmark, config) = trajectory_synth();
        let synthesizer = AttackSynthesizer::new(&benchmark, config);
        let attack = synthesizer
            .synthesize(None)
            .expect("query decided")
            .expect("undefended loop must be attackable");
        assert!(synthesizer.verify_attack(&attack, None));
        assert_eq!(attack.residue_norms.len(), benchmark.horizon);
        let (pivot_idx, pivot_val) = attack.pivot();
        assert!(pivot_idx < benchmark.horizon);
        assert!(pivot_val > 0.0);
    }

    #[test]
    fn tight_threshold_blocks_all_attacks() {
        let (benchmark, config) = trajectory_synth();
        let synthesizer = AttackSynthesizer::new(&benchmark, config);
        // A residue bound this small leaves the attacker no room to push the
        // state off target within ten samples.
        let tight: Vec<Option<f64>> = vec![Some(1e-4); benchmark.horizon];
        let result = synthesizer.synthesize(Some(&tight)).expect("query decided");
        assert!(result.is_none(), "tight threshold should be provably safe");
    }

    #[test]
    fn loose_threshold_still_admits_attacks() {
        let (benchmark, config) = trajectory_synth();
        let synthesizer = AttackSynthesizer::new(&benchmark, config);
        let loose: Vec<Option<f64>> = vec![Some(10.0); benchmark.horizon];
        let attack = synthesizer
            .synthesize(Some(&loose))
            .expect("query decided")
            .expect("a huge threshold cannot stop the attacker");
        assert!(synthesizer.verify_attack(&attack, Some(&loose)));
        // Every reported residue norm respects the loose threshold.
        assert!(attack.residue_norms.iter().all(|z| *z < 10.0));
    }

    #[test]
    fn partial_threshold_only_constrains_checked_instants() {
        let (benchmark, config) = trajectory_synth();
        let synthesizer = AttackSynthesizer::new(&benchmark, config);
        let mut partial: Vec<Option<f64>> = vec![None; benchmark.horizon];
        partial[benchmark.horizon - 1] = Some(0.05);
        if let Some(attack) = synthesizer
            .synthesize(Some(&partial))
            .expect("query decided")
        {
            assert!(
                attack.residue_norms[benchmark.horizon - 1] < 0.05,
                "checked instant must respect its threshold"
            );
            assert!(synthesizer.verify_attack(&attack, Some(&partial)));
        }
    }

    #[test]
    fn spec_round_trip() {
        let (benchmark, config) = trajectory_synth();
        let synthesizer = AttackSynthesizer::new(&benchmark, config);
        let spec = ThresholdSpec::variable(vec![f64::INFINITY, 0.5, 0.25]);
        let partial = synthesizer.spec_to_partial(&spec);
        assert_eq!(partial.len(), benchmark.horizon);
        assert_eq!(partial[0], None);
        assert_eq!(partial[1], Some(0.5));
        assert_eq!(partial[2], Some(0.25));
        // Beyond the spec's stored length the last value repeats.
        assert_eq!(partial[benchmark.horizon - 1], Some(0.25));
    }

    #[test]
    fn horizon_override_is_respected() {
        let benchmark = cps_models::vsc().unwrap();
        let synthesizer = AttackSynthesizer::new(&benchmark, SynthesisConfig::with_horizon(8));
        assert_eq!(synthesizer.horizon(), 8);
    }
}
