use std::num::NonZeroUsize;
use std::ops::Range;
use std::thread;

use cps_control::{StepBuffers, Trace};
use cps_detectors::Detector;
use cps_models::Benchmark;

/// The false-alarm-rate experiment of §IV: generate random bounded noise
/// rollouts, keep those that satisfy the performance criterion and pass the
/// plant monitors (`mdc`), then measure how often each residue detector
/// alarms on the kept, attack-free traces.
///
/// Rollouts are embarrassingly parallel and fan out across a
/// [`std::thread::scope`] worker pool sized to the machine (override with
/// [`FarExperiment::with_parallelism`]). Each trial's noise stream is seeded
/// by `seed + trial` exactly as in the sequential implementation and results
/// are collected in trial order, so reports are **bit-identical** regardless
/// of the worker count.
#[derive(Debug)]
pub struct FarExperiment<'a> {
    benchmark: &'a Benchmark,
    num_trials: usize,
    seed: u64,
    parallelism: Option<usize>,
}

/// Result of a [`FarExperiment`] run.
#[derive(Debug, Clone, PartialEq)]
pub struct FarReport {
    /// Number of noise rollouts generated.
    pub generated: usize,
    /// Number of rollouts kept after the pfc / monitor filter.
    pub kept: usize,
    /// Number of rollouts discarded by the filter.
    pub discarded: usize,
    /// `(detector name, false-alarm rate over the kept rollouts)`, in the
    /// order the detectors were passed to [`FarExperiment::run`].
    pub rates: Vec<(String, f64)>,
}

impl FarReport {
    /// The false-alarm rate of a named detector, if present.
    ///
    /// Rates are stored in insertion order (the order the detectors were
    /// passed to [`FarExperiment::run`]); if several detectors share a name,
    /// the first one wins. Iterate [`FarReport::rates`] directly to see every
    /// entry.
    pub fn rate_of(&self, name: &str) -> Option<f64> {
        self.rates
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, rate)| *rate)
    }
}

impl<'a> FarExperiment<'a> {
    /// Creates the experiment. The paper uses 1000 noise rollouts; tests use
    /// fewer to stay fast.
    pub fn new(benchmark: &'a Benchmark, num_trials: usize, seed: u64) -> Self {
        Self {
            benchmark,
            num_trials,
            seed,
            parallelism: None,
        }
    }

    /// Overrides the rollout worker count (default: all available cores).
    /// `1` forces the sequential path; used by the bit-identity tests.
    pub fn with_parallelism(mut self, workers: usize) -> Self {
        self.parallelism = Some(workers.max(1));
        self
    }

    /// Number of rollout workers the experiment will use.
    pub fn parallelism(&self) -> usize {
        self.parallelism.unwrap_or_else(|| {
            thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1)
        })
    }

    /// Simulates trial `trial` and applies the pfc / monitor filter.
    ///
    /// The paper samples noise "from a suitably small range such that pfc is
    /// maintained" and then discards rollouts flagged by `mdc`.
    fn rollout(&self, trial: usize) -> Option<Trace> {
        let trace = self.benchmark.closed_loop.simulate(
            &self.benchmark.initial_state,
            self.benchmark.horizon,
            &self.benchmark.noise,
            None,
            self.seed.wrapping_add(trial as u64),
        );
        let pfc_ok = self
            .benchmark
            .performance
            .satisfied_by(trace.states().last().expect("non-empty trace"));
        // `first_alarm` short-circuits at the instant the verdict is decided
        // and allocates nothing, unlike the full `evaluate` verdict.
        let keep = pfc_ok
            && self
                .benchmark
                .monitors
                .first_alarm(trace.measurements())
                .is_none();
        keep.then_some(trace)
    }

    /// Generates the filtered population of attack-free noisy traces.
    ///
    /// Trials fan out over the worker pool; the kept traces come back in
    /// trial order, so the result is identical to a sequential run.
    pub fn noise_traces(&self) -> Vec<Trace> {
        let workers = self.parallelism().min(self.num_trials.max(1));
        let mut slots: Vec<Option<Trace>> = Vec::new();
        slots.resize_with(self.num_trials, || None);
        if workers <= 1 {
            for (trial, slot) in slots.iter_mut().enumerate() {
                *slot = self.rollout(trial);
            }
        } else {
            let chunk = self.num_trials.div_ceil(workers);
            thread::scope(|scope| {
                for (w, slot_chunk) in slots.chunks_mut(chunk).enumerate() {
                    let base = w * chunk;
                    scope.spawn(move || {
                        for (i, slot) in slot_chunk.iter_mut().enumerate() {
                            *slot = self.rollout(base + i);
                        }
                    });
                }
            });
        }
        slots.into_iter().flatten().collect()
    }

    /// Streams the trials of a contiguous lane through one set of reusable
    /// buffers: one [`StepBuffers`], one monitor scanner and one detector
    /// scanner per detector, all allocated once and reset per trial, so the
    /// steady-state loop performs zero heap allocations and never
    /// materialises a [`Trace`].
    ///
    /// Per trial the rollout observer feeds each measurement to the monitor
    /// scan (a monitor alarm aborts the rollout — the trial is discarded
    /// either way) and each residue to every not-yet-alarmed detector
    /// scanner. After a completed rollout the performance criterion is
    /// checked on the final state; detector alarm flags only count once the
    /// trial is confirmed kept, exactly as when scanning materialised kept
    /// traces.
    fn scan_range(&self, trials: Range<usize>, detectors: &[(&str, &dyn Detector)]) -> LaneOutcome {
        let mut outcome = LaneOutcome {
            kept: 0,
            alarms: vec![0usize; detectors.len()],
        };
        let mut buffers = StepBuffers::new();
        let mut monitor_scan = self.benchmark.monitors.scanner();
        let mut scanners: Vec<_> = detectors.iter().map(|(_, d)| d.scanner()).collect();
        let mut alarmed = vec![false; detectors.len()];
        let horizon = self.benchmark.horizon;
        for trial in trials {
            monitor_scan.reset();
            for scanner in &mut scanners {
                scanner.reset();
            }
            alarmed.fill(false);
            let mut pending = scanners.len();
            let mut monitor_alarm = false;
            self.benchmark.closed_loop.simulate_into(
                &self.benchmark.initial_state,
                horizon,
                &self.benchmark.noise,
                None,
                self.seed.wrapping_add(trial as u64),
                &mut buffers,
                |record| {
                    if monitor_scan.step(record.measurement) {
                        // The trial is discarded regardless of what the
                        // remaining instants hold; stop simulating it.
                        monitor_alarm = true;
                        return false;
                    }
                    if pending > 0 {
                        for (i, scanner) in scanners.iter_mut().enumerate() {
                            if !alarmed[i] && scanner.step(record.k, record.residue) {
                                alarmed[i] = true;
                                pending -= 1;
                            }
                        }
                    }
                    true
                },
            );
            let keep = !monitor_alarm && self.benchmark.performance.satisfied_by(buffers.state());
            if keep {
                outcome.kept += 1;
                for (count, &fired) in outcome.alarms.iter_mut().zip(&alarmed) {
                    *count += usize::from(fired);
                }
            }
        }
        outcome
    }

    /// Runs the experiment against a set of named detectors.
    ///
    /// Trials stream through batched parallel lanes: lane `w` of `L` scans
    /// the contiguous trial chunk `[w·c, (w+1)·c)` with `c = ⌈N/L⌉` — the
    /// same deterministic assignment rule as [`FarExperiment::noise_traces`]
    /// — and each lane reuses one set of step buffers and scanners across
    /// its trials (`scan_range` above), so no rollout is ever
    /// materialised as a [`Trace`]. Lanes report integer kept/alarm counts
    /// that are summed in lane order, so reports are **bit-identical** for
    /// every lane count and to the retired collect-then-scan implementation.
    ///
    /// Detector evaluation is fused per trial: every detector's streaming
    /// scanner ([`Detector::scanner`], allocated once per lane) is fed the
    /// trial's residues instant by instant, and detector stepping stops the
    /// moment every detector in the suite has alarmed. Verdicts — and
    /// therefore the reported rates — are identical to evaluating each
    /// detector independently with [`cps_detectors::false_alarm_rate`] over
    /// [`FarExperiment::noise_traces`].
    pub fn run(&self, detectors: &[(&str, &dyn Detector)]) -> FarReport {
        let lanes = self.parallelism().min(self.num_trials.max(1));
        let outcome = if lanes <= 1 {
            self.scan_range(0..self.num_trials, detectors)
        } else {
            let chunk = self.num_trials.div_ceil(lanes);
            let mut slots: Vec<Option<LaneOutcome>> = Vec::new();
            slots.resize_with(lanes, || None);
            thread::scope(|scope| {
                for (lane, slot) in slots.iter_mut().enumerate() {
                    let lo = (lane * chunk).min(self.num_trials);
                    let hi = ((lane + 1) * chunk).min(self.num_trials);
                    scope.spawn(move || *slot = Some(self.scan_range(lo..hi, detectors)));
                }
            });
            let mut total = LaneOutcome {
                kept: 0,
                alarms: vec![0usize; detectors.len()],
            };
            // Integer counts: summation order cannot matter, but lanes are
            // still folded in lane order for uniformity with noise_traces.
            for lane in slots.into_iter().flatten() {
                total.kept += lane.kept;
                for (count, add) in total.alarms.iter_mut().zip(&lane.alarms) {
                    *count += add;
                }
            }
            total
        };
        let rates = detectors
            .iter()
            .zip(&outcome.alarms)
            .map(|((name, _), &count)| {
                let rate = if outcome.kept == 0 {
                    0.0
                } else {
                    count as f64 / outcome.kept as f64
                };
                ((*name).to_string(), rate)
            })
            .collect();
        FarReport {
            generated: self.num_trials,
            kept: outcome.kept,
            discarded: self.num_trials - outcome.kept,
            rates,
        }
    }
}

/// Integer tallies produced by one evaluation lane: trials kept after the
/// pfc / monitor filter and per-detector alarm counts over those kept trials.
#[derive(Debug)]
struct LaneOutcome {
    kept: usize,
    alarms: Vec<usize>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use cps_control::ResidueNorm;
    use cps_detectors::{ThresholdDetector, ThresholdSpec};

    #[test]
    fn noise_traces_pass_the_filter_by_construction() {
        let benchmark = cps_models::trajectory_tracking().unwrap();
        let experiment = FarExperiment::new(&benchmark, 50, 7);
        let traces = experiment.noise_traces();
        assert!(
            !traces.is_empty(),
            "the nominal noise level should pass the filter"
        );
        for trace in &traces {
            assert!(benchmark
                .performance
                .satisfied_by(trace.states().last().unwrap()));
            assert!(!benchmark.monitors.evaluate(trace.measurements()).alarmed());
        }
    }

    #[test]
    fn far_orders_detectors_by_threshold_tightness() {
        let benchmark = cps_models::trajectory_tracking().unwrap();
        let experiment = FarExperiment::new(&benchmark, 80, 11);
        let horizon = benchmark.horizon;
        let tight =
            ThresholdDetector::new(ThresholdSpec::constant(1e-4, horizon), ResidueNorm::Linf);
        let loose =
            ThresholdDetector::new(ThresholdSpec::constant(1.0, horizon), ResidueNorm::Linf);
        let report = experiment.run(&[("tight", &tight), ("loose", &loose)]);
        assert_eq!(report.generated, 80);
        assert_eq!(report.kept + report.discarded, 80);
        let tight_rate = report.rate_of("tight").unwrap();
        let loose_rate = report.rate_of("loose").unwrap();
        assert!(tight_rate >= loose_rate);
        assert!(tight_rate > 0.9, "a near-zero threshold alarms on noise");
        assert!(loose_rate < 0.1, "a huge threshold rarely alarms on noise");
        assert_eq!(report.rate_of("missing"), None);
    }

    #[test]
    fn parallel_rollouts_are_bit_identical_to_sequential() {
        let benchmark = cps_models::trajectory_tracking().unwrap();
        let horizon = benchmark.horizon;
        let detector =
            ThresholdDetector::new(ThresholdSpec::constant(0.05, horizon), ResidueNorm::Linf);
        let sequential = FarExperiment::new(&benchmark, 64, 42).with_parallelism(1);
        let report_seq = sequential.run(&[("th", &detector as &dyn Detector)]);
        for workers in [2, 3, 8] {
            let parallel = FarExperiment::new(&benchmark, 64, 42).with_parallelism(workers);
            assert_eq!(parallel.parallelism(), workers);
            let report_par = parallel.run(&[("th", &detector as &dyn Detector)]);
            assert_eq!(
                report_seq, report_par,
                "{workers}-worker report differs from sequential"
            );
            // Trace-level identity, not just aggregate rates.
            let traces_seq = sequential.noise_traces();
            let traces_par = parallel.noise_traces();
            assert_eq!(traces_seq.len(), traces_par.len());
            for (a, b) in traces_seq.iter().zip(traces_par.iter()) {
                assert_eq!(a.measurements(), b.measurements());
                assert_eq!(a.residues(), b.residues());
            }
        }
    }

    #[test]
    fn default_parallelism_uses_available_cores() {
        let benchmark = cps_models::trajectory_tracking().unwrap();
        let experiment = FarExperiment::new(&benchmark, 10, 3);
        assert!(experiment.parallelism() >= 1);
        // More workers than trials must not panic or drop trials.
        let wide = FarExperiment::new(&benchmark, 3, 3).with_parallelism(64);
        assert_eq!(wide.run(&[]).generated, 3);
    }

    #[test]
    fn fused_evaluation_matches_per_detector_rates() {
        use cps_detectors::{false_alarm_rate, Chi2Detector, CusumDetector};

        let benchmark = cps_models::trajectory_tracking().unwrap();
        let horizon = benchmark.horizon;
        let th = ThresholdDetector::new(ThresholdSpec::constant(0.05, horizon), ResidueNorm::Linf);
        let chi2 = Chi2Detector::new(3, 0.004, ResidueNorm::L2);
        let cusum = CusumDetector::new(0.02, 0.06, ResidueNorm::Linf);
        let experiment = FarExperiment::new(&benchmark, 60, 19);
        let report = experiment.run(&[
            ("th", &th as &dyn Detector),
            ("chi2", &chi2),
            ("cusum", &cusum),
        ]);
        // The fused, trial-short-circuiting loop must reproduce the naive
        // one-detector-at-a-time rates exactly.
        let kept = experiment.noise_traces();
        assert_eq!(report.rate_of("th"), Some(false_alarm_rate(&th, &kept)));
        assert_eq!(report.rate_of("chi2"), Some(false_alarm_rate(&chi2, &kept)));
        assert_eq!(
            report.rate_of("cusum"),
            Some(false_alarm_rate(&cusum, &kept))
        );
    }

    #[test]
    fn streaming_run_counts_match_trace_materialisation() {
        let benchmark = cps_models::trajectory_tracking().unwrap();
        for seed in [0u64, 7, 1234] {
            let experiment = FarExperiment::new(&benchmark, 50, seed);
            // The streaming engine never builds a Trace, yet its kept count
            // must equal the number of traces the materialising path keeps.
            let report = experiment.run(&[]);
            assert_eq!(report.kept, experiment.noise_traces().len());
            assert_eq!(report.discarded, 50 - report.kept);
        }
    }

    #[test]
    fn rate_of_returns_first_entry_for_duplicate_names() {
        let benchmark = cps_models::trajectory_tracking().unwrap();
        let horizon = benchmark.horizon;
        let tight =
            ThresholdDetector::new(ThresholdSpec::constant(1e-4, horizon), ResidueNorm::Linf);
        let loose =
            ThresholdDetector::new(ThresholdSpec::constant(1.0, horizon), ResidueNorm::Linf);
        let experiment = FarExperiment::new(&benchmark, 40, 5);
        let report = experiment.run(&[("dup", &tight as &dyn Detector), ("dup", &loose)]);
        assert_eq!(report.rates.len(), 2, "duplicates are all reported");
        // Insertion order: rate_of resolves to the first (tight) detector.
        assert_eq!(report.rate_of("dup"), Some(report.rates[0].1));
        assert!(report.rates[0].1 >= report.rates[1].1);
    }
}
