use cps_control::Trace;
use cps_detectors::{false_alarm_rate, Detector};
use cps_models::Benchmark;

/// The false-alarm-rate experiment of §IV: generate random bounded noise
/// rollouts, keep those that satisfy the performance criterion and pass the
/// plant monitors (`mdc`), then measure how often each residue detector
/// alarms on the kept, attack-free traces.
#[derive(Debug)]
pub struct FarExperiment<'a> {
    benchmark: &'a Benchmark,
    num_trials: usize,
    seed: u64,
}

/// Result of a [`FarExperiment`] run.
#[derive(Debug, Clone, PartialEq)]
pub struct FarReport {
    /// Number of noise rollouts generated.
    pub generated: usize,
    /// Number of rollouts kept after the pfc / monitor filter.
    pub kept: usize,
    /// Number of rollouts discarded by the filter.
    pub discarded: usize,
    /// `(detector name, false-alarm rate over the kept rollouts)`.
    pub rates: Vec<(String, f64)>,
}

impl FarReport {
    /// The false-alarm rate of a named detector, if present.
    pub fn rate_of(&self, name: &str) -> Option<f64> {
        self.rates
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, rate)| *rate)
    }
}

impl<'a> FarExperiment<'a> {
    /// Creates the experiment. The paper uses 1000 noise rollouts; tests use
    /// fewer to stay fast.
    pub fn new(benchmark: &'a Benchmark, num_trials: usize, seed: u64) -> Self {
        Self {
            benchmark,
            num_trials,
            seed,
        }
    }

    /// Generates the filtered population of attack-free noisy traces.
    pub fn noise_traces(&self) -> Vec<Trace> {
        let mut kept = Vec::new();
        for trial in 0..self.num_trials {
            let trace = self.benchmark.closed_loop.simulate(
                &self.benchmark.initial_state,
                self.benchmark.horizon,
                &self.benchmark.noise,
                None,
                self.seed.wrapping_add(trial as u64),
            );
            // The paper samples noise "from a suitably small range such that
            // pfc is maintained" and then discards rollouts flagged by mdc.
            let pfc_ok = self
                .benchmark
                .performance
                .satisfied_by(trace.states().last().expect("non-empty trace"));
            let mdc_quiet = !self
                .benchmark
                .monitors
                .evaluate(trace.measurements())
                .alarmed();
            if pfc_ok && mdc_quiet {
                kept.push(trace);
            }
        }
        kept
    }

    /// Runs the experiment against a set of named detectors.
    pub fn run(&self, detectors: &[(&str, &dyn Detector)]) -> FarReport {
        let kept = self.noise_traces();
        let rates = detectors
            .iter()
            .map(|(name, detector)| ((*name).to_string(), false_alarm_rate(*detector, &kept)))
            .collect();
        FarReport {
            generated: self.num_trials,
            kept: kept.len(),
            discarded: self.num_trials - kept.len(),
            rates,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cps_control::ResidueNorm;
    use cps_detectors::{ThresholdDetector, ThresholdSpec};

    #[test]
    fn noise_traces_pass_the_filter_by_construction() {
        let benchmark = cps_models::trajectory_tracking().unwrap();
        let experiment = FarExperiment::new(&benchmark, 50, 7);
        let traces = experiment.noise_traces();
        assert!(
            !traces.is_empty(),
            "the nominal noise level should pass the filter"
        );
        for trace in &traces {
            assert!(benchmark
                .performance
                .satisfied_by(trace.states().last().unwrap()));
            assert!(!benchmark.monitors.evaluate(trace.measurements()).alarmed());
        }
    }

    #[test]
    fn far_orders_detectors_by_threshold_tightness() {
        let benchmark = cps_models::trajectory_tracking().unwrap();
        let experiment = FarExperiment::new(&benchmark, 80, 11);
        let horizon = benchmark.horizon;
        let tight =
            ThresholdDetector::new(ThresholdSpec::constant(1e-4, horizon), ResidueNorm::Linf);
        let loose =
            ThresholdDetector::new(ThresholdSpec::constant(1.0, horizon), ResidueNorm::Linf);
        let report = experiment.run(&[("tight", &tight), ("loose", &loose)]);
        assert_eq!(report.generated, 80);
        assert_eq!(report.kept + report.discarded, 80);
        let tight_rate = report.rate_of("tight").unwrap();
        let loose_rate = report.rate_of("loose").unwrap();
        assert!(tight_rate >= loose_rate);
        assert!(tight_rate > 0.9, "a near-zero threshold alarms on noise");
        assert!(loose_rate < 0.1, "a huge threshold rarely alarms on noise");
        assert_eq!(report.rate_of("missing"), None);
    }
}
