//! Formal synthesis of residue-based attack detectors with variable
//! thresholds — the primary contribution of *Koley et al., "Formal Synthesis
//! of Monitoring and Detection Systems for Secure CPS Implementations"*
//! (DATE 2020).
//!
//! The crate ties the workspace's substrates together:
//!
//! - [`UnrolledLoop`] symbolically unrolls the closed-loop implementation of a
//!   [`Benchmark`](cps_models::Benchmark) over its horizon, expressing every
//!   residue, monitored measurement and the final state as affine functions of
//!   the attacker's per-step sensor injections;
//! - [`AttackSynthesizer`] is **Algorithm 1**: an SMT query (solved by
//!   [`cps_smt`], the crate's Z3 substitute) asking for a *stealthy but
//!   successful* false-data-injection attack — one that keeps every residue
//!   below the current threshold, never trips the plant monitors, yet
//!   prevents the performance criterion from being met;
//! - [`PivotSynthesizer`] is **Algorithm 2** (pivot-based threshold
//!   synthesis) and [`StepwiseSynthesizer`] is **Algorithm 3** (step-wise
//!   threshold synthesis): CEGIS loops that keep asking Algorithm 1 for
//!   counterexamples and tighten a monotonically decreasing threshold vector
//!   until no stealthy attack remains;
//! - [`synthesize_static_threshold`] is the provably-safe *static* baseline
//!   the paper compares against;
//! - [`FarExperiment`] reproduces the paper's false-alarm-rate comparison
//!   (1000 random bounded noise rollouts, monitor-filtered, evaluated against
//!   each synthesised detector);
//! - [`LpAttackSynthesizer`] is an ablation that replaces the full SMT query
//!   by a linear program maximising the terminal deviation under conjunctive
//!   stealth constraints.
//!
//! # Quick start
//!
//! ```
//! use secure_cps::{AttackSynthesizer, SynthesisConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let benchmark = cps_models::trajectory_tracking()?;
//! let synthesizer = AttackSynthesizer::new(&benchmark, SynthesisConfig::default());
//! // Without any residue detector the tracking loop is attackable.
//! let attack = synthesizer.synthesize(None)?;
//! assert!(attack.is_some());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod attack;
mod encoder;
mod far;
mod lp_attack;
mod static_baseline;
mod stepwise;
mod synthesis;

pub use attack::{AttackSynthesizer, MonitorEncoding, SynthesisConfig, SynthesizedAttack};
pub use encoder::UnrolledLoop;
pub use far::{FarExperiment, FarReport};
pub use lp_attack::LpAttackSynthesizer;
pub use static_baseline::synthesize_static_threshold;
pub use stepwise::StepwiseSynthesizer;
pub use synthesis::{
    ConvergenceStatus, PivotSynthesizer, SynthesisError, SynthesisOutcome, SynthesisReport,
};

/// Partial threshold vector used during synthesis: `None` means "no detector
/// check at this instant" (the paper's `Th[i] = 0`), `Some(v)` means the
/// residue norm must stay strictly below `v` to remain stealthy.
pub type PartialThreshold = Vec<Option<f64>>;

/// Converts a partial threshold vector into a [`ThresholdSpec`](cps_detectors::ThresholdSpec)
/// (unchecked instants become `+∞`, i.e. they never alarm).
///
/// # Panics
///
/// Panics if `partial` is empty.
pub fn partial_to_spec(partial: &PartialThreshold) -> cps_detectors::ThresholdSpec {
    assert!(!partial.is_empty(), "threshold horizon must be non-empty");
    cps_detectors::ThresholdSpec::variable(
        partial
            .iter()
            .map(|entry| entry.unwrap_or(f64::INFINITY))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partial_to_spec_maps_unchecked_to_infinity() {
        let partial = vec![None, Some(0.5), None];
        let spec = partial_to_spec(&partial);
        assert!(spec.value_at(0).is_infinite());
        assert_eq!(spec.value_at(1), 0.5);
        assert!(spec.value_at(2).is_infinite());
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_partial_threshold_is_rejected() {
        let _ = partial_to_spec(&Vec::new());
    }
}
