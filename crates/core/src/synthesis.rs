use std::any::Any;
use std::error::Error;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

use cps_detectors::ThresholdSpec;
use cps_models::Benchmark;
use cps_smt::{Budget, InterruptReason, SmtError, SolverStats};

use crate::{
    partial_to_spec, AttackSynthesizer, PartialThreshold, SynthesisConfig, SynthesizedAttack,
};

/// Smallest threshold value the synthesis algorithms will install. A floor
/// avoids the degenerate "threshold zero" detector (which alarms on every
/// sample, including pure noise) when a counterexample attack happens to
/// produce a numerically zero residue at the chosen instant.
pub(crate) const MIN_THRESHOLD: f64 = 1e-6;

/// Errors of the CEGIS threshold-synthesis loops.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SynthesisError {
    /// An Algorithm 1 query failed for a reason other than a resource
    /// interruption (interruptions degrade gracefully into a report with
    /// [`ConvergenceStatus::Interrupted`] instead of erroring).
    Solver(SmtError),
    /// A panic escaped a synthesis run and was caught at the run boundary.
    /// The warm solver is discarded so the next run rebuilds it from the
    /// symbolic unrolling; the payload's message is preserved for diagnosis.
    Panicked(String),
}

impl fmt::Display for SynthesisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SynthesisError::Solver(err) => write!(f, "attack-synthesis query failed: {err}"),
            SynthesisError::Panicked(message) => {
                write!(
                    f,
                    "synthesis run panicked (solver state discarded): {message}"
                )
            }
        }
    }
}

impl Error for SynthesisError {}

impl From<SmtError> for SynthesisError {
    fn from(err: SmtError) -> Self {
        SynthesisError::Solver(err)
    }
}

/// How a threshold-synthesis run ended (recorded in
/// [`SynthesisReport::status`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ConvergenceStatus {
    /// The final query returned an `UNSAT` certificate at the full analysis
    /// horizon: no stealthy attack remains.
    Converged,
    /// The round limit stopped the loop before a certificate was obtained.
    RoundLimit,
    /// A counterexample admitted no progress (every residue numerically
    /// zero, or no staircase cut can exclude it); looping further would
    /// re-derive the same counterexample forever.
    Stalled,
    /// A query was interrupted — deadline, cancellation or a search cap —
    /// and the loop degraded gracefully: every round completed before the
    /// interruption is kept and the report carries the best-so-far
    /// thresholds.
    Interrupted {
        /// The CEGIS round whose query was interrupted (0 = the initial
        /// undefended-loop query).
        round: usize,
        /// Which budget axis tripped.
        reason: InterruptReason,
    },
}

impl ConvergenceStatus {
    /// `true` for [`ConvergenceStatus::Converged`].
    pub fn is_converged(self) -> bool {
        matches!(self, ConvergenceStatus::Converged)
    }
}

/// Converts a run-level [`SynthesisConfig::timeout`] into an absolute
/// deadline on `budget`, keeping the earlier deadline when both are set.
pub(crate) fn arm_budget(budget: Budget, timeout: Option<Duration>) -> Budget {
    match timeout {
        Some(timeout) => {
            let deadline = Instant::now() + timeout;
            let deadline = budget.deadline().map_or(deadline, |d| d.min(deadline));
            budget.with_deadline(deadline)
        }
        None => budget,
    }
}

/// Best-effort extraction of a panic payload's message.
pub(crate) fn panic_message(payload: Box<dyn Any + Send>) -> String {
    if let Some(message) = payload.downcast_ref::<&str>() {
        (*message).to_string()
    } else if let Some(message) = payload.downcast_ref::<String>() {
        message.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// One Algorithm 1 query as seen by the CEGIS loops: a decided verdict, or a
/// typed interruption the loop absorbs into a graceful partial report.
pub(crate) enum QueryOutcome {
    /// The query was decided: a counterexample attack, or `None` for an
    /// `UNSAT` certificate.
    Decided(Option<SynthesizedAttack>),
    /// The query was interrupted before a verdict.
    Interrupted(InterruptReason),
}

/// Runs one Algorithm 1 query, folds its statistics into the running totals
/// and the per-round log, and converts a typed interruption into
/// [`QueryOutcome::Interrupted`]. Any other solver error propagates.
pub(crate) fn cegis_query(
    synthesizer: &AttackSynthesizer<'_>,
    threshold: Option<&[Option<f64>]>,
    stats: &mut SolverStats,
    round_stats: &mut Vec<SolverStats>,
) -> Result<QueryOutcome, SynthesisError> {
    let result = synthesizer.synthesize(threshold);
    // The per-query statistics are recorded even for an interrupted query
    // (the solver sets them before unwinding), so interrupted work is
    // attributable rather than silently discarded.
    let last = synthesizer.last_solver_stats();
    stats.absorb(&last);
    round_stats.push(last);
    match result {
        Ok(attack) => Ok(QueryOutcome::Decided(attack)),
        Err(SmtError::Interrupted { reason, .. }) => Ok(QueryOutcome::Interrupted(reason)),
        Err(err) => Err(err.into()),
    }
}

/// Result of a threshold-synthesis run.
#[derive(Debug, Clone, PartialEq)]
pub struct SynthesisReport {
    /// The synthesised per-instant thresholds (`None` = no check there).
    pub partial: PartialThreshold,
    /// Number of CEGIS rounds (counterexample queries after the initial one).
    pub rounds: usize,
    /// Number of counterexample attacks that were found and eliminated.
    pub attacks_eliminated: usize,
    /// `true` when the final query proved that no stealthy attack remains —
    /// i.e. the run ended on a per-round **UNSAT certificate** at the full
    /// analysis horizon. Equivalent to `status.is_converged()`; kept as a
    /// field for ergonomic filtering.
    pub converged: bool,
    /// How the run ended: certificate, round limit, stall, or a typed
    /// interruption with the round it hit. A non-converged report still
    /// carries the best-so-far thresholds of every completed round.
    pub status: ConvergenceStatus,
    /// Solver statistics accumulated over every Algorithm 1 query of the run
    /// (including the certifying final UNSAT query), for perf attribution of
    /// the CEGIS loop as a whole.
    pub solver_stats: SolverStats,
    /// Per-query statistics in execution order (index 0 is the initial
    /// undefended-loop query). An interrupted query still contributes its
    /// entry — the work done before the trip is attributable.
    pub round_stats: Vec<SolverStats>,
}

impl SynthesisReport {
    /// The synthesised thresholds as a detector-ready [`ThresholdSpec`]
    /// (unchecked instants become `+∞`).
    pub fn threshold_spec(&self) -> ThresholdSpec {
        partial_to_spec(&self.partial)
    }

    /// `true` when the synthesised vector is monotonically decreasing over the
    /// *checked* instants — the structural property both algorithms maintain.
    pub fn is_monotone_decreasing(&self) -> bool {
        let values: Vec<f64> = self.partial.iter().filter_map(|v| *v).collect();
        values.windows(2).all(|w| w[1] <= w[0] + 1e-9)
    }
}

/// Convenience alias for the result of a synthesis run.
pub type SynthesisOutcome = Result<SynthesisReport, SynthesisError>;

/// Algorithm 2 — pivot-based threshold synthesis.
///
/// Starting from the undefended loop, the algorithm repeatedly asks
/// Algorithm 1 for a stealthy successful attack, then installs or tightens a
/// threshold at a *pivot* instant derived from that attack's residues:
///
/// - **Case 1a** — a new threshold before an existing one, at the instant with
///   the largest residue exceeding that existing threshold;
/// - **Case 1b** — a new threshold after the existing ones, at the instant
///   with the largest residue that still respects monotonicity;
/// - **Case 1c** — when no new instant helps, the existing threshold whose
///   value is closest to the attack's residue is reduced to that residue (and
///   later thresholds are clamped to keep the vector monotonically
///   decreasing).
///
/// The loop terminates when Algorithm 1 proves no stealthy attack remains.
///
/// With [`cps_smt::SolverConfig::incremental_rounds`] on (the default) every
/// round's query runs on **one** long-lived solver held by the underlying
/// [`AttackSynthesizer`]: the round-invariant encoding is asserted once and
/// each round's threshold constraints live in a `push`/`pop` scope, so the
/// per-round encoding cost drops to the threshold atoms alone. The verdicts,
/// models and synthesised thresholds are bit-identical to fresh-per-round
/// mode; [`SynthesisReport::solver_stats`]'s `scopes_reused` counts the
/// warm-served rounds.
#[derive(Debug)]
pub struct PivotSynthesizer<'a> {
    synthesizer: AttackSynthesizer<'a>,
    max_rounds: usize,
}

impl<'a> PivotSynthesizer<'a> {
    /// Default bound on the number of CEGIS rounds.
    pub const DEFAULT_MAX_ROUNDS: usize = 64;

    /// Creates the synthesizer for a benchmark.
    pub fn new(benchmark: &'a Benchmark, config: SynthesisConfig) -> Self {
        Self {
            synthesizer: AttackSynthesizer::new(benchmark, config),
            max_rounds: Self::DEFAULT_MAX_ROUNDS,
        }
    }

    /// Overrides the round limit (builder style).
    pub fn with_max_rounds(mut self, max_rounds: usize) -> Self {
        self.max_rounds = max_rounds.max(1);
        self
    }

    /// The underlying Algorithm 1 instance.
    pub fn attack_synthesizer(&self) -> &AttackSynthesizer<'a> {
        &self.synthesizer
    }

    /// Applies the convergence margin when installing a threshold at a
    /// counterexample residue value.
    fn shrink(&self, value: f64) -> f64 {
        (value * (1.0 - self.synthesizer.config().convergence_margin)).max(MIN_THRESHOLD)
    }

    /// Runs the CEGIS loop.
    ///
    /// A [`SynthesisConfig::timeout`] (or any budget installed via
    /// [`AttackSynthesizer::set_budget`]) degrades gracefully: an interrupted
    /// query ends the run with [`ConvergenceStatus::Interrupted`] and the
    /// best-so-far thresholds of every completed round. Panics anywhere in
    /// the run are caught at this boundary, the warm solver is discarded (the
    /// next run rebuilds it from the symbolic unrolling), and the panic
    /// surfaces as [`SynthesisError::Panicked`].
    ///
    /// # Errors
    ///
    /// [`SynthesisError::Solver`] for non-interruption solver failures (e.g.
    /// a non-finite assertion) and [`SynthesisError::Panicked`] for a caught
    /// panic. Resource interruptions are **not** errors.
    pub fn run(&self) -> SynthesisOutcome {
        let saved = self.synthesizer.budget();
        self.synthesizer
            .set_budget(arm_budget(saved, self.synthesizer.config().timeout));
        let outcome = catch_unwind(AssertUnwindSafe(|| self.run_inner()));
        self.synthesizer.set_budget(saved);
        match outcome {
            Ok(result) => result,
            Err(payload) => {
                self.synthesizer.reset_warm_solver();
                Err(SynthesisError::Panicked(panic_message(payload)))
            }
        }
    }

    fn run_inner(&self) -> SynthesisOutcome {
        let horizon = self.synthesizer.horizon();
        let mut th: PartialThreshold = vec![None; horizon];
        let mut rounds = 0;
        let mut attacks = 0;
        let mut stats = SolverStats::default();
        let mut round_stats = Vec::new();

        let report = |partial: PartialThreshold,
                      rounds: usize,
                      attacks: usize,
                      status: ConvergenceStatus,
                      stats: SolverStats,
                      round_stats: Vec<SolverStats>| {
            Ok(SynthesisReport {
                partial,
                rounds,
                attacks_eliminated: attacks,
                converged: status.is_converged(),
                status,
                solver_stats: stats,
                round_stats,
            })
        };

        // Line 3: can the existing monitors alone be bypassed?
        let initial = match cegis_query(&self.synthesizer, None, &mut stats, &mut round_stats)? {
            QueryOutcome::Decided(result) => result,
            QueryOutcome::Interrupted(reason) => {
                let status = ConvergenceStatus::Interrupted { round: 0, reason };
                return report(th, rounds, attacks, status, stats, round_stats);
            }
        };
        let Some(initial) = initial else {
            return report(
                th,
                rounds,
                attacks,
                ConvergenceStatus::Converged,
                stats,
                round_stats,
            );
        };
        attacks += 1;
        // Lines 4–5: pivot at the instant of maximum residue.
        let (pivot, value) = initial.pivot();
        th[pivot] = Some(self.shrink(value));

        loop {
            rounds += 1;
            if rounds > self.max_rounds {
                return report(
                    th,
                    rounds - 1,
                    attacks,
                    ConvergenceStatus::RoundLimit,
                    stats,
                    round_stats,
                );
            }
            let attack =
                match cegis_query(&self.synthesizer, Some(&th), &mut stats, &mut round_stats)? {
                    QueryOutcome::Decided(result) => result,
                    QueryOutcome::Interrupted(reason) => {
                        let status = ConvergenceStatus::Interrupted {
                            round: rounds,
                            reason,
                        };
                        return report(th, rounds - 1, attacks, status, stats, round_stats);
                    }
                };
            let Some(attack) = attack else {
                return report(
                    th,
                    rounds,
                    attacks,
                    ConvergenceStatus::Converged,
                    stats,
                    round_stats,
                );
            };
            attacks += 1;
            let z = &attack.residue_norms;
            let progressed =
                self.case_1a(&mut th, z) || self.case_1b(&mut th, z) || self.case_1c(&mut th, z);
            if !progressed {
                // Every residue of the counterexample is numerically zero:
                // no threshold adjustment can exclude it (see `MIN_THRESHOLD`).
                // Report the partial result instead of looping forever.
                return report(
                    th,
                    rounds,
                    attacks,
                    ConvergenceStatus::Stalled,
                    stats,
                    round_stats,
                );
            }
        }
    }

    /// Largest existing threshold strictly after instant `i` (for the
    /// monotonicity check when inserting a new threshold at `i`).
    fn max_after(th: &[Option<f64>], i: usize) -> f64 {
        th.iter().skip(i + 1).filter_map(|v| *v).fold(0.0, f64::max)
    }

    /// Smallest existing threshold strictly before instant `i`.
    fn min_before(th: &[Option<f64>], i: usize) -> f64 {
        th.iter()
            .take(i)
            .filter_map(|v| *v)
            .fold(f64::INFINITY, f64::min)
    }

    /// Case 1a: a new threshold before an existing one, at the unchecked
    /// instant with the largest residue that reaches the existing threshold.
    fn case_1a(&self, th: &mut PartialThreshold, z: &[f64]) -> bool {
        let horizon = th.len();
        for p in 0..horizon {
            let Some(th_p) = th[p] else { continue };
            let candidate = (0..p)
                .filter(|k| th[*k].is_none() && z[*k] >= th_p && z[*k] > MIN_THRESHOLD)
                .max_by(|a, b| z[*a].total_cmp(&z[*b]));
            if let Some(i) = candidate {
                let value = self
                    .shrink(z[i])
                    .min(Self::min_before(th, i))
                    .max(MIN_THRESHOLD);
                if value >= Self::max_after(th, i) {
                    th[i] = Some(value);
                    return true;
                }
            }
        }
        false
    }

    /// Case 1b: a new threshold after the existing ones, at the unchecked
    /// instant with the largest residue, provided monotonicity survives.
    fn case_1b(&self, th: &mut PartialThreshold, z: &[f64]) -> bool {
        let horizon = th.len();
        for p in 0..horizon {
            if th[p].is_none() {
                continue;
            }
            let candidate = ((p + 1)..horizon)
                .filter(|k| th[*k].is_none() && z[*k] > MIN_THRESHOLD)
                .max_by(|a, b| z[*a].total_cmp(&z[*b]));
            if let Some(i) = candidate {
                let later_ok = ((i + 1)..horizon).all(|k| th[k].is_none_or(|v| z[i] >= v));
                if later_ok {
                    let value = self
                        .shrink(z[i])
                        .min(Self::min_before(th, i))
                        .max(MIN_THRESHOLD);
                    th[i] = Some(value);
                    return true;
                }
            }
        }
        false
    }

    /// Case 1c: reduce the threshold whose value is closest to the attack's
    /// residue at that instant ("minimum effort"), then clamp later
    /// thresholds to keep the vector monotonically decreasing.
    ///
    /// Only instants whose residue is large enough that the reduced threshold
    /// actually detects the current counterexample are candidates — otherwise
    /// the CEGIS loop would admit the same counterexample forever (a corner
    /// case the paper's pseudocode leaves implicit).
    fn case_1c(&self, th: &mut PartialThreshold, z: &[f64]) -> bool {
        let horizon = th.len();
        let candidate = (0..horizon)
            .filter(|k| z[*k] >= MIN_THRESHOLD)
            .filter(|k| th[*k].is_none_or(|v| v > self.shrink(z[*k])))
            .min_by(|a, b| {
                let da = th[*a].unwrap_or(f64::INFINITY) - z[*a];
                let db = th[*b].unwrap_or(f64::INFINITY) - z[*b];
                da.total_cmp(&db)
            });
        let Some(i) = candidate else { return false };
        let value = self.shrink(z[i]).min(Self::min_before(th, i));
        th[i] = Some(value);
        for k in (i + 1)..horizon {
            if let Some(v) = th[k] {
                if v > value {
                    th[k] = Some(value);
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cps_control::ResidueNorm;
    use cps_detectors::{Detector, ThresholdDetector};

    /// Configuration used by the CEGIS unit tests: a larger convergence margin
    /// keeps the round count small enough for debug-mode test runs.
    fn test_config() -> SynthesisConfig {
        SynthesisConfig {
            convergence_margin: 0.25,
            ..SynthesisConfig::default()
        }
    }

    #[test]
    fn pivot_synthesis_secures_the_trajectory_benchmark() {
        let benchmark = cps_models::trajectory_tracking().unwrap();
        let synthesizer = PivotSynthesizer::new(&benchmark, test_config()).with_max_rounds(400);
        let report = synthesizer.run().expect("synthesis runs");
        assert!(report.converged, "synthesis should converge");
        assert!(report.attacks_eliminated >= 1);
        assert!(report.is_monotone_decreasing());
        assert!(
            report.partial.iter().any(|v| v.is_some()),
            "at least one threshold must be installed"
        );

        // No stealthy attack remains under the synthesised thresholds.
        let attack_synth = synthesizer.attack_synthesizer();
        assert!(attack_synth
            .synthesize(Some(&report.partial))
            .unwrap()
            .is_none());

        // The attack found for the undefended loop is detected by the detector.
        let undefended = attack_synth.synthesize(None).unwrap().unwrap();
        let detector = ThresholdDetector::new(report.threshold_spec(), ResidueNorm::Linf);
        assert!(
            detector.detects(&undefended.trace),
            "synthesised detector must catch the undefended attack"
        );
    }

    #[test]
    fn round_limit_is_honoured() {
        let benchmark = cps_models::trajectory_tracking().unwrap();
        let synthesizer = PivotSynthesizer::new(&benchmark, test_config()).with_max_rounds(1);
        let report = synthesizer.run().expect("synthesis runs");
        assert!(report.rounds <= 1);
    }

    #[test]
    fn report_helpers() {
        let report = SynthesisReport {
            partial: vec![None, Some(0.5), Some(0.25)],
            rounds: 3,
            attacks_eliminated: 3,
            converged: true,
            status: ConvergenceStatus::Converged,
            solver_stats: cps_smt::SolverStats::default(),
            round_stats: Vec::new(),
        };
        assert!(report.is_monotone_decreasing());
        let spec = report.threshold_spec();
        assert!(spec.value_at(0).is_infinite());
        assert_eq!(spec.value_at(2), 0.25);

        let bad = SynthesisReport {
            partial: vec![Some(0.1), Some(0.5)],
            rounds: 1,
            attacks_eliminated: 1,
            converged: true,
            status: ConvergenceStatus::Converged,
            solver_stats: cps_smt::SolverStats::default(),
            round_stats: Vec::new(),
        };
        assert!(!bad.is_monotone_decreasing());
    }
}
