use cps_linalg::Matrix;
use cps_models::Benchmark;
use cps_monitors::MeasurementSymbols;
use cps_smt::{LinExpr, VarId, VarPool};

/// Symbolic unrolling of a benchmark's closed-loop implementation.
///
/// Every quantity of the loop — plant state, estimator state, control input,
/// (attacked) measurement, residue — is an *affine* function of the attacker's
/// per-step injections, because the plant, estimator and controller are all
/// linear and their gains are known numerically. `UnrolledLoop` performs that
/// forward substitution once and exposes the resulting [`LinExpr`]s; the
/// attack and threshold synthesis algorithms then only add constraints over
/// them.
///
/// The unrolling mirrors Algorithm 1 of the paper line by line (initialisation
/// at line 2, the per-step updates at lines 4–8), with process and measurement
/// noise set to zero exactly as in the algorithm.
#[derive(Debug)]
pub struct UnrolledLoop {
    vars: VarPool,
    /// `attack_vars[k][i]` is the injection on `attacked_sensors[i]` at step `k`.
    attack_vars: Vec<Vec<VarId>>,
    /// Which measurement component each attack variable column falsifies.
    attacked_sensors: Vec<usize>,
    /// Residue expressions `z_k[j]`, indexed `[k][j]`.
    residues: Vec<Vec<LinExpr>>,
    /// Attacked measurement expressions `ỹ_k[j]` (what the monitors see).
    measurements: Vec<Vec<LinExpr>>,
    /// Plant state expressions `x_k[i]`, indexed `[k][i]` with `k = 0..=T`.
    states: Vec<Vec<LinExpr>>,
    horizon: usize,
}

impl UnrolledLoop {
    /// Unrolls `benchmark.closed_loop` over `benchmark.horizon` steps.
    pub fn new(benchmark: &Benchmark) -> Self {
        Self::with_horizon(benchmark, benchmark.horizon)
    }

    /// Unrolls the loop over an explicit horizon (used by reduced-size tests
    /// and ablations).
    pub fn with_horizon(benchmark: &Benchmark, horizon: usize) -> Self {
        let plant = benchmark.closed_loop.plant();
        let n = plant.num_states();
        let p = plant.num_outputs();
        let attacked = benchmark.attacked_sensors.clone();

        let mut vars = VarPool::new();
        let mut attack_vars = Vec::with_capacity(horizon);
        for k in 0..horizon {
            attack_vars.push(
                attacked
                    .iter()
                    .map(|s| vars.fresh(format!("a_{k}_{s}")))
                    .collect::<Vec<_>>(),
            );
        }

        // Affine state vectors as vectors of expressions.
        let constant_vec = |values: &[f64]| -> Vec<LinExpr> {
            values.iter().map(|v| LinExpr::constant(*v)).collect()
        };
        let mat_vec = |m: &Matrix, v: &[LinExpr]| -> Vec<LinExpr> {
            (0..m.rows())
                .map(|i| {
                    let mut acc = LinExpr::zero();
                    for (j, expr) in v.iter().enumerate() {
                        let coeff = m[(i, j)];
                        if coeff != 0.0 {
                            acc = acc + expr.clone().scale(coeff);
                        }
                    }
                    acc
                })
                .collect()
        };
        let add = |a: &[LinExpr], b: &[LinExpr]| -> Vec<LinExpr> {
            a.iter()
                .zip(b.iter())
                .map(|(x, y)| x.clone() + y.clone())
                .collect()
        };
        let sub = |a: &[LinExpr], b: &[LinExpr]| -> Vec<LinExpr> {
            a.iter()
                .zip(b.iter())
                .map(|(x, y)| x.clone() - y.clone())
                .collect()
        };

        let k_gain = benchmark.closed_loop.controller_gain();
        let l_gain = benchmark.closed_loop.estimator_gain();
        let x_des = constant_vec(benchmark.closed_loop.reference().x_des().as_slice());
        let u_eq = constant_vec(benchmark.closed_loop.reference().u_eq().as_slice());

        let mut x = constant_vec(benchmark.initial_state.as_slice());
        let mut xhat = constant_vec(&vec![0.0; n]);

        let mut residues = Vec::with_capacity(horizon);
        let mut measurements = Vec::with_capacity(horizon);
        let mut states = Vec::with_capacity(horizon + 1);
        states.push(x.clone());

        for step_vars in attack_vars.iter().take(horizon) {
            // u_k = u_eq − K (x̂_k − x_des)
            let error = sub(&xhat, &x_des);
            let u = sub(&u_eq, &mat_vec(k_gain, &error));

            // ỹ_k = C x_k + D u_k + a_k (attacked sensors only)
            let mut y = add(&mat_vec(plant.c(), &x), &mat_vec(plant.d(), &u));
            for (i, sensor) in attacked.iter().enumerate() {
                y[*sensor] = y[*sensor].clone() + LinExpr::var(step_vars[i]);
            }

            // z_k = ỹ_k − (C x̂_k + D u_k)
            let y_hat = add(&mat_vec(plant.c(), &xhat), &mat_vec(plant.d(), &u));
            let z = sub(&y, &y_hat);

            // Plant and estimator updates.
            let x_next = add(&mat_vec(plant.a(), &x), &mat_vec(plant.b(), &u));
            let xhat_next = add(
                &add(&mat_vec(plant.a(), &xhat), &mat_vec(plant.b(), &u)),
                &mat_vec(l_gain, &z),
            );

            measurements.push(y);
            residues.push(z);
            x = x_next;
            xhat = xhat_next;
            states.push(x.clone());
        }

        let _ = p;
        Self {
            vars,
            attack_vars,
            attacked_sensors: attacked,
            residues,
            measurements,
            states,
            horizon,
        }
    }

    /// The variable pool containing all attack variables.
    pub fn vars(&self) -> &VarPool {
        &self.vars
    }

    /// Consumes the unrolling and returns the variable pool (needed to build a
    /// solver over the same variables).
    pub fn vars_cloned(&self) -> VarPool {
        self.vars.clone()
    }

    /// The analysis horizon `T`.
    pub fn horizon(&self) -> usize {
        self.horizon
    }

    /// Attack variable for step `k` and attacked-sensor column `i`.
    pub fn attack_var(&self, k: usize, i: usize) -> VarId {
        self.attack_vars[k][i]
    }

    /// The measurement components the attacker can falsify.
    pub fn attacked_sensors(&self) -> &[usize] {
        &self.attacked_sensors
    }

    /// Residue expressions `z_k[j]`.
    pub fn residue(&self, k: usize, j: usize) -> &LinExpr {
        &self.residues[k][j]
    }

    /// Number of residue components per step.
    pub fn num_residue_components(&self) -> usize {
        self.residues.first().map_or(0, Vec::len)
    }

    /// Attacked measurement expressions wrapped for the monitor encoders.
    pub fn measurement_symbols(&self) -> MeasurementSymbols {
        MeasurementSymbols::new(self.measurements.clone())
    }

    /// Affine expressions of the final plant state `x_T`.
    pub fn final_state(&self) -> &[LinExpr] {
        self.states.last().expect("at least the initial state")
    }

    /// Affine expressions of the plant state at step `k` (0-based, up to `T`).
    pub fn state(&self, k: usize) -> &[LinExpr] {
        &self.states[k]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cps_control::SensorAttack;
    use cps_linalg::Vector;

    /// The symbolic unrolling evaluated at a concrete attack vector must match
    /// the closed-loop simulator exactly (both are noise-free).
    #[test]
    fn unrolling_matches_simulation_on_concrete_attacks() {
        let benchmark = cps_models::trajectory_tracking().unwrap();
        let unrolled = UnrolledLoop::new(&benchmark);
        let horizon = benchmark.horizon;

        // A concrete attack: ramp injection on the single attacked sensor.
        let injections: Vec<Vector> = (0..horizon)
            .map(|k| Vector::from_slice(&[0.01 * k as f64]))
            .collect();
        let attack = SensorAttack::new(injections.clone());

        // Assignment for the attack variables (one per step).
        let mut assignment = vec![0.0; unrolled.vars().len()];
        for (k, injection) in injections.iter().enumerate() {
            assignment[unrolled.attack_var(k, 0).index()] = injection[0];
        }

        let trace = benchmark.closed_loop.simulate(
            &benchmark.initial_state,
            horizon,
            &cps_control::NoiseModel::none(2, 1),
            Some(&attack),
            0,
        );

        for k in 0..horizon {
            let simulated = &trace.residues()[k];
            for j in 0..unrolled.num_residue_components() {
                let symbolic = unrolled.residue(k, j).evaluate(&assignment);
                assert!(
                    (symbolic - simulated[j]).abs() < 1e-9,
                    "residue mismatch at step {k}, component {j}: {symbolic} vs {}",
                    simulated[j]
                );
            }
            let simulated_y = &trace.measurements()[k];
            let symbols = unrolled.measurement_symbols();
            for j in 0..simulated_y.len() {
                let symbolic = symbols.measurement(k, j).evaluate(&assignment);
                assert!(
                    (symbolic - simulated_y[j]).abs() < 1e-9,
                    "measurement mismatch at step {k}, component {j}"
                );
            }
        }
        // Final state agreement.
        let final_sim = trace.states().last().unwrap();
        for (i, expr) in unrolled.final_state().iter().enumerate() {
            assert!((expr.evaluate(&assignment) - final_sim[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn attack_free_unrolling_has_zero_residues() {
        let benchmark = cps_models::trajectory_tracking().unwrap();
        let unrolled = UnrolledLoop::new(&benchmark);
        let assignment = vec![0.0; unrolled.vars().len()];
        for k in 0..unrolled.horizon() {
            for j in 0..unrolled.num_residue_components() {
                assert!(unrolled.residue(k, j).evaluate(&assignment).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn reduced_horizon_unrolling() {
        let benchmark = cps_models::vsc().unwrap();
        let unrolled = UnrolledLoop::with_horizon(&benchmark, 5);
        assert_eq!(unrolled.horizon(), 5);
        assert_eq!(
            unrolled.vars().len(),
            5 * 2,
            "two attacked sensors per step"
        );
        assert_eq!(unrolled.num_residue_components(), 2);
        assert_eq!(unrolled.measurement_symbols().len(), 5);
        assert_eq!(unrolled.state(0).len(), 2);
    }
}
