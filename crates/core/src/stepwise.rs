use std::panic::{catch_unwind, AssertUnwindSafe};

use cps_models::Benchmark;
use cps_smt::SolverStats;

use crate::synthesis::{
    arm_budget, cegis_query, panic_message, QueryOutcome, SynthesisOutcome, SynthesisReport,
    MIN_THRESHOLD,
};
use crate::{
    AttackSynthesizer, ConvergenceStatus, PartialThreshold, SynthesisConfig, SynthesisError,
};

/// Algorithm 3 — step-wise threshold synthesis.
///
/// Instead of placing individual pivots, the algorithm maintains a *staircase*
/// approximation of the threshold curve:
///
/// - **Phase 1 (step formation)** grows the staircase from the front: the
///   first step covers the prefix up to the undefended attack's residue peak;
///   each subsequent counterexample appends a lower step ending at its own
///   residue peak, until the staircase covers the whole horizon.
/// - **Phase 2 (step reduction)** handles counterexamples that slip under the
///   staircase: among all instants `k` where lowering the suffix of the
///   staircase to the attack's residue `‖z_k‖` would detect the attack, it
///   picks the one removing the *minimum area* from under the threshold curve
///   (the `MINAREARECTANGLE` heuristic of the paper) and applies that cut.
///
/// Both phases preserve the staircase's monotonically decreasing shape. The
/// loop terminates when Algorithm 1 proves that no stealthy attack remains.
///
/// Like [`PivotSynthesizer`](crate::PivotSynthesizer), the loop runs all its
/// Algorithm 1 queries on one warm solver when
/// [`cps_smt::SolverConfig::incremental_rounds`] is on: round thresholds are
/// pushed and popped over the once-asserted base encoding, with bit-identical
/// results to fresh-per-round mode.
#[derive(Debug)]
pub struct StepwiseSynthesizer<'a> {
    synthesizer: AttackSynthesizer<'a>,
    max_rounds: usize,
}

impl<'a> StepwiseSynthesizer<'a> {
    /// Default bound on the number of CEGIS rounds.
    pub const DEFAULT_MAX_ROUNDS: usize = 64;

    /// Creates the synthesizer for a benchmark.
    pub fn new(benchmark: &'a Benchmark, config: SynthesisConfig) -> Self {
        Self {
            synthesizer: AttackSynthesizer::new(benchmark, config),
            max_rounds: Self::DEFAULT_MAX_ROUNDS,
        }
    }

    /// Overrides the round limit (builder style).
    pub fn with_max_rounds(mut self, max_rounds: usize) -> Self {
        self.max_rounds = max_rounds.max(1);
        self
    }

    /// The underlying Algorithm 1 instance.
    pub fn attack_synthesizer(&self) -> &AttackSynthesizer<'a> {
        &self.synthesizer
    }

    /// Applies the convergence margin when installing a step at a
    /// counterexample residue value (see
    /// [`SynthesisConfig::convergence_margin`]).
    fn shrink(&self, value: f64) -> f64 {
        (value * (1.0 - self.synthesizer.config().convergence_margin)).max(MIN_THRESHOLD)
    }

    /// Runs the CEGIS loop.
    ///
    /// Degrades and recovers exactly like
    /// [`PivotSynthesizer::run`](crate::PivotSynthesizer::run): a resource
    /// interruption ends the run with [`ConvergenceStatus::Interrupted`] and
    /// the best-so-far staircase, and a panic is caught at this boundary,
    /// discards the warm solver and surfaces as
    /// [`SynthesisError::Panicked`].
    ///
    /// # Errors
    ///
    /// [`SynthesisError::Solver`] for non-interruption solver failures and
    /// [`SynthesisError::Panicked`] for a caught panic.
    pub fn run(&self) -> SynthesisOutcome {
        let saved = self.synthesizer.budget();
        self.synthesizer
            .set_budget(arm_budget(saved, self.synthesizer.config().timeout));
        let outcome = catch_unwind(AssertUnwindSafe(|| self.run_inner()));
        self.synthesizer.set_budget(saved);
        match outcome {
            Ok(result) => result,
            Err(payload) => {
                self.synthesizer.reset_warm_solver();
                Err(SynthesisError::Panicked(panic_message(payload)))
            }
        }
    }

    fn run_inner(&self) -> SynthesisOutcome {
        let horizon = self.synthesizer.horizon();
        let mut th: PartialThreshold = vec![None; horizon];
        let mut rounds = 0;
        let mut attacks = 0;
        let mut stats = SolverStats::default();
        let mut round_stats = Vec::new();

        let report = |partial: PartialThreshold,
                      rounds: usize,
                      attacks: usize,
                      status: ConvergenceStatus,
                      stats: SolverStats,
                      round_stats: Vec<SolverStats>| {
            Ok(SynthesisReport {
                partial,
                rounds,
                attacks_eliminated: attacks,
                converged: status.is_converged(),
                status,
                solver_stats: stats,
                round_stats,
            })
        };

        // Can the monitors alone be bypassed?
        let initial = match cegis_query(&self.synthesizer, None, &mut stats, &mut round_stats)? {
            QueryOutcome::Decided(result) => result,
            QueryOutcome::Interrupted(reason) => {
                let status = ConvergenceStatus::Interrupted { round: 0, reason };
                return report(th, rounds, attacks, status, stats, round_stats);
            }
        };
        let Some(initial) = initial else {
            return report(
                th,
                rounds,
                attacks,
                ConvergenceStatus::Converged,
                stats,
                round_stats,
            );
        };
        attacks += 1;

        // First step: cover the prefix up to the residue peak.
        let (pivot, value) = initial.pivot();
        let first_height = self.shrink(value);
        for entry in th.iter_mut().take(pivot + 1) {
            *entry = Some(first_height);
        }
        let mut last_covered = pivot;

        // Phase 1: extend the staircase until it covers the whole horizon.
        while last_covered + 1 < horizon {
            rounds += 1;
            if rounds > self.max_rounds {
                return report(
                    th,
                    rounds - 1,
                    attacks,
                    ConvergenceStatus::RoundLimit,
                    stats,
                    round_stats,
                );
            }
            let attack =
                match cegis_query(&self.synthesizer, Some(&th), &mut stats, &mut round_stats)? {
                    QueryOutcome::Decided(result) => result,
                    QueryOutcome::Interrupted(reason) => {
                        let status = ConvergenceStatus::Interrupted {
                            round: rounds,
                            reason,
                        };
                        return report(th, rounds - 1, attacks, status, stats, round_stats);
                    }
                };
            let Some(attack) = attack else {
                return report(
                    th,
                    rounds,
                    attacks,
                    ConvergenceStatus::Converged,
                    stats,
                    round_stats,
                );
            };
            attacks += 1;
            let z = &attack.residue_norms;
            let current_height = th[last_covered].expect("covered prefix has a value");
            // New step edge: the largest residue after the covered prefix,
            // clamped to the previous step height to keep the staircase
            // monotonically decreasing.
            let k = ((last_covered + 1)..horizon)
                .max_by(|a, b| z[*a].total_cmp(&z[*b]))
                .expect("suffix is non-empty");
            let height = self.shrink(z[k]).min(current_height);
            for entry in th.iter_mut().take(k + 1).skip(last_covered + 1) {
                *entry = Some(height);
            }
            last_covered = k;
        }

        // Phase 2: lower minimum-area portions of the staircase until no
        // stealthy attack remains.
        loop {
            rounds += 1;
            if rounds > self.max_rounds {
                return report(
                    th,
                    rounds - 1,
                    attacks,
                    ConvergenceStatus::RoundLimit,
                    stats,
                    round_stats,
                );
            }
            let attack =
                match cegis_query(&self.synthesizer, Some(&th), &mut stats, &mut round_stats)? {
                    QueryOutcome::Decided(result) => result,
                    QueryOutcome::Interrupted(reason) => {
                        let status = ConvergenceStatus::Interrupted {
                            round: rounds,
                            reason,
                        };
                        return report(th, rounds - 1, attacks, status, stats, round_stats);
                    }
                };
            let Some(attack) = attack else {
                return report(
                    th,
                    rounds,
                    attacks,
                    ConvergenceStatus::Converged,
                    stats,
                    round_stats,
                );
            };
            attacks += 1;
            let z = &attack.residue_norms;
            let cut = Self::min_area_cut(&th, z);
            match cut {
                Some((k, level)) => {
                    let level = self.shrink(level);
                    for entry in th.iter_mut().skip(k) {
                        match entry {
                            Some(v) if *v > level => *entry = Some(level),
                            None => *entry = Some(level),
                            _ => {}
                        }
                    }
                }
                None => {
                    // Every residue of the counterexample is either already
                    // above the staircase (impossible for checked instants) or
                    // numerically zero: no cut can exclude it. Report the
                    // partial result instead of looping forever.
                    return report(
                        th,
                        rounds,
                        attacks,
                        ConvergenceStatus::Stalled,
                        stats,
                        round_stats,
                    );
                }
            }
        }
    }

    /// The paper's `MINAREARECTANGLE`: among all instants whose residue lies
    /// strictly below the current threshold, pick the one where lowering the
    /// threshold suffix to that residue removes the least area. Returns the
    /// instant and the new level.
    fn min_area_cut(th: &[Option<f64>], z: &[f64]) -> Option<(usize, f64)> {
        let horizon = th.len();
        let mut best: Option<(usize, f64, f64)> = None; // (k, level, area)
        for k in 0..horizon {
            let Some(current) = th[k] else { continue };
            if z[k] >= current || z[k] < MIN_THRESHOLD {
                continue;
            }
            let level = z[k].max(MIN_THRESHOLD);
            let area: f64 = (k..horizon)
                .map(|j| th[j].map_or(0.0, |v| (v - level).max(0.0)))
                .sum();
            let better = match &best {
                Some((_, _, best_area)) => area < *best_area,
                None => true,
            };
            if better {
                best = Some((k, level, area));
            }
        }
        best.map(|(k, level, _)| (k, level))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cps_control::ResidueNorm;
    use cps_detectors::{Detector, ThresholdDetector};

    /// Configuration used by the CEGIS unit tests: a larger convergence margin
    /// keeps the round count small enough for debug-mode test runs.
    fn test_config() -> SynthesisConfig {
        SynthesisConfig {
            convergence_margin: 0.25,
            ..SynthesisConfig::default()
        }
    }

    #[test]
    fn stepwise_synthesis_secures_the_trajectory_benchmark() {
        let benchmark = cps_models::trajectory_tracking().unwrap();
        let synthesizer = StepwiseSynthesizer::new(&benchmark, test_config()).with_max_rounds(400);
        let report = synthesizer.run().expect("synthesis runs");
        assert!(report.converged, "synthesis should converge");
        assert!(report.is_monotone_decreasing());

        // The synthesised staircase blocks every stealthy attack.
        let attack_synth = synthesizer.attack_synthesizer();
        assert!(attack_synth
            .synthesize(Some(&report.partial))
            .unwrap()
            .is_none());

        // And detects the undefended counterexample.
        let undefended = attack_synth.synthesize(None).unwrap().unwrap();
        let detector = ThresholdDetector::new(report.threshold_spec(), ResidueNorm::Linf);
        assert!(detector.detects(&undefended.trace));
    }

    #[test]
    fn staircase_structure_is_contiguous() {
        let benchmark = cps_models::trajectory_tracking().unwrap();
        let synthesizer = StepwiseSynthesizer::new(&benchmark, test_config()).with_max_rounds(400);
        let report = synthesizer.run().expect("synthesis runs");
        // Once a threshold is set, every later instant is also set (staircase
        // covers a prefix-contiguous region growing to the full horizon, or
        // the algorithm converged early).
        if report.converged {
            let first_set = report.partial.iter().position(|v| v.is_some());
            if let Some(first) = first_set {
                assert!(
                    report.partial[first..].iter().all(|v| v.is_some()),
                    "converged staircase leaves a gap after instant {first}: {:?}",
                    report.partial
                );
            }
        }
    }

    #[test]
    fn min_area_cut_picks_cheapest_instant() {
        let th = vec![Some(1.0), Some(1.0), Some(0.5), Some(0.5)];
        // Removed areas: cutting at instant 0 costs 2.2, at instant 1 costs
        // 0.3, at instant 2 costs 0.1, at instant 3 only 0.02.
        let z = vec![0.2, 0.7, 0.45, 0.48];
        let (k, level) = StepwiseSynthesizer::min_area_cut(&th, &z).unwrap();
        assert_eq!(k, 3);
        assert!((level - 0.48).abs() < 1e-12);
    }

    #[test]
    fn min_area_cut_returns_none_when_nothing_can_be_lowered() {
        let th = vec![Some(0.1), Some(0.1)];
        let z = vec![0.5, 0.2];
        assert!(StepwiseSynthesizer::min_area_cut(&th, &z).is_none());
    }
}
