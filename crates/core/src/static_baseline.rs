use cps_detectors::ThresholdSpec;
use cps_models::Benchmark;

use crate::{AttackSynthesizer, SynthesisConfig, SynthesisError};

/// Synthesises the *provably safe static* threshold the paper compares its
/// variable thresholds against.
///
/// A static detector uses the same bound at every sampling instant. Larger
/// bounds give the attacker more room, smaller bounds raise more false
/// alarms; the "provably safe" choice is the **largest** constant `th` such
/// that Algorithm 1 can prove no stealthy successful attack exists when every
/// residue must stay below `th`. The value is located by bisection over
/// `[0, upper]`, where `upper` defaults to twice the residue peak of the
/// undefended attack (a bound above which the detector certainly no longer
/// constrains the attacker).
///
/// Returns the threshold specification together with the number of
/// Algorithm 1 queries spent.
///
/// # Errors
///
/// Propagates solver-budget exhaustion from the Algorithm 1 queries.
pub fn synthesize_static_threshold(
    benchmark: &Benchmark,
    config: SynthesisConfig,
    bisection_steps: usize,
) -> Result<(ThresholdSpec, usize), SynthesisError> {
    let synthesizer = AttackSynthesizer::new(benchmark, config);
    let horizon = synthesizer.horizon();
    let mut queries = 0;

    // Upper end of the bracket: the undefended attack's residue peak (if the
    // monitors alone already block every attack, any threshold is safe).
    queries += 1;
    let Some(initial) = synthesizer.synthesize(None)? else {
        return Ok((ThresholdSpec::constant(f64::INFINITY, horizon), queries));
    };
    let (_, peak) = initial.pivot();
    let mut lo = 0.0_f64; // threshold 0 alarms on everything: trivially safe
    let mut hi = (2.0 * peak).max(1e-6);

    // Check whether the upper end happens to be safe already.
    queries += 1;
    let hi_partial: Vec<Option<f64>> = vec![Some(hi); horizon];
    if synthesizer.synthesize(Some(&hi_partial))?.is_none() {
        return Ok((ThresholdSpec::constant(hi, horizon), queries));
    }

    for _ in 0..bisection_steps {
        let mid = 0.5 * (lo + hi);
        let partial: Vec<Option<f64>> = vec![Some(mid); horizon];
        queries += 1;
        if synthesizer.synthesize(Some(&partial))?.is_none() {
            // mid is safe: try a larger (lower-FAR) threshold.
            lo = mid;
        } else {
            // an attack slips below mid: must tighten.
            hi = mid;
        }
    }

    Ok((ThresholdSpec::constant(lo, horizon), queries))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_threshold_is_safe_and_nontrivial() {
        let benchmark = cps_models::trajectory_tracking().unwrap();
        let config = SynthesisConfig::default();
        let (spec, queries) =
            synthesize_static_threshold(&benchmark, config, 8).expect("bisection runs");
        assert!(queries >= 2);
        assert!(spec.is_static());
        let value = spec.value_at(0);
        assert!(value.is_finite());
        assert!(value >= 0.0);

        // Safety: no stealthy attack exists below the returned threshold.
        let synthesizer = AttackSynthesizer::new(&benchmark, config);
        let partial = synthesizer.spec_to_partial(&spec);
        assert!(synthesizer.synthesize(Some(&partial)).unwrap().is_none());
    }

    #[test]
    fn bisection_converges_towards_the_boundary() {
        let benchmark = cps_models::trajectory_tracking().unwrap();
        let config = SynthesisConfig::default();
        let (coarse, _) = synthesize_static_threshold(&benchmark, config, 3).unwrap();
        let (fine, _) = synthesize_static_threshold(&benchmark, config, 8).unwrap();
        // More bisection steps can only move the safe threshold upwards
        // (towards the true supremum), never below the coarse estimate.
        assert!(fine.value_at(0) + 1e-12 >= coarse.value_at(0));
    }
}
