#!/usr/bin/env bash
# Captures a benchmark snapshot: runs `cargo bench` and writes a JSON map of
# `bench name -> median wall-clock nanoseconds` parsed from the criterion
# shim's `[median_ns=…]` markers (see crates/criterion_shim).
#
# Usage: scripts/bench_snapshot.sh [output.json]
#
# The committed snapshots (BENCH_<pr>.json) form the repo's perf trajectory:
# compare the current tree against the previous PR's snapshot before claiming
# a speedup. Sample counts honour CPS_BENCH_SAMPLES if set.
set -euo pipefail
cd "$(dirname "$0")/.."

out_file="${1:-BENCH_2.json}"
bench_log="$(mktemp)"
trap 'rm -f "$bench_log"' EXIT

cargo bench 2>&1 | tee "$bench_log"

{
    echo "{"
    sed -n 's/^\([^:]*\): median .*\[median_ns=\([0-9][0-9]*\)\]$/  "\1": \2,/p' "$bench_log" |
        sed '$ s/,$//'
    echo "}"
} > "$out_file"

echo "wrote $out_file:"
cat "$out_file"
