#!/usr/bin/env bash
# Captures a benchmark snapshot and gates on regressions.
#
# Runs `cargo bench`, writes a JSON map of `bench name -> value` parsed from
# the criterion shim's machine-readable markers (see crates/criterion_shim):
# plain benches contribute their `[median_ns=…]` median wall-clock nanoseconds
# (lower is better); throughput benches — report lines ending in `[per_s=…]`,
# by convention named `*_per_s` — contribute their per-second rate (higher is
# better). The fresh snapshot is then diffed against a baseline: the
# highest-numbered committed BENCH_<n>.json by default, or an explicit second
# argument. The script exits non-zero when any bench present in BOTH
# snapshots regressed by more than CPS_BENCH_TOLERANCE percent (default 25):
# for latency rows that means the median grew, and additionally by more than
# CPS_BENCH_NOISE_FLOOR_NS absolute (default 20000 ns — microsecond-scale
# benches jitter by several microseconds run to run on a shared container,
# which is scheduling noise, not a regression); for `*_per_s` throughput rows
# it means the rate dropped (the noise floor is a nanosecond quantity and does
# not apply to rates — their TRIALS-sized workloads are far above it anyway).
# Benches that exist only on one side (new or retired) are reported but never
# fail the gate.
#
# Usage: scripts/bench_snapshot.sh <output.json> [baseline.json]
#        scripts/bench_snapshot.sh --select-baseline <exclude.json>
#        scripts/bench_snapshot.sh --compare <baseline.json> <fresh.json>
#
# `--compare` runs only the regression gate between two existing snapshot
# files (no cargo, no snapshot written); the shell test drives the gate's
# direction handling through it.
#
# The output path is required (give an absolute path for scratch snapshots so
# it lands outside the repo even though the script cd's to the repo root).
# The default baseline is the highest-numbered BENCH_<n>.json in the repo
# root, where <n> must be a bare decimal PR number — decoys like
# `BENCH_4_old.json` or `BENCH_smoke.json` never match, and numbers compare
# numerically so BENCH_10 beats BENCH_9. `--select-baseline` runs only that
# selection logic against the *current* directory and prints the result (one
# line, empty when nothing qualifies); the shell test drives it on synthetic
# tmpdirs.
#
# The committed snapshots (BENCH_<pr>.json) form the repo's perf trajectory:
# compare the current tree against the previous PR's snapshot before claiming
# a speedup. Sample counts honour CPS_BENCH_SAMPLES if set; single-sample
# smoke runs (CI) should pair it with a loose CPS_BENCH_TOLERANCE, since
# one-sample medians jitter far beyond any real regression signal.
set -euo pipefail

# Picks the committed snapshot with the highest bare-decimal PR number from
# the current directory, skipping $1 (the snapshot being written).
select_baseline() {
    local exclude="$1" best_n=-1 best="" f n
    for f in BENCH_*.json; do
        [[ -e "$f" && "$f" != "$exclude" ]] || continue
        n="${f#BENCH_}"
        n="${n%.json}"
        [[ "$n" =~ ^[0-9]+$ ]] || continue
        if ((10#$n > best_n)); then
            best_n=$((10#$n))
            best="$f"
        fi
    done
    printf '%s\n' "$best"
}

if [[ "${1:-}" == "--select-baseline" ]]; then
    select_baseline "${2:-}"
    exit 0
fi

# Diffs two snapshots and exits non-zero on a gated regression. Latency rows
# (median nanoseconds) regress upward and honour the absolute noise floor;
# `*_per_s` throughput rows regress downward and have no noise floor.
compare_snapshots() {
    local baseline="$1" fresh="$2"
    local tolerance="${CPS_BENCH_TOLERANCE:-25}"
    local noise_floor="${CPS_BENCH_NOISE_FLOOR_NS:-20000}"
    echo "comparing against $baseline (tolerance: ${tolerance}% regression," \
         "noise floor: ${noise_floor} ns, throughput rows gate on drops)"
    awk -v tol="$tolerance" -v floor="$noise_floor" '
        # Both files use the simple one-entry-per-line format written by the
        # snapshot step.
        function parse(line) {
            if (match(line, /^  "[^"]+": [0-9]+,?$/) == 0) return 0
            name = line; sub(/^  "/, "", name); sub(/": .*/, "", name)
            value = line; sub(/.*": /, "", value); sub(/,$/, "", value)
            return 1
        }
        FNR == NR { if (parse($0)) base[name] = value + 0; next }
        {
            if (!parse($0)) next
            if (!(name in base)) { printf "  new bench (no baseline): %s\n", name; next }
            old = base[name]; new = value + 0; seen[name] = 1
            change = old > 0 ? (new - old) * 100.0 / old : 0
            status = "ok"
            if (name ~ /_per_s$/) {
                # Throughput: a rate *drop* beyond tolerance fails the gate.
                if (-change > tol) { status = "REGRESSION"; failed = 1 }
                printf "  %-55s %12d -> %12d /s  (%+.1f%%) %s\n", name, old, new, change, status
            } else {
                if (change > tol && new - old > floor) { status = "REGRESSION"; failed = 1 }
                else if (change > tol) { status = "ok (within noise floor)" }
                printf "  %-55s %12d -> %12d ns  (%+.1f%%) %s\n", name, old, new, change, status
            }
        }
        END {
            for (name in base) if (!(name in seen))
                printf "  retired bench (baseline only): %s\n", name
            if (failed) {
                printf "regression gate FAILED: a bench regressed more than %s%%\n", tol
                exit 1
            }
            print "regression gate passed"
        }
    ' "$baseline" "$fresh"
}

if [[ "${1:-}" == "--compare" ]]; then
    if [[ $# -ne 3 || ! -f "$2" || ! -f "$3" ]]; then
        echo "usage: $0 --compare <baseline.json> <fresh.json>" >&2
        exit 2
    fi
    compare_snapshots "$2" "$3"
    exit $?
fi

if [[ $# -lt 1 ]]; then
    echo "usage: $0 <output.json> [baseline.json]" >&2
    exit 2
fi

cd "$(dirname "$0")/.."

out_file="$1"
baseline="${2:-}"
bench_log="$(mktemp)"
trap 'rm -f "$bench_log"' EXIT

cargo bench 2>&1 | tee "$bench_log"

# Two mutually exclusive row shapes, keyed on which marker ends the line:
# throughput benches end in `[per_s=…]` and are snapshotted by their rate;
# everything else ends in `[median_ns=…]` and is snapshotted by its median.
{
    echo "{"
    sed -n \
        -e 's/^\([^:]*\): median .*\[median_ns=\([0-9][0-9]*\)\]$/  "\1": \2,/p' \
        -e 's/^\([^:]*\): median .*\[per_s=\([0-9][0-9]*\)\]$/  "\1": \2,/p' \
        "$bench_log" |
        sed '$ s/,$//'
    echo "}"
} > "$out_file"

echo "wrote $out_file:"
cat "$out_file"

if [[ -z "$baseline" ]]; then
    baseline="$(select_baseline "$out_file")"
fi
if [[ -z "$baseline" || ! -f "$baseline" ]]; then
    echo "no baseline snapshot found; skipping regression gate"
    exit 0
fi

compare_snapshots "$baseline" "$out_file"
