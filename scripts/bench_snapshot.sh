#!/usr/bin/env bash
# Captures a benchmark snapshot and gates on regressions.
#
# Runs `cargo bench`, writes a JSON map of `bench name -> median wall-clock
# nanoseconds` parsed from the criterion shim's `[median_ns=…]` markers (see
# crates/criterion_shim), then diffs the fresh snapshot against a baseline:
# the highest-numbered committed BENCH_<n>.json by default, or an explicit
# second argument. The script exits non-zero when any bench present in BOTH
# snapshots regressed by more than CPS_BENCH_TOLERANCE percent (default 25)
# AND by more than CPS_BENCH_NOISE_FLOOR_NS absolute (default 20000 ns —
# microsecond-scale benches jitter by several microseconds run to run on a
# shared container, which is scheduling noise, not a regression). Benches
# that exist only on one side (new or retired) are reported but never fail
# the gate.
#
# Usage: scripts/bench_snapshot.sh [output.json] [baseline.json]
#
# The committed snapshots (BENCH_<pr>.json) form the repo's perf trajectory:
# compare the current tree against the previous PR's snapshot before claiming
# a speedup. Sample counts honour CPS_BENCH_SAMPLES if set; single-sample
# smoke runs (CI) should pair it with a loose CPS_BENCH_TOLERANCE, since
# one-sample medians jitter far beyond any real regression signal.
set -euo pipefail
cd "$(dirname "$0")/.."

out_file="${1:-BENCH_4.json}"
baseline="${2:-}"
tolerance="${CPS_BENCH_TOLERANCE:-25}"
noise_floor="${CPS_BENCH_NOISE_FLOOR_NS:-20000}"
bench_log="$(mktemp)"
trap 'rm -f "$bench_log"' EXIT

cargo bench 2>&1 | tee "$bench_log"

{
    echo "{"
    sed -n 's/^\([^:]*\): median .*\[median_ns=\([0-9][0-9]*\)\]$/  "\1": \2,/p' "$bench_log" |
        sed '$ s/,$//'
    echo "}"
} > "$out_file"

echo "wrote $out_file:"
cat "$out_file"

if [[ -z "$baseline" ]]; then
    baseline="$(ls BENCH_*.json 2>/dev/null | grep -vFx "$out_file" |
        sort -t_ -k2 -n | tail -1 || true)"
fi
if [[ -z "$baseline" || ! -f "$baseline" ]]; then
    echo "no baseline snapshot found; skipping regression gate"
    exit 0
fi

echo "comparing against $baseline (tolerance: ${tolerance}% median regression," \
     "noise floor: ${noise_floor} ns)"
awk -v tol="$tolerance" -v floor="$noise_floor" -v baseline="$baseline" -v fresh="$out_file" '
    # Both files use the simple one-entry-per-line format written above.
    function parse(line) {
        if (match(line, /^  "[^"]+": [0-9]+,?$/) == 0) return 0
        name = line; sub(/^  "/, "", name); sub(/": .*/, "", name)
        value = line; sub(/.*": /, "", value); sub(/,$/, "", value)
        return 1
    }
    FNR == NR { if (parse($0)) base[name] = value + 0; next }
    {
        if (!parse($0)) next
        if (!(name in base)) { printf "  new bench (no baseline): %s\n", name; next }
        old = base[name]; new = value + 0; seen[name] = 1
        change = old > 0 ? (new - old) * 100.0 / old : 0
        status = "ok"
        if (change > tol && new - old > floor) { status = "REGRESSION"; failed = 1 }
        else if (change > tol) { status = "ok (within noise floor)" }
        printf "  %-55s %12d -> %12d ns  (%+.1f%%) %s\n", name, old, new, change, status
    }
    END {
        for (name in base) if (!(name in seen))
            printf "  retired bench (baseline only): %s\n", name
        if (failed) {
            printf "regression gate FAILED: a bench regressed more than %s%%\n", tol
            exit 1
        }
        print "regression gate passed"
    }
' "$baseline" "$out_file"
