#!/usr/bin/env bash
# Tests the baseline-selection logic of scripts/bench_snapshot.sh via its
# `--select-baseline` mode, which runs the real selection function against the
# current directory without touching cargo. Each case builds a synthetic
# directory of candidate and decoy snapshot files and checks the single line
# the script prints.
set -euo pipefail

script="$(cd "$(dirname "$0")/.." && pwd)/bench_snapshot.sh"
failures=0

check() {
    local label="$1" expected="$2" exclude="$3"
    shift 3
    local dir
    dir="$(mktemp -d)"
    local f
    for f in "$@"; do
        : > "$dir/$f"
    done
    local got
    got="$(cd "$dir" && "$script" --select-baseline "$exclude")"
    if [[ "$got" == "$expected" ]]; then
        echo "ok: $label"
    else
        echo "FAIL: $label: expected '$expected', got '$got'" >&2
        failures=$((failures + 1))
    fi
    rm -rf "$dir"
}

# The highest PR number wins, compared numerically: BENCH_10 beats BENCH_4
# even though it sorts first lexicographically.
check "numeric ordering beats lexicographic" "BENCH_10.json" "" \
    BENCH_2.json BENCH_4.json BENCH_10.json

# The snapshot being written never serves as its own baseline.
check "output file is excluded" "BENCH_4.json" "BENCH_10.json" \
    BENCH_2.json BENCH_4.json BENCH_10.json

# Decoys whose suffix is not a bare decimal number are ignored entirely.
check "non-numeric decoys are skipped" "BENCH_4.json" "" \
    BENCH_4.json BENCH_4_old.json BENCH_smoke.json BENCH_.json BENCH_9x.json

# Leading zeros still parse as decimal (no octal surprises in bash $((...))).
check "leading zeros parse as decimal" "BENCH_010.json" "" \
    BENCH_009.json BENCH_010.json BENCH_8.json

# No qualifying snapshot at all: the selection is empty (the caller then
# skips the regression gate).
check "empty when nothing qualifies" "" "" BENCH_smoke.json notes.json

# Excluding the only candidate also leaves nothing.
check "empty when only candidate is excluded" "" "BENCH_6.json" BENCH_6.json

if ((failures > 0)); then
    echo "$failures selection test(s) failed" >&2
    exit 1
fi
echo "all baseline-selection tests passed"
