#!/usr/bin/env bash
# Tests the cargo-free logic of scripts/bench_snapshot.sh: baseline selection
# via `--select-baseline` and the regression gate's direction handling via
# `--compare`. Each case builds synthetic snapshot files and checks the
# script's output / exit status.
set -euo pipefail

script="$(cd "$(dirname "$0")/.." && pwd)/bench_snapshot.sh"
failures=0

check() {
    local label="$1" expected="$2" exclude="$3"
    shift 3
    local dir
    dir="$(mktemp -d)"
    local f
    for f in "$@"; do
        : > "$dir/$f"
    done
    local got
    got="$(cd "$dir" && "$script" --select-baseline "$exclude")"
    if [[ "$got" == "$expected" ]]; then
        echo "ok: $label"
    else
        echo "FAIL: $label: expected '$expected', got '$got'" >&2
        failures=$((failures + 1))
    fi
    rm -rf "$dir"
}

# The highest PR number wins, compared numerically: BENCH_10 beats BENCH_4
# even though it sorts first lexicographically.
check "numeric ordering beats lexicographic" "BENCH_10.json" "" \
    BENCH_2.json BENCH_4.json BENCH_10.json

# The snapshot being written never serves as its own baseline.
check "output file is excluded" "BENCH_4.json" "BENCH_10.json" \
    BENCH_2.json BENCH_4.json BENCH_10.json

# Decoys whose suffix is not a bare decimal number are ignored entirely.
check "non-numeric decoys are skipped" "BENCH_4.json" "" \
    BENCH_4.json BENCH_4_old.json BENCH_smoke.json BENCH_.json BENCH_9x.json

# Leading zeros still parse as decimal (no octal surprises in bash $((...))).
check "leading zeros parse as decimal" "BENCH_010.json" "" \
    BENCH_009.json BENCH_010.json BENCH_8.json

# No qualifying snapshot at all: the selection is empty (the caller then
# skips the regression gate).
check "empty when nothing qualifies" "" "" BENCH_smoke.json notes.json

# Excluding the only candidate also leaves nothing.
check "empty when only candidate is excluded" "" "BENCH_6.json" BENCH_6.json

# --- regression gate direction (via --compare) -------------------------------
# Writes a two-line snapshot pair and asserts whether the gate passes.
# Latency rows (plain names) fail when the value grows; throughput rows
# (`*_per_s`) fail when the value drops. CPS_BENCH_NOISE_FLOOR_NS is zeroed so
# the direction logic is tested in isolation from the latency noise floor.
check_gate() {
    local label="$1" expect="$2" name="$3" old="$4" new="$5"
    local dir
    dir="$(mktemp -d)"
    printf '{\n  "%s": %s\n}\n' "$name" "$old" > "$dir/base.json"
    printf '{\n  "%s": %s\n}\n' "$name" "$new" > "$dir/fresh.json"
    local status=0
    CPS_BENCH_TOLERANCE=25 CPS_BENCH_NOISE_FLOOR_NS=0 \
        "$script" --compare "$dir/base.json" "$dir/fresh.json" > /dev/null || status=$?
    local got="pass"
    ((status == 0)) || got="fail"
    if [[ "$got" == "$expect" ]]; then
        echo "ok: $label"
    else
        echo "FAIL: $label: expected gate to $expect, got $got (exit $status)" >&2
        failures=$((failures + 1))
    fi
    rm -rf "$dir"
}

# Latency (median_ns) rows: bigger is worse.
check_gate "latency growth beyond tolerance fails" fail "group/slow_loop" 100000 200000
check_gate "latency improvement passes" pass "group/slow_loop" 200000 100000

# Throughput (*_per_s) rows: bigger is better — the exact same numeric move
# that fails a latency row must pass a throughput row, and vice versa.
check_gate "throughput increase passes" pass "streaming_far/vsc_traces_per_s" 100000 200000
check_gate "throughput drop beyond tolerance fails" fail "streaming_far/vsc_traces_per_s" 200000 100000
check_gate "throughput drop within tolerance passes" pass "streaming_far/vsc_traces_per_s" 100000 90000

# Throughput rows ignore the latency noise floor: a small-magnitude rate drop
# beyond tolerance fails even when the absolute delta is below the default
# 20000 floor (rates are not nanoseconds).
check_gate_with_floor() {
    local dir
    dir="$(mktemp -d)"
    printf '{\n  "s/x_per_s": 1000\n}\n' > "$dir/base.json"
    printf '{\n  "s/x_per_s": 500\n}\n' > "$dir/fresh.json"
    local status=0
    CPS_BENCH_TOLERANCE=25 \
        "$script" --compare "$dir/base.json" "$dir/fresh.json" > /dev/null || status=$?
    if ((status != 0)); then
        echo "ok: throughput gate ignores the nanosecond noise floor"
    else
        echo "FAIL: throughput drop passed because of the noise floor" >&2
        failures=$((failures + 1))
    fi
    rm -rf "$dir"
}
check_gate_with_floor

if ((failures > 0)); then
    echo "$failures selection test(s) failed" >&2
    exit 1
fi
echo "all baseline-selection tests passed"
