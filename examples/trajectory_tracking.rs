//! Reproduces the motivational example of Fig. 1: trajectory deviation and
//! residues under no noise, noise, and a stealthy attack, compared against a
//! small static threshold, a large static threshold and a variable threshold.
//!
//! Run with `cargo run --example trajectory_tracking --release`.

use cps_control::{NoiseModel, ResidueNorm};
use cps_detectors::{Detector, ThresholdDetector, ThresholdSpec};
use secure_cps::{AttackSynthesizer, SynthesisConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let benchmark = cps_models::trajectory_tracking()?;
    let horizon = benchmark.horizon;
    let plant = benchmark.closed_loop.plant();
    let no_noise = NoiseModel::none(plant.num_states(), plant.num_outputs());

    // Three rollouts: clean, noisy, attacked (Fig. 1a).
    let clean =
        benchmark
            .closed_loop
            .simulate(&benchmark.initial_state, horizon, &no_noise, None, 0);
    let noisy = benchmark.closed_loop.simulate(
        &benchmark.initial_state,
        horizon,
        &benchmark.noise,
        None,
        1,
    );
    let synthesizer = AttackSynthesizer::new(&benchmark, SynthesisConfig::default());
    let attack = synthesizer
        .synthesize(None)?
        .expect("undefended loop is attackable");
    let attacked = benchmark.closed_loop.simulate(
        &benchmark.initial_state,
        horizon,
        &benchmark.noise,
        Some(&attack.attack),
        1,
    );

    let target = benchmark.performance.target();
    println!("# Fig 1a: position deviation from the reference");
    println!("k, no_noise, noise, attack");
    for k in 0..=horizon {
        println!(
            "{k}, {:.4}, {:.4}, {:.4}",
            clean.states()[k][0] - target,
            noisy.states()[k][0] - target,
            attacked.states()[k][0] - target,
        );
    }

    // Residues and the three detectors (Fig. 1b).
    let noise_residues = noisy.residue_norms(ResidueNorm::Linf);
    let attack_residues = attacked.residue_norms(ResidueNorm::Linf);
    let noise_peak = noise_residues.iter().cloned().fold(0.0, f64::max);
    let attack_peak = attack_residues.iter().cloned().fold(0.0, f64::max);

    // th: small static (below the noise peak) — catches noise as "attack".
    // Th: large static (above the attack peak) — misses the attack.
    // vth: variable, decreasing from Th towards th — separates the two.
    let small = ThresholdSpec::constant(0.6 * noise_peak, horizon);
    let large = ThresholdSpec::constant(1.2 * attack_peak, horizon);
    let variable = ThresholdSpec::variable(
        (0..horizon)
            .map(|k| {
                let frac = k as f64 / (horizon - 1) as f64;
                1.2 * attack_peak * (1.0 - frac) + 1.5 * noise_peak * frac
            })
            .collect(),
    );

    println!("\n# Fig 1b: residues and thresholds");
    println!("k, residue_noise, residue_attack, th_small, Th_large, vth");
    for k in 0..horizon {
        println!(
            "{k}, {:.4}, {:.4}, {:.4}, {:.4}, {:.4}",
            noise_residues[k],
            attack_residues[k],
            small.value_at(k),
            large.value_at(k),
            variable.value_at(k),
        );
    }

    for (name, spec) in [
        ("small static th", small),
        ("large static Th", large),
        ("variable vth", variable),
    ] {
        let detector = ThresholdDetector::new(spec, ResidueNorm::Linf);
        println!(
            "{name}: alarms on noise at {:?}, alarms on attack at {:?}",
            detector.first_alarm(&noisy),
            detector.first_alarm(&attacked)
        );
    }
    Ok(())
}
