//! Reproduces the false-alarm-rate comparison of §IV: variable thresholds
//! synthesized by Algorithms 2 and 3 versus the provably-safe static
//! threshold, evaluated on monitor-filtered noise-only rollouts.
//!
//! Run with `cargo run --example far_comparison --release`.
//! Set `SECURE_CPS_TRIALS` to change the number of noise rollouts (default 200).

use cps_control::ResidueNorm;
use cps_detectors::{Detector, ThresholdDetector};
use secure_cps::{
    synthesize_static_threshold, FarExperiment, MonitorEncoding, PivotSynthesizer,
    StepwiseSynthesizer, SynthesisConfig,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let trials: usize = std::env::var("SECURE_CPS_TRIALS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(200);

    let benchmark = cps_models::vsc()?;
    let config = SynthesisConfig {
        monitor_encoding: MonitorEncoding::ConjunctiveAfter(5),
        convergence_margin: 0.1,
        ..SynthesisConfig::default()
    };

    println!("synthesizing detectors for `{}` ...", benchmark.name);
    let pivot = PivotSynthesizer::new(&benchmark, config)
        .with_max_rounds(60)
        .run()?;
    println!(
        "  Algorithm 2 (pivot): rounds={}, converged={}",
        pivot.rounds, pivot.converged
    );
    let stepwise = StepwiseSynthesizer::new(&benchmark, config)
        .with_max_rounds(60)
        .run()?;
    println!(
        "  Algorithm 3 (step-wise): rounds={}, converged={}",
        stepwise.rounds, stepwise.converged
    );
    let (static_spec, queries) = synthesize_static_threshold(&benchmark, config, 8)?;
    println!(
        "  static baseline: threshold={:.4} ({queries} queries)",
        static_spec.value_at(0)
    );

    let pivot_detector = ThresholdDetector::new(pivot.threshold_spec(), ResidueNorm::Linf);
    let stepwise_detector = ThresholdDetector::new(stepwise.threshold_spec(), ResidueNorm::Linf);
    let static_detector = ThresholdDetector::new(static_spec, ResidueNorm::Linf);

    let experiment = FarExperiment::new(&benchmark, trials, 2026);
    let report = experiment.run(&[
        ("algorithm-2-pivot", &pivot_detector as &dyn Detector),
        ("algorithm-3-stepwise", &stepwise_detector),
        ("static-baseline", &static_detector),
    ]);

    println!(
        "\n# FAR comparison ({} rollouts generated, {} kept after mdc/pfc filter)",
        report.generated, report.kept
    );
    println!("detector, false_alarm_rate");
    for (name, rate) in &report.rates {
        println!("{name}, {:.3}", rate);
    }
    println!("\npaper reference: Alg 2 = 0.615, Alg 3 = 0.456, static = 0.989");
    Ok(())
}
