//! Quickstart: synthesize an attack against an undefended tracking loop, then
//! synthesize a variable-threshold detector that provably blocks it.
//!
//! Run with `cargo run --example quickstart --release`.

use cps_control::ResidueNorm;
use cps_detectors::{Detector, ThresholdDetector};
use secure_cps::{AttackSynthesizer, PivotSynthesizer, SynthesisConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Pick a benchmark: a position-tracking loop with a spoofable sensor.
    let benchmark = cps_models::trajectory_tracking()?;
    println!(
        "benchmark: {} (horizon {})",
        benchmark.name, benchmark.horizon
    );

    // 2. Algorithm 1: is the loop attackable without a residue detector?
    let config = SynthesisConfig {
        convergence_margin: 0.25,
        ..SynthesisConfig::default()
    };
    let synthesizer = AttackSynthesizer::new(&benchmark, config);
    let attack = synthesizer
        .synthesize(None)?
        .expect("the undefended loop is attackable");
    let final_state = attack.trace.states().last().expect("non-empty trace");
    println!(
        "stealthy attack found: final position {:.3} (target {:.3}), peak residue {:.4}",
        final_state[0],
        benchmark.performance.target(),
        attack.pivot().1
    );

    // 3. Algorithm 2: synthesize a variable threshold that blocks every
    //    stealthy attack.
    let report = PivotSynthesizer::new(&benchmark, config)
        .with_max_rounds(400)
        .run()?;
    println!(
        "pivot-based synthesis: converged={} after {} rounds",
        report.converged, report.rounds
    );

    // 4. The synthesized detector catches the attack from step 2.
    let detector = ThresholdDetector::new(report.threshold_spec(), ResidueNorm::Linf);
    println!(
        "detector alarms on the undefended attack at instant {:?}",
        detector.first_alarm(&attack.trace)
    );

    // 5. And Algorithm 1 certifies that no stealthy attack remains.
    let residual = synthesizer.synthesize(Some(&report.partial))?;
    println!(
        "stealthy attack under the new detector: {:?}",
        residual.map(|_| "found")
    );
    Ok(())
}
