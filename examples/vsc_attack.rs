//! Reproduces the VSC attack demonstration of Fig. 2: a stealthy false-data
//! injection on the yaw-rate and lateral-acceleration sensors that bypasses
//! the stock monitoring system while preventing the yaw rate from reaching
//! its target.
//!
//! Run with `cargo run --example vsc_attack --release`.

use secure_cps::{AttackSynthesizer, SynthesisConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let benchmark = cps_models::vsc()?;
    let vx = 15.0; // longitudinal speed used by the relation monitor

    // Exact dead-zone semantics at the paper's full 50-sample horizon: the
    // sequential-counter encoding plus the incremental sparse simplex decide
    // this query in seconds (the paper allots 12 hours of Z3 for it).
    let config = SynthesisConfig::default();
    let synthesizer = AttackSynthesizer::new(&benchmark, config);
    let Some(attack) = synthesizer.synthesize(None)? else {
        println!("no stealthy attack found — monitors alone secure this configuration");
        return Ok(());
    };

    let trace = &attack.trace;
    let verdict = benchmark.monitors.evaluate(trace.measurements());
    println!(
        "# Fig 2: stealthy VSC attack (monitors alarmed: {}, pfc satisfied: {})",
        verdict.alarmed(),
        benchmark
            .performance
            .satisfied_by(trace.states().last().unwrap())
    );
    println!("k, true_yaw_rate, measured_yaw_rate, measured_ay, gamma_est_from_ay, residue_norm");
    for k in 0..trace.len() {
        let x = &trace.states()[k];
        let y = &trace.measurements()[k];
        println!(
            "{k}, {:.4}, {:.4}, {:.4}, {:.4}, {:.4}",
            x[1],
            y[0],
            y[1],
            y[1] / vx,
            attack.residue_norms[k],
        );
    }
    println!(
        "\nfinal true yaw rate: {:.4} rad/s (target {:.4}, pfc needs ≥ {:.4})",
        trace.states().last().unwrap()[1],
        benchmark.performance.target(),
        0.8 * benchmark.performance.target()
    );
    Ok(())
}
