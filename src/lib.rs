//! Umbrella crate for the `secure-cps` workspace.
//!
//! This package only hosts the workspace-level [examples](https://github.com/secure-cps)
//! and integration tests; the functionality lives in the member crates and is
//! re-exported here for convenience:
//!
//! - [`cps_linalg`] — dense linear algebra substrate
//! - [`cps_smt`] — QF-LRA SMT solver (Z3 substitute)
//! - [`cps_control`] — LTI plants, Kalman filter, LQR, closed-loop simulation
//! - [`cps_monitors`] — range/gradient/relation monitors with dead zone
//! - [`cps_detectors`] — residue-based detectors and FAR evaluation
//! - [`cps_models`] — benchmark closed-loop systems (VSC, trajectory tracking, ...)
//! - [`secure_cps`] — attack-vector synthesis and variable-threshold synthesis

pub use cps_control as control;
pub use cps_detectors as detectors;
pub use cps_linalg as linalg;
pub use cps_models as models;
pub use cps_monitors as monitors;
pub use cps_smt as smt;
pub use secure_cps as core;
