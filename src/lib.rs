//! Umbrella crate for the `secure-cps` workspace — a Rust reproduction of
//! *Koley et al., "Formal Synthesis of Monitoring and Detection Systems for
//! Secure CPS Implementations" (DATE 2020)*.
//!
//! This package hosts the workspace-level examples (`examples/`) and the
//! end-to-end integration tests (`tests/`); the functionality lives in the
//! member crates and is re-exported here for convenience:
//!
//! - [`cps_linalg`] — dense linear algebra substrate,
//! - [`cps_smt`] — QF-LRA SMT solver (the workspace's Z3 substitute),
//! - [`cps_control`] — LTI plants, Kalman filter, LQR, closed-loop simulation
//!   (the paper's §II system model),
//! - [`cps_monitors`] — range/gradient/relation monitors with dead zone
//!   (`mdc`),
//! - [`cps_detectors`] — residue-based detectors and FAR evaluation,
//! - [`cps_models`] — benchmark closed-loop systems (VSC §IV, trajectory
//!   tracking Fig. 1, ...),
//! - [`secure_cps`] — attack-vector synthesis (Algorithm 1) and
//!   variable-threshold synthesis (Algorithms 2–3).
//!
//! The lib target is named `secure_cps_workspace` because the core synthesis
//! crate owns the `secure_cps` crate name; downstream code normally depends on
//! the member crates directly (as the examples do) and uses this crate only
//! when one dependency line for the whole stack is preferable.
//!
//! # Example
//!
//! ```
//! use secure_cps_workspace::{control, core, models};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let benchmark = models::trajectory_tracking()?;
//! let synthesizer =
//!     core::AttackSynthesizer::new(&benchmark, core::SynthesisConfig::default());
//! // Without a residue detector the tracking loop is attackable...
//! let attack = synthesizer.synthesize(None)?.expect("attack exists");
//! // ...and the stealthy attack drives the loop off its performance target.
//! let final_state = attack.trace.states().last().unwrap();
//! assert!(!benchmark.performance.satisfied_by(final_state));
//! let _ = control::ResidueNorm::Linf;
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub use cps_control as control;
pub use cps_detectors as detectors;
pub use cps_linalg as linalg;
pub use cps_models as models;
pub use cps_monitors as monitors;
pub use cps_smt as smt;
pub use secure_cps as core;
